"""Visualisation: ASCII charts, SVG line charts, SVG network plots."""

from .ascii_plot import ascii_chart
from .chart_svg import chart_svg
from .network_svg import network_svg

__all__ = ["ascii_chart", "chart_svg", "network_svg"]
