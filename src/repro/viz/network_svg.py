"""SVG rendering of deployments and forward node sets (Figure 9 style).

Draws the unit-disk graph with links in light grey, non-forward nodes as
small hollow circles, forward nodes filled, and the source highlighted —
the same visual language as the paper's Figure 9.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from ..graph.unit_disk import UnitDiskGraph

__all__ = ["network_svg"]

_STYLE = (
    "<style>"
    ".link { stroke: #c8c8c8; stroke-width: 0.4; }"
    ".plain { fill: #ffffff; stroke: #404040; stroke-width: 0.5; }"
    ".forward { fill: #2040a0; stroke: #102050; stroke-width: 0.5; }"
    ".source { fill: #c03020; stroke: #601810; stroke-width: 0.7; }"
    ".label { font: 3px sans-serif; fill: #202020; }"
    "</style>"
)


def network_svg(
    network: UnitDiskGraph,
    forward_nodes: Iterable[int] = (),
    source: Optional[int] = None,
    title: str = "",
    scale: float = 6.0,
    margin: float = 5.0,
    labels: bool = False,
) -> str:
    """An SVG document string for ``network``.

    ``forward_nodes`` are drawn filled, the ``source`` in a distinct
    color; set ``labels`` to annotate node ids.
    """
    forward: Set[int] = set(forward_nodes)
    xs = [p.x for p in network.positions.values()]
    ys = [p.y for p in network.positions.values()]
    width = (max(xs) - min(xs) + 2 * margin) * scale if xs else 100.0
    height = (max(ys) - min(ys) + 2 * margin) * scale if ys else 100.0
    x0 = min(xs) - margin if xs else 0.0
    y0 = min(ys) - margin if ys else 0.0

    def sx(value: float) -> float:
        return (value - x0) * scale

    def sy(value: float) -> float:
        # SVG's y axis grows downward; flip to match plot conventions.
        return height - (value - y0) * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">',
        _STYLE,
    ]
    if title:
        parts.append(
            f'<text x="4" y="10" style="font: 8px sans-serif">{title}</text>'
        )
    for u, v in network.topology.edges():
        pu, pv = network.positions[u], network.positions[v]
        parts.append(
            f'<line class="link" x1="{sx(pu.x):.1f}" y1="{sy(pu.y):.1f}" '
            f'x2="{sx(pv.x):.1f}" y2="{sy(pv.y):.1f}"/>'
        )
    for node, position in network.positions.items():
        if node == source:
            css = "source"
            radius = 2.4 * scale / 6.0
        elif node in forward:
            css = "forward"
            radius = 2.0 * scale / 6.0
        else:
            css = "plain"
            radius = 1.4 * scale / 6.0
        parts.append(
            f'<circle class="{css}" cx="{sx(position.x):.1f}" '
            f'cy="{sy(position.y):.1f}" r="{radius:.1f}"/>'
        )
        if labels:
            parts.append(
                f'<text class="label" x="{sx(position.x) + 2:.1f}" '
                f'y="{sy(position.y) - 2:.1f}">{node}</text>'
            )
    parts.append("</svg>")
    return "".join(parts)
