"""Terminal line charts for experiment results.

Renders a :class:`~repro.metrics.results.ResultTable` as a fixed-size
character grid — enough to eyeball the orderings and crossovers the paper's
figures show, with no plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence

from ..metrics.results import ResultTable

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    table: ResultTable, width: int = 60, height: int = 18
) -> str:
    """An ASCII chart of every series in ``table``.

    Each series gets a marker character; overlapping points show the later
    series' marker.  Axes are annotated with min/max values.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs at least 10x4 characters")
    points = [
        (point.x, point.mean)
        for series in table.series
        for point in series.points
    ]
    if not points:
        return f"{table.title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, series in enumerate(table.series):
        marker = _MARKERS[index % len(_MARKERS)]
        for point in series.points:
            col = round((point.x - x_low) / x_span * (width - 1))
            row = round((point.mean - y_low) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [table.title]
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={series.label}"
        for i, series in enumerate(table.series)
    )
    lines.append(legend)
    lines.append(f"{y_high:10.2f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{y_low:10.2f} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{x_low:<10.0f}" + " " * (width - 20) + f"{x_high:>10.0f}"
    )
    lines.append(" " * 12 + table.x_label)
    return "\n".join(lines)
