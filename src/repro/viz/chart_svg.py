"""SVG line charts for experiment results.

Renders a :class:`~repro.metrics.results.ResultTable` as a standalone
SVG line chart — axes, ticks, per-series polylines with distinct dash
patterns and markers, and a legend — so regenerated figures can sit next
to the paper's originals without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Tuple

from ..metrics.results import ResultTable, Series

__all__ = ["chart_svg"]

_COLORS = [
    "#2040a0",  # blue
    "#c03020",  # red
    "#208040",  # green
    "#806010",  # ochre
    "#7030a0",  # purple
    "#108080",  # teal
]

_DASHES = ["", "6,3", "2,3", "8,3,2,3", "4,2", "1,3"]


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    """Roughly ``count`` human-friendly tick positions covering a range."""
    if high <= low:
        return [low]
    raw_step = (high - low) / max(1, count - 1)
    magnitude = 10 ** int(f"{raw_step:e}".split("e")[1])
    for factor in (1, 2, 5, 10):
        step = factor * magnitude
        if step >= raw_step:
            break
    start = int(low / step) * step
    ticks = []
    value = start
    while value <= high + step / 2:
        if value >= low - step / 2:
            ticks.append(round(value, 10))
        value += step
    return ticks or [low]


def chart_svg(
    table: ResultTable,
    width: int = 480,
    height: int = 320,
) -> str:
    """A complete SVG document plotting every series of ``table``."""
    if width < 160 or height < 120:
        raise ValueError("chart needs at least 160x120 pixels")
    margin_left, margin_right = 52.0, 16.0
    margin_top, margin_bottom = 34.0, 60.0
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    points = [
        (p.x, p.mean) for s in table.series for p in s.points
    ]
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<text x="{margin_left}" y="16" font-size="13">{table.title}</text>',
    ]
    if not points:
        parts.append(
            f'<text x="{width / 2:.0f}" y="{height / 2:.0f}" '
            f'text-anchor="middle">(no data)</text></svg>'
        )
        return "".join(parts)

    x_low, x_high = min(p[0] for p in points), max(p[0] for p in points)
    y_low, y_high = 0.0, max(p[1] for p in points) * 1.05 or 1.0
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    def sx(x: float) -> float:
        return margin_left + (x - x_low) / x_span * plot_w

    def sy(y: float) -> float:
        return margin_top + plot_h - (y - y_low) / y_span * plot_h

    # Axes and ticks.
    parts.append(
        f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#404040" stroke-width="1"/>'
    )
    for tick in _nice_ticks(x_low, x_high):
        parts.append(
            f'<line x1="{sx(tick):.1f}" y1="{margin_top + plot_h:.1f}" '
            f'x2="{sx(tick):.1f}" y2="{margin_top + plot_h + 4:.1f}" '
            f'stroke="#404040"/>'
            f'<text x="{sx(tick):.1f}" y="{margin_top + plot_h + 16:.1f}" '
            f'text-anchor="middle">{tick:g}</text>'
        )
    for tick in _nice_ticks(y_low, y_high):
        parts.append(
            f'<line x1="{margin_left - 4:.1f}" y1="{sy(tick):.1f}" '
            f'x2="{margin_left:.1f}" y2="{sy(tick):.1f}" stroke="#404040"/>'
            f'<text x="{margin_left - 7:.1f}" y="{sy(tick) + 4:.1f}" '
            f'text-anchor="end">{tick:g}</text>'
        )
    parts.append(
        f'<text x="{margin_left + plot_w / 2:.0f}" '
        f'y="{height - 28:.0f}" text-anchor="middle">{table.x_label}</text>'
    )
    parts.append(
        f'<text x="14" y="{margin_top + plot_h / 2:.0f}" '
        f'text-anchor="middle" transform="rotate(-90 14 '
        f'{margin_top + plot_h / 2:.0f})">{table.y_label}</text>'
    )

    # Series.
    for index, series in enumerate(table.series):
        color = _COLORS[index % len(_COLORS)]
        dash = _DASHES[index % len(_DASHES)]
        ordered = sorted(series.points, key=lambda p: p.x)
        coordinates = " ".join(
            f"{sx(p.x):.1f},{sy(p.mean):.1f}" for p in ordered
        )
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        parts.append(
            f'<polyline points="{coordinates}" fill="none" '
            f'stroke="{color}" stroke-width="1.6"{dash_attr}/>'
        )
        for p in ordered:
            parts.append(
                f'<circle cx="{sx(p.x):.1f}" cy="{sy(p.mean):.1f}" '
                f'r="2.6" fill="{color}"/>'
            )

    # Legend along the bottom.
    legend_y = height - 10
    cursor = margin_left
    for index, series in enumerate(table.series):
        color = _COLORS[index % len(_COLORS)]
        parts.append(
            f'<line x1="{cursor:.0f}" y1="{legend_y - 4}" '
            f'x2="{cursor + 18:.0f}" y2="{legend_y - 4}" stroke="{color}" '
            f'stroke-width="2"/>'
            f'<text x="{cursor + 22:.0f}" y="{legend_y}">{series.label}</text>'
        )
        cursor += 30 + 7 * len(series.label)
    parts.append("</svg>")
    return "".join(parts)
