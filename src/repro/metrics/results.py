"""Experiment result records and paper-style table formatting.

Each figure in the paper plots *number of forward nodes* against *number
of nodes*, one series per algorithm, one panel per average degree (and,
for Figures 14-16, per view radius).  :class:`Series` is one curve,
:class:`ResultTable` one panel, and :func:`format_table` renders the rows
the benchmark harness prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..instrument import merge_counter_dicts

__all__ = ["DataPoint", "Series", "ResultTable", "format_table"]


@dataclass(frozen=True)
class DataPoint:
    """One measured point: the x value and the aggregated metric."""

    x: float
    mean: float
    half_width: float = 0.0
    samples: int = 0
    #: Instrumentation counters aggregated over the point's samples, as a
    #: plain name -> count mapping (``None`` when instrumentation was off).
    #: Kept as a dict so points pickle cheaply across worker processes.
    counters: Optional[Dict[str, int]] = None
    #: Secondary per-point metrics beyond the headline mean — the traffic
    #: sweeps carry latency percentiles (``latency_p50``/``p95``/``p99``)
    #: and ``goodput`` here.  ``None`` for classic figure points, which
    #: keeps their JSON export byte-stable.
    extras: Optional[Dict[str, float]] = None


@dataclass
class Series:
    """One labelled curve (an algorithm under one configuration)."""

    label: str
    points: List[DataPoint] = field(default_factory=list)

    def add(self, point: DataPoint) -> None:
        """Append a measured point."""
        self.points.append(point)

    def xs(self) -> List[float]:
        """The series' x values, in insertion order."""
        return [p.x for p in self.points]

    def means(self) -> List[float]:
        """The series' means, aligned with :meth:`xs`."""
        return [p.mean for p in self.points]

    def value_at(self, x: float) -> Optional[float]:
        """The mean at ``x``, or ``None`` when unmeasured.

        Matching uses :func:`math.isclose` rather than ``==`` so x values
        that went through float arithmetic (density sweeps computed as
        ``n * spacing``, deserialised JSON, …) still find their point.
        """
        for point in self.points:
            if math.isclose(point.x, x, rel_tol=1e-9, abs_tol=1e-12):
                return point.mean
        return None

    def total_counters(self) -> Optional[Dict[str, int]]:
        """Instrumentation counters merged across the series' points.

        ``None`` when no point carries counters; points without counters
        are skipped otherwise.
        """
        payloads = [p.counters for p in self.points if p.counters is not None]
        if not payloads:
            return None
        return merge_counter_dicts(payloads)


@dataclass
class ResultTable:
    """One panel: a title, an x-axis, and several series."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)

    def add_series(self, series: Series) -> None:
        """Append a series to the panel."""
        self.series.append(series)

    def get_series(self, label: str) -> Series:
        """The series with the given label (KeyError if absent)."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labelled {label!r}")

    def xs(self) -> List[float]:
        """Sorted union of every series' x values."""
        values: List[float] = []
        for series in self.series:
            for x in series.xs():
                if x not in values:
                    values.append(x)
        return sorted(values)

    def total_counters(self) -> Optional[Dict[str, int]]:
        """Instrumentation counters merged across every series.

        ``None`` when no series carries counters.
        """
        payloads = [
            totals
            for totals in (series.total_counters() for series in self.series)
            if totals is not None
        ]
        if not payloads:
            return None
        return merge_counter_dicts(payloads)


def format_table(table: ResultTable, precision: int = 2) -> str:
    """Render a :class:`ResultTable` as aligned text rows.

    One row per x value, one column per series — the same rows the paper's
    figures plot.
    """
    labels = [series.label for series in table.series]
    header = [table.x_label, *labels]
    rows: List[List[str]] = [header]
    for x in table.xs():
        row = [f"{x:g}"]
        for series in table.series:
            value = series.value_at(x)
            row.append("-" if value is None else f"{value:.{precision}f}")
        rows.append(row)
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(header))
    ]
    lines = [table.title, ""]
    for index, row in enumerate(rows):
        line = "  ".join(
            cell.rjust(width) for cell, width in zip(row, widths)
        )
        lines.append(line)
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
