"""Statistics: means, Student-t confidence intervals, and the paper's
repeat-until-precision stopping rule.

The paper: "For each configuration, the simulation is repeated until the
90% confidence interval of the average value is within ±1%."
:func:`repeat_until_confident` implements exactly that, with configurable
confidence and relative half-width plus safety bounds for benchmark use.

The t-distribution quantile is computed from scratch (incomplete-beta
inversion via bisection) so the core library stays dependency-free; tests
cross-check it against ``scipy.stats``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

__all__ = [
    "mean",
    "percentile",
    "sample_stdev",
    "student_t_quantile",
    "ConfidenceInterval",
    "confidence_interval",
    "RepeatResult",
    "repeat_until_confident",
    "jain_fairness_index",
]


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sequence."""
    if not samples:
        raise ValueError("mean of an empty sample")
    return sum(samples) / len(samples)


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100), linearly interpolated.

    The classic "linear" method (numpy's default): the ``q``-th
    percentile of ``n`` sorted samples sits at fractional rank
    ``(n - 1) * q / 100`` and interpolates between its neighbours.  Used
    for the broadcast service's latency SLO columns (p50/p95/p99), so it
    must be exact and dependency-free.  Raises on an empty sequence.
    """
    if not samples:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n Σx²)``.

    1.0 means perfectly even (every node carries equal load); ``1/n``
    means one node carries everything.  Used by the workload experiments
    to compare how evenly static versus dynamic forward duty spreads —
    the energy-fairness concern that motivated Span.
    """
    if not values:
        raise ValueError("fairness of an empty sequence")
    if any(v < 0 for v in values):
        raise ValueError("fairness expects non-negative values")
    total = sum(values)
    if total == 0:
        return 1.0  # nobody loaded: trivially fair
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


def sample_stdev(samples: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; needs >= 2 samples."""
    if len(samples) < 2:
        raise ValueError("sample stdev needs at least two samples")
    centre = mean(samples)
    variance = sum((x - centre) ** 2 for x in samples) / (len(samples) - 1)
    return math.sqrt(variance)


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Numerical Recipes)."""
    max_iterations = 200
    epsilon = 3e-14
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            return h
    raise RuntimeError("incomplete beta continued fraction did not converge")


def _incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta ``I_x(a, b)``."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    front = math.exp(
        a * math.log(x) + b * math.log(1.0 - x) - _log_beta(a, b)
    )
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _student_t_cdf(t: float, dof: int) -> float:
    x = dof / (dof + t * t)
    probability = 0.5 * _incomplete_beta(dof / 2.0, 0.5, x)
    return 1.0 - probability if t > 0 else probability


def student_t_quantile(probability: float, dof: int) -> float:
    """The ``probability`` quantile of Student's t with ``dof`` degrees.

    Solved by bisection on the CDF — slow but exact enough, and only ever
    called a handful of times per experiment.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {probability}")
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    if abs(probability - 0.5) < 1e-15:
        return 0.0
    low, high = -1e6, 1e6
    for _ in range(200):
        mid = (low + high) / 2.0
        if _student_t_cdf(mid, dof) < probability:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean."""

    mean: float
    half_width: float
    confidence: float
    samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean == 0:
            return math.inf if self.half_width else 0.0
        return abs(self.half_width / self.mean)


def confidence_interval(
    samples: Sequence[float], confidence: float = 0.90
) -> ConfidenceInterval:
    """Student-t confidence interval of the sample mean."""
    if len(samples) < 2:
        raise ValueError("confidence interval needs at least two samples")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    centre = mean(samples)
    stdev = sample_stdev(samples)
    quantile = student_t_quantile(
        1.0 - (1.0 - confidence) / 2.0, len(samples) - 1
    )
    half_width = quantile * stdev / math.sqrt(len(samples))
    return ConfidenceInterval(
        mean=centre,
        half_width=half_width,
        confidence=confidence,
        samples=len(samples),
    )


@dataclass(frozen=True)
class RepeatResult:
    """Outcome of :func:`repeat_until_confident`."""

    mean: float
    interval: ConfidenceInterval
    samples: List[float]
    converged: bool


def repeat_until_confident(
    sample: Callable[[], float],
    confidence: float = 0.90,
    relative_half_width: float = 0.01,
    min_runs: int = 10,
    max_runs: int = 10_000,
    batch: int = 10,
) -> RepeatResult:
    """Draw samples until the CI is tight enough (the paper's stopping rule).

    Runs ``sample()`` in batches; stops once the ``confidence`` interval's
    half-width falls within ``relative_half_width`` of the mean, or after
    ``max_runs`` draws (``converged=False``).
    """
    if min_runs < 2:
        raise ValueError(f"min_runs must be >= 2, got {min_runs}")
    if max_runs < min_runs:
        raise ValueError("max_runs must be >= min_runs")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    samples: List[float] = []
    while len(samples) < min_runs:
        samples.append(float(sample()))
    interval = confidence_interval(samples, confidence)
    while (
        interval.relative_half_width() > relative_half_width
        and len(samples) < max_runs
    ):
        for _ in range(min(batch, max_runs - len(samples))):
            samples.append(float(sample()))
        interval = confidence_interval(samples, confidence)
    return RepeatResult(
        mean=interval.mean,
        interval=interval,
        samples=samples,
        converged=interval.relative_half_width() <= relative_half_width,
    )
