"""Statistics and result aggregation for the experiment harness."""

from .stats import (
    ConfidenceInterval,
    RepeatResult,
    confidence_interval,
    mean,
    percentile,
    repeat_until_confident,
    sample_stdev,
    student_t_quantile,
)
from .results import DataPoint, ResultTable, Series, format_table

__all__ = [
    "ConfidenceInterval",
    "RepeatResult",
    "confidence_interval",
    "mean",
    "percentile",
    "repeat_until_confident",
    "sample_stdev",
    "student_t_quantile",
    "DataPoint",
    "ResultTable",
    "Series",
    "format_table",
]
