"""Discrete-event simulation: scheduler, MAC models, hello, broadcast engine."""

from .engine import (
    BroadcastOutcome,
    BroadcastSession,
    MessageState,
    MessageTable,
    SimulationEnvironment,
    run_broadcast,
    session_seed,
)
from .energy import (
    EnergyAwarePriority,
    EnergyTracker,
    LifetimeResult,
    network_lifetime,
)
from .events import (
    NULL_BUS,
    BackoffScheduled,
    Decide,
    Deliver,
    Designate,
    Drop,
    EventBus,
    HelloBeacon,
    Nack,
    NullBus,
    RecordingBus,
    SimEvent,
    Transmit,
    events_from_jsonl,
    events_to_jsonl,
)
from .hello import HelloState, run_hello_rounds
from .mac import CollisionMac, IdealMac, JitterMac, MacModel
from .packet import Packet, TrailEntry
from .reliable import ReliableBroadcastSession, ReliableOutcome
from .rounds import run_round_broadcast
from .scheduler import EventScheduler
from .service import (
    MessageOutcome,
    ServiceEngine,
    ServiceOutcome,
    service_seed,
)
from .trace import TraceEvent, TraceRecorder
from .traffic import (
    BurstyTraffic,
    Message,
    PoissonTraffic,
    ScriptedTraffic,
    SingleShot,
    TrafficModel,
    ZipfTraffic,
    traffic_seed,
)

__all__ = [
    "BroadcastOutcome",
    "BroadcastSession",
    "MessageState",
    "MessageTable",
    "SimulationEnvironment",
    "run_broadcast",
    "session_seed",
    "MessageOutcome",
    "ServiceEngine",
    "ServiceOutcome",
    "service_seed",
    "BurstyTraffic",
    "Message",
    "PoissonTraffic",
    "ScriptedTraffic",
    "SingleShot",
    "TrafficModel",
    "ZipfTraffic",
    "traffic_seed",
    "EnergyAwarePriority",
    "EnergyTracker",
    "LifetimeResult",
    "network_lifetime",
    "SimEvent",
    "Transmit",
    "Deliver",
    "Drop",
    "Decide",
    "Designate",
    "BackoffScheduled",
    "HelloBeacon",
    "Nack",
    "EventBus",
    "NullBus",
    "RecordingBus",
    "NULL_BUS",
    "events_to_jsonl",
    "events_from_jsonl",
    "HelloState",
    "run_hello_rounds",
    "CollisionMac",
    "IdealMac",
    "JitterMac",
    "MacModel",
    "Packet",
    "ReliableBroadcastSession",
    "run_round_broadcast",
    "ReliableOutcome",
    "TrailEntry",
    "EventScheduler",
    "TraceEvent",
    "TraceRecorder",
]
