"""Discrete-event simulation: scheduler, MAC models, hello, broadcast engine."""

from .engine import (
    BroadcastOutcome,
    BroadcastSession,
    SimulationEnvironment,
    run_broadcast,
)
from .energy import (
    EnergyAwarePriority,
    EnergyTracker,
    LifetimeResult,
    network_lifetime,
)
from .hello import HelloState, run_hello_rounds
from .mac import CollisionMac, IdealMac, JitterMac, MacModel
from .packet import Packet, TrailEntry
from .reliable import ReliableBroadcastSession, ReliableOutcome
from .rounds import run_round_broadcast
from .scheduler import EventScheduler
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "BroadcastOutcome",
    "BroadcastSession",
    "SimulationEnvironment",
    "run_broadcast",
    "EnergyAwarePriority",
    "EnergyTracker",
    "LifetimeResult",
    "network_lifetime",
    "HelloState",
    "run_hello_rounds",
    "CollisionMac",
    "IdealMac",
    "JitterMac",
    "MacModel",
    "Packet",
    "ReliableBroadcastSession",
    "run_round_broadcast",
    "ReliableOutcome",
    "TrailEntry",
    "EventScheduler",
    "TraceEvent",
    "TraceRecorder",
]
