"""MAC-layer models.

The paper's evaluation uses "static networks with a collision-free MAC
layer" — :class:`IdealMac`.  Two further models support the ablations the
paper motivates elsewhere:

* :class:`JitterMac` — collision-free but with a random forwarding jitter,
  the mitigation the authors report relieves collisions;
* :class:`CollisionMac` — transmissions arriving at a receiver within a
  vulnerability window destroy each other, the broadcast-storm failure
  mode.  Combined with ``JitterMac``-style jitter it reproduces the claim
  that a small jitter restores deliverability.

A MAC decides, per transmission, when (and whether) each neighbor receives
the copy.  Loss is reported as ``None``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..instrument import _STACK as _COUNTER_STACK

__all__ = ["MacModel", "IdealMac", "JitterMac", "CollisionMac"]

Delivery = Tuple[int, Optional[float]]


def _tally(result: List[Delivery]) -> List[Delivery]:
    """Report one transmission's deliveries/losses into active counters."""
    if _COUNTER_STACK:
        counters = _COUNTER_STACK[-1]
        delivered = sum(1 for _, arrival in result if arrival is not None)
        counters.mac_deliveries += delivered
        counters.mac_losses += len(result) - delivered
    return result


class MacModel(ABC):
    """Maps one transmission to per-neighbor arrival times (or loss)."""

    @abstractmethod
    def deliveries(
        self,
        sender: int,
        time: float,
        neighbors: Iterable[int],
        rng: random.Random,
    ) -> List[Delivery]:
        """``(receiver, arrival_time)`` pairs; ``None`` arrival means lost."""

    def corrupted(self, receiver: int, arrival: float) -> bool:
        """Whether a previously scheduled copy got corrupted in flight.

        Checked by the engine when the delivery event fires, so a later
        transmission can retroactively destroy an earlier overlapping one
        (both copies of a collision are garbage at the receiver).
        """
        return False

    def reset(self) -> None:
        """Clear any per-broadcast state (stateful models override)."""

    def retire(self, now: float) -> None:
        """Discard interference state that can no longer matter at ``now``.

        The legacy engine runs one broadcast and resets between runs, so
        stateful MACs could accumulate freely.  The broadcast service
        shares one MAC across *every* concurrent message and calls this
        on each injection: models prune whatever bookkeeping is outside
        their interference horizon (stateless models do nothing), so a
        long-lived service run stays O(in-flight) instead of O(history).
        """


class IdealMac(MacModel):
    """Collision-free unit-delay medium (the paper's setting)."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay <= 0:
            raise ValueError(f"delay must be positive, got {delay}")
        self.delay = delay

    def deliveries(
        self,
        sender: int,
        time: float,
        neighbors: Iterable[int],
        rng: random.Random,
    ) -> List[Delivery]:
        arrival = time + self.delay
        return _tally([(receiver, arrival) for receiver in neighbors])


class JitterMac(MacModel):
    """Collision-free medium with uniform random per-link jitter."""

    def __init__(self, delay: float = 1.0, jitter: float = 0.5) -> None:
        if delay <= 0:
            raise ValueError(f"delay must be positive, got {delay}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.delay = delay
        self.jitter = jitter

    def deliveries(
        self,
        sender: int,
        time: float,
        neighbors: Iterable[int],
        rng: random.Random,
    ) -> List[Delivery]:
        return _tally([
            (receiver, time + self.delay + rng.uniform(0.0, self.jitter))
            for receiver in neighbors
        ])


class CollisionMac(MacModel):
    """Two arrivals within the vulnerability window collide and are lost.

    Tracks, per receiver, the arrival time of every scheduled copy.  When
    two copies land within ``window`` of each other at the same receiver,
    **both** are destroyed: the new one is reported lost immediately and
    the earlier one is poisoned, which the engine discovers through
    :meth:`corrupted` when its delivery event fires.  This is a
    simplified interference model — adequate for the
    redundancy-vs-reliability ablation, not a full 802.11 simulation.
    """

    def __init__(
        self, delay: float = 1.0, jitter: float = 0.0, window: float = 0.5
    ) -> None:
        if delay <= 0:
            raise ValueError(f"delay must be positive, got {delay}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.delay = delay
        self.jitter = jitter
        self.window = window
        #: Every arrival ever attempted (even lost copies occupy air time).
        self._arrivals: Dict[int, List[float]] = {}
        #: Arrivals that were scheduled as deliveries and may be poisoned.
        self._scheduled: Dict[int, Set[float]] = {}
        self._poisoned: Dict[int, Set[float]] = {}
        #: Count of copies destroyed by collisions (for reporting).
        self.collisions = 0

    def reset(self) -> None:
        self._arrivals.clear()
        self._scheduled.clear()
        self._poisoned.clear()
        self.collisions = 0

    def retire(self, now: float) -> None:
        """Drop arrivals that finished more than a window before ``now``.

        Any *future* arrival computed from time ``now`` lands at ``now +
        delay > now``, so history older than ``now - window`` can never
        overlap it again; ``corrupted`` checks fire at the arrival
        instant, so poison marks in that past have already been read.
        The ``collisions`` total is preserved — only bookkeeping ages out.
        """
        cutoff = now - self.window
        for receiver in list(self._arrivals):
            history = [t for t in self._arrivals[receiver] if t >= cutoff]
            if history:
                self._arrivals[receiver] = history
            else:
                del self._arrivals[receiver]
        for table in (self._scheduled, self._poisoned):
            for receiver in list(table):
                kept = {t for t in table[receiver] if t >= cutoff}
                if kept:
                    table[receiver] = kept
                else:
                    del table[receiver]

    def deliveries(
        self,
        sender: int,
        time: float,
        neighbors: Iterable[int],
        rng: random.Random,
    ) -> List[Delivery]:
        result: List[Delivery] = []
        collisions_before = self.collisions
        for receiver in neighbors:
            arrival = time + self.delay + (
                rng.uniform(0.0, self.jitter) if self.jitter else 0.0
            )
            history = self._arrivals.setdefault(receiver, [])
            overlapping = [
                earlier
                for earlier in history
                if abs(arrival - earlier) < self.window
            ]
            history.append(arrival)
            if overlapping:
                # The new copy is lost, and any previously *scheduled*
                # overlapping copy is retroactively destroyed too.
                poisoned = self._poisoned.setdefault(receiver, set())
                scheduled = self._scheduled.get(receiver, set())
                for earlier in overlapping:
                    if earlier in scheduled and earlier not in poisoned:
                        poisoned.add(earlier)
                        self.collisions += 1
                self.collisions += 1
                result.append((receiver, None))
            else:
                self._scheduled.setdefault(receiver, set()).add(arrival)
                result.append((receiver, arrival))
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].mac_collisions += (
                self.collisions - collisions_before
            )
        return _tally(result)

    def corrupted(self, receiver: int, arrival: float) -> bool:
        return arrival in self._poisoned.get(receiver, ())
