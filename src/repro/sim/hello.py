"""The "hello" protocol: k rounds of neighborhood information exchange.

Definition 2 defines k-hop information operationally: a local view contains
k-hop information if it takes at least ``k`` rounds of neighborhood
exchanges to build.  This module simulates those rounds message by message:

* round 1 — every node announces itself; receivers learn their 1-hop
  neighbors (and the advertised priority metrics);
* round ``i > 1`` — every node announces its current *link table*;
  receivers merge it, learning links up to ``i`` hops out.

After ``k`` rounds, node ``v``'s table restricted to what the paper defines
as visible equals ``G_k(v)`` — an equality the integration tests assert
against :meth:`repro.graph.topology.Topology.k_hop_view_graph`.

Each beacon is published as a typed
:class:`~repro.sim.events.HelloBeacon` on the given bus and counted into
the active :func:`repro.instrument.collecting` scope
(``hello_messages``), which is how the measured-overhead table checks
the analytical ``n * (k + extra_rounds)`` hello cost against actually
simulated messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..graph.topology import Topology
from ..instrument import _STACK as _COUNTER_STACK
from .events import NULL_BUS, EventBus, HelloBeacon

__all__ = ["HelloState", "run_hello_rounds"]

Edge = Tuple[int, int]


@dataclass
class HelloState:
    """One node's accumulated neighborhood knowledge."""

    node: int
    known_nodes: Set[int] = field(default_factory=set)
    known_edges: Set[Edge] = field(default_factory=set)
    rounds_completed: int = 0

    def as_topology(self) -> Topology:
        """The known subgraph as a :class:`Topology`."""
        graph = Topology(nodes=self.known_nodes)
        for u, v in self.known_edges:
            graph.add_edge(u, v)
        return graph


def _normalised(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


def run_hello_rounds(
    graph: Topology, k: int, bus: Optional[EventBus] = None
) -> Dict[int, HelloState]:
    """Execute ``k`` synchronous hello rounds on every node of ``graph``.

    Returns each node's :class:`HelloState`.  The message a node sends in
    round ``i`` is its knowledge after round ``i - 1``, exactly like
    periodic hello beacons whose payload is the sender's current table.
    One beacon per node per round is emitted on ``bus`` and tallied into
    the active instrumentation scope.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    bus = bus or NULL_BUS
    states: Dict[int, HelloState] = {
        node: HelloState(node=node, known_nodes={node})
        for node in graph.nodes()
    }
    for round_index in range(k):
        # Snapshot everyone's outgoing message first: synchronous rounds.
        messages: Dict[int, Tuple[FrozenSet[int], FrozenSet[Edge]]] = {
            node: (
                frozenset(state.known_nodes),
                frozenset(state.known_edges),
            )
            for node, state in states.items()
        }
        if _COUNTER_STACK:
            # One beacon per node per round, delivered by local broadcast.
            _COUNTER_STACK[-1].hello_messages += len(states)
        if bus.active:
            for node in states:
                bus.emit(
                    HelloBeacon(
                        time=float(round_index),
                        node=node,
                        round_index=round_index,
                    )
                )
        for node, state in states.items():
            for sender in graph.neighbors(node):
                sender_nodes, sender_edges = messages[sender]
                state.known_nodes |= sender_nodes
                state.known_edges |= sender_edges
                state.known_nodes.add(sender)
                state.known_edges.add(_normalised(node, sender))
            state.rounds_completed += 1
    return states
