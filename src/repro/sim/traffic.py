"""Traffic models: the arrival processes feeding the broadcast service.

The paper evaluates one broadcast at a time; a deployed network carries a
*stream* of them.  A :class:`TrafficModel` turns a deployment into a
deterministic list of :class:`Message` injections — who broadcasts, when,
how large the payload is, and how long the message stays relevant (its
TTL).  The :class:`~repro.sim.service.ServiceEngine` schedules every
injection on its shared scheduler and drives all in-flight broadcasts
through one MAC and one event bus.

Determinism contract: every model derives its ``random.Random`` from a
``sha256("TrafficModel|<kind>|<seed>")`` digest (:func:`traffic_seed`),
the same per-scope derivation the engine and workload layers use, so a
traffic schedule is a pure function of ``(model parameters, topology)``
— byte-identical in any process, at any worker count.  Models draw only
from their own generator, never from the service's decision RNG, so
adding traffic cannot perturb protocol backoff streams.

Three arrival processes cover the classic load shapes:

* :class:`PoissonTraffic` — memoryless arrivals at a fixed offered rate,
  uniformly random sources;
* :class:`BurstyTraffic` — an on/off (interrupted Poisson) process:
  exponential bursts of elevated rate separated by silent gaps;
* :class:`ZipfTraffic` — Poisson arrivals whose sources follow a Zipf
  rank distribution, modelling a few chatty nodes dominating the load.

:class:`SingleShot` is the degenerate one-message model the
compatibility wrapper :func:`repro.sim.engine.run_broadcast` uses; the
service path under ``SingleShot`` is byte-identical to the legacy
single-broadcast engine (gated in ``benchmarks/bench_traffic.py``).
"""

from __future__ import annotations

import hashlib
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..graph.topology import Topology

__all__ = [
    "Message",
    "TrafficModel",
    "SingleShot",
    "ScriptedTraffic",
    "PoissonTraffic",
    "BurstyTraffic",
    "ZipfTraffic",
    "traffic_seed",
]


def traffic_seed(kind: str, seed: int) -> int:
    """The documented RNG seed of one traffic model instance.

    ``sha256("TrafficModel|{kind}|{seed}")`` truncated to 64 bits — the
    same derivation family as :func:`repro.sim.engine.session_seed` and
    :func:`repro.experiments.workload.workload_seed`, under a
    traffic-specific tag so arrival draws never correlate with protocol
    backoff or workload source streams.
    """
    digest = hashlib.sha256(f"TrafficModel|{kind}|{seed}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Message:
    """One broadcast message a traffic model injects into the service.

    Attributes
    ----------
    message_id:
        Dense sequential id, unique within one service run; keys all
        per-message state (dedup tables, forward sets, events).
    source:
        The originating node.
    injected_at:
        Simulation time of the injection (the latency clock's zero).
    size_units:
        Abstract payload size added to every transmission of this
        message on top of the protocol's header/trail overhead (see
        :meth:`repro.sim.packet.Packet.size_units`).
    ttl:
        Time-to-live in simulation time units from ``injected_at``;
        copies arriving (or queued transmissions firing) after
        ``injected_at + ttl`` are dropped with ``Drop(reason=
        "ttl_expired")``.  ``None`` means the message never expires.
    """

    message_id: int
    source: int
    injected_at: float = 0.0
    size_units: int = 0
    ttl: Optional[float] = None

    def __post_init__(self) -> None:
        if self.injected_at < 0:
            raise ValueError(
                f"injected_at must be non-negative, got {self.injected_at}"
            )
        if self.size_units < 0:
            raise ValueError(
                f"size_units must be non-negative, got {self.size_units}"
            )
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError(f"ttl must be positive, got {self.ttl}")

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` for immortal messages."""
        if self.ttl is None:
            return None
        return self.injected_at + self.ttl


class TrafficModel(ABC):
    """An arrival process: deployment in, injection schedule out.

    :meth:`generate` must be deterministic — same model parameters and
    same topology give the same schedule — and must return messages in
    non-decreasing ``injected_at`` order with dense ids ``0..count-1``.
    """

    #: Registry/display name of the arrival process.
    kind: str = "abstract"

    @abstractmethod
    def generate(self, graph: Topology) -> List[Message]:
        """The full injection schedule for one service run."""

    def _sources(self, graph: Topology) -> List[int]:
        """The eligible source nodes, in stable sorted order."""
        nodes = sorted(graph.nodes())
        if not nodes:
            raise ValueError("cannot generate traffic for an empty graph")
        return nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.kind!r}>"


class SingleShot(TrafficModel):
    """Exactly one message — the legacy single-broadcast workload."""

    kind = "single-shot"

    def __init__(
        self,
        source: int,
        injected_at: float = 0.0,
        size_units: int = 0,
        ttl: Optional[float] = None,
    ) -> None:
        self.source = source
        self.injected_at = injected_at
        self.size_units = size_units
        self.ttl = ttl

    def generate(self, graph: Topology) -> List[Message]:
        if self.source not in graph:
            raise KeyError(f"source {self.source} not in the deployment graph")
        return [
            Message(
                message_id=0,
                source=self.source,
                injected_at=self.injected_at,
                size_units=self.size_units,
                ttl=self.ttl,
            )
        ]


class ScriptedTraffic(TrafficModel):
    """A literal, pre-built injection schedule (tests, trace replay)."""

    kind = "scripted"

    def __init__(self, messages: Sequence[Message]) -> None:
        ordered = list(messages)
        for index, message in enumerate(ordered):
            if message.message_id != index:
                raise ValueError(
                    f"scripted message ids must be dense 0..n-1; entry "
                    f"{index} has id {message.message_id}"
                )
            if index and message.injected_at < ordered[index - 1].injected_at:
                raise ValueError(
                    "scripted injections must be in non-decreasing time order"
                )
        self.messages = ordered

    def generate(self, graph: Topology) -> List[Message]:
        for message in self.messages:
            if message.source not in graph:
                raise KeyError(
                    f"source {message.source} not in the deployment graph"
                )
        return list(self.messages)


class PoissonTraffic(TrafficModel):
    """Memoryless arrivals: exponential gaps at ``rate`` messages/time.

    Sources are drawn uniformly from the deployment's nodes.  ``count``
    bounds the schedule (a service run must terminate); the effective
    offered load is ``rate`` for the duration of the schedule.
    """

    kind = "poisson"

    def __init__(
        self,
        rate: float,
        count: int,
        seed: int = 0,
        size_units: int = 0,
        ttl: Optional[float] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        self.rate = rate
        self.count = count
        self.seed = seed
        self.size_units = size_units
        self.ttl = ttl

    def generate(self, graph: Topology) -> List[Message]:
        rng = random.Random(traffic_seed(self.kind, self.seed))
        sources = self._sources(graph)
        messages: List[Message] = []
        clock = 0.0
        for index in range(self.count):
            clock += rng.expovariate(self.rate)
            messages.append(
                Message(
                    message_id=index,
                    source=rng.choice(sources),
                    injected_at=clock,
                    size_units=self.size_units,
                    ttl=self.ttl,
                )
            )
        return messages


class BurstyTraffic(TrafficModel):
    """On/off (interrupted Poisson) arrivals.

    The process alternates exponentially distributed *on* periods (mean
    ``mean_on``), during which arrivals are Poisson at ``burst_rate``,
    with exponentially distributed silent *off* periods (mean
    ``mean_off``).  The long-run offered load is ``burst_rate *
    mean_on / (mean_on + mean_off)``.
    """

    kind = "bursty"

    def __init__(
        self,
        burst_rate: float,
        count: int,
        mean_on: float = 5.0,
        mean_off: float = 20.0,
        seed: int = 0,
        size_units: int = 0,
        ttl: Optional[float] = None,
    ) -> None:
        if burst_rate <= 0:
            raise ValueError(f"burst_rate must be positive, got {burst_rate}")
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError(
                f"mean_on/mean_off must be positive, got "
                f"{mean_on}/{mean_off}"
            )
        self.burst_rate = burst_rate
        self.count = count
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.seed = seed
        self.size_units = size_units
        self.ttl = ttl

    def generate(self, graph: Topology) -> List[Message]:
        rng = random.Random(traffic_seed(self.kind, self.seed))
        sources = self._sources(graph)
        messages: List[Message] = []
        clock = 0.0
        burst_end = rng.expovariate(1.0 / self.mean_on)
        while len(messages) < self.count:
            gap = rng.expovariate(self.burst_rate)
            if clock + gap > burst_end:
                # The burst ends before the next arrival: skip the off
                # period and start a fresh burst.
                clock = burst_end + rng.expovariate(1.0 / self.mean_off)
                burst_end = clock + rng.expovariate(1.0 / self.mean_on)
                continue
            clock += gap
            messages.append(
                Message(
                    message_id=len(messages),
                    source=rng.choice(sources),
                    injected_at=clock,
                    size_units=self.size_units,
                    ttl=self.ttl,
                )
            )
        return messages


class ZipfTraffic(TrafficModel):
    """Poisson arrivals with Zipf-distributed sources.

    Node ranks follow sorted id order; the node of rank ``r`` (1-based)
    sources messages with probability proportional to ``r**-exponent``.
    ``exponent = 0`` degenerates to uniform sources; larger exponents
    concentrate the offered load on a few chatty nodes — the skew that
    stresses per-node queues and fairness.
    """

    kind = "zipf"

    def __init__(
        self,
        rate: float,
        count: int,
        exponent: float = 1.0,
        seed: int = 0,
        size_units: int = 0,
        ttl: Optional[float] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        if exponent < 0:
            raise ValueError(f"exponent must be non-negative, got {exponent}")
        self.rate = rate
        self.count = count
        self.exponent = exponent
        self.seed = seed
        self.size_units = size_units
        self.ttl = ttl

    def generate(self, graph: Topology) -> List[Message]:
        rng = random.Random(traffic_seed(self.kind, self.seed))
        sources = self._sources(graph)
        weights = [
            (rank + 1) ** -self.exponent for rank in range(len(sources))
        ]
        messages: List[Message] = []
        clock = 0.0
        for index in range(self.count):
            clock += rng.expovariate(self.rate)
            (source,) = rng.choices(sources, weights=weights)
            messages.append(
                Message(
                    message_id=index,
                    source=source,
                    injected_at=clock,
                    size_units=self.size_units,
                    ttl=self.ttl,
                )
            )
        return messages
