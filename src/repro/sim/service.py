"""The broadcast service: many concurrent messages over one deployment.

The legacy engine (:class:`~repro.sim.engine.BroadcastSession`) runs one
broadcast to quiescence and throws everything away.  A deployed ad hoc
network instead carries a *stream* of broadcasts; this module is the
long-lived execution path for that stream:

* a :class:`~repro.sim.traffic.TrafficModel` produces the injection
  schedule (who broadcasts, when, payload size, TTL);
* one shared :class:`~repro.sim.scheduler.EventScheduler`, one MAC model
  and one event bus drive every in-flight message;
* per-``(node, message)`` protocol state lives in each node's
  :class:`~repro.sim.engine.MessageTable`, whose bounded egress FIFO
  adds explicit backpressure: a forward intent arriving while the node's
  transmitter is busy queues, and queues past ``queue_capacity`` are
  refused with ``Drop(reason="queue_full")``;
* messages carry a TTL — copies arriving (or queued transmissions coming
  up) after expiry are dropped with ``Drop(reason="ttl_expired")``;
* forward/designate decisions are pure functions of a node's snooped
  knowledge for every deterministic protocol, so the service reuses them
  across messages within one topology epoch (guarded by the graph's
  :meth:`~repro.graph.topology.Topology.version_stamp`; gossip opts out
  via ``cacheable_decisions = False``), counted as
  ``forward_set_reuses``.

Byte-identity contract: under a one-message
:class:`~repro.sim.traffic.SingleShot` model the service replays the
legacy engine's event and RNG order *exactly* — an idle node transmits
synchronously at its decision instant, the egress queue and transmitter
busy-window only engage when messages actually overlap, and traffic
models draw from their own seeded generators, never the decision RNG.
``benchmarks/bench_traffic.py`` gates this equivalence on every
configured coverage backend.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..algorithms.base import BroadcastProtocol, NodeContext
from ..instrument import InstrumentationCounters, collecting
from ..instrument import _STACK as _COUNTER_STACK
from .engine import (
    BroadcastOutcome,
    MessageState,
    MessageTable,
    SimulationEnvironment,
)
from .events import (
    NULL_BUS,
    BackoffScheduled,
    Decide,
    Deliver,
    Designate,
    Drop,
    EventBus,
    RecordingBus,
    SimEvent,
    Transmit,
)
from .mac import IdealMac, MacModel
from .packet import Packet
from .scheduler import EventScheduler
from .trace import TraceRecorder
from .traffic import Message, TrafficModel

__all__ = [
    "ServiceEngine",
    "ServiceOutcome",
    "MessageOutcome",
    "service_seed",
    "DEFAULT_QUEUE_CAPACITY",
    "DEFAULT_TX_TIME_PER_UNIT",
]

#: Default bound of each node's egress FIFO (forward intents, not bytes).
DEFAULT_QUEUE_CAPACITY = 8

#: Default transmitter occupancy per abstract size unit.  A packet of
#: ``s`` units keeps its sender busy for ``s * this`` time units; with
#: the unit-delay MAC and the default 4-unit header this makes a single
#: transmission cheap relative to the MAC delay, so light traffic rarely
#: queues while saturating traffic visibly does.
DEFAULT_TX_TIME_PER_UNIT = 0.1

#: Monotone sequence distinguishing same-process default-seeded engines.
_SERVICE_SEQUENCE = itertools.count()


def service_seed(sequence: int) -> int:
    """The documented default-RNG seed of one :class:`ServiceEngine`.

    ``sha256("ServiceEngine|{sequence}")`` truncated to 64 bits — the
    same derivation family as :func:`repro.sim.engine.session_seed`,
    under its own tag so service decision streams never collide with
    legacy session or traffic-model streams.
    """
    digest = hashlib.sha256(f"ServiceEngine|{sequence}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class MessageOutcome:
    """What happened to one injected message."""

    message: Message
    #: Nodes that actually transmitted this message.
    forward_nodes: Set[int]
    #: Nodes that received at least one intact copy (the source counts).
    delivered: Set[int]
    #: Copies received per node (sparse: only nodes that heard one).
    receipt_counts: Dict[int, int]
    #: Per-node designated sets announced while forwarding.
    designations: Dict[int, FrozenSet[int]]
    #: Abstract size units transmitted for this message.
    bytes_transmitted: int = 0
    #: Simulation time of the last *first* receipt (``None`` if nobody
    #: beyond the source ever heard it).
    completed_at: Optional[float] = None
    #: Whether every node of the deployment received the message.
    delivered_all: bool = False
    #: Drop events by reason (``loss``/``collision``/``queue_full``/
    #: ``ttl_expired``).
    drops: Dict[str, int] = field(default_factory=dict)

    @property
    def delivery_latency(self) -> Optional[float]:
        """Injection-to-last-first-receipt latency, if fully delivered.

        The service's SLO metric: how long until the *whole* network has
        the message.  ``None`` for partially delivered messages — they
        are failures, not latency samples.
        """
        if not self.delivered_all or self.completed_at is None:
            return None
        return self.completed_at - self.message.injected_at

    @property
    def forward_count(self) -> int:
        """Size of this message's forward node set."""
        return len(self.forward_nodes)


@dataclass
class ServiceOutcome:
    """Result of one service run: all messages plus shared bookkeeping."""

    #: Per-message outcomes, in message-id order.
    messages: List[MessageOutcome]
    #: Every node of the deployment (for ratio/expansion helpers).
    nodes: Tuple[int, ...]
    #: Simulation time of the last executed event.
    completion_time: float
    #: High-water mark over every node's egress queue.
    queue_depth_max: int = 0
    #: Backpressure + staleness drops (queue_full and ttl_expired events).
    messages_dropped: int = 0
    #: Forward/designate decisions served from the cross-message cache.
    forward_set_reuses: int = 0
    #: Typed event trace (``collect_trace=True``), in emission order.
    events: Optional[List[SimEvent]] = None
    #: Per-run work counters (``collect_counters=True``).
    counters: Optional[InstrumentationCounters] = None

    @property
    def delivered_count(self) -> int:
        """How many messages reached every node."""
        return sum(1 for m in self.messages if m.delivered_all)

    def latencies(self) -> List[float]:
        """Delivery latencies of fully delivered messages, in id order."""
        return [
            m.delivery_latency
            for m in self.messages
            if m.delivery_latency is not None
        ]

    def goodput(self) -> float:
        """Fully delivered messages per simulation time unit."""
        if self.completion_time <= 0:
            return 0.0
        return self.delivered_count / self.completion_time

    def offered_load(self) -> float:
        """Injected messages per simulation time unit (over the run)."""
        if self.completion_time <= 0:
            return 0.0
        return len(self.messages) / self.completion_time

    def single_outcome(self) -> BroadcastOutcome:
        """Collapse a one-message run into the legacy outcome shape.

        The compatibility bridge behind
        :func:`repro.sim.engine.run_broadcast`: field-for-field equal to
        what the deprecated direct :class:`BroadcastSession` produced,
        including the all-nodes (zero-defaulted) receipt-count table.
        """
        if len(self.messages) != 1:
            raise ValueError(
                f"single_outcome() needs exactly one message, "
                f"got {len(self.messages)}"
            )
        only = self.messages[0]
        receipt_counts = {node: 0 for node in self.nodes}
        receipt_counts.update(only.receipt_counts)
        events = self.events
        return BroadcastOutcome(
            source=only.message.source,
            forward_nodes=set(only.forward_nodes),
            delivered=set(only.delivered),
            transmissions=len(only.forward_nodes),
            completion_time=self.completion_time,
            designations=dict(only.designations),
            receipt_counts=receipt_counts,
            bytes_transmitted=only.bytes_transmitted,
            events=events,
            trace=(
                TraceRecorder.from_events(events)
                if events is not None
                else None
            ),
            counters=self.counters,
        )


class ServiceEngine:
    """Run a traffic model's message stream over one deployment.

    Parameters
    ----------
    env, protocol:
        The deployment and the broadcast algorithm, exactly as for the
        legacy session; ``protocol.prepare(env)`` must have been called.
    traffic:
        The :class:`~repro.sim.traffic.TrafficModel` producing the
        injection schedule.
    rng:
        Decision/backoff randomness.  When omitted, seeded from
        :func:`service_seed` (per-process monotone derivation).
    queue_capacity:
        Bound of each node's egress FIFO;
        :data:`DEFAULT_QUEUE_CAPACITY` by default, ``None`` unbounded.
    tx_time_per_unit:
        Transmitter occupancy per abstract packet size unit (see
        :data:`DEFAULT_TX_TIME_PER_UNIT`); 0 disables the busy window
        (and with it all queueing).
    reuse_decisions:
        Serve repeat forward/designate decisions from the cross-message
        cache (only for protocols with ``cacheable_decisions``).
    collect_trace / bus / collect_counters:
        As for the legacy session.

    An engine instance runs once: :meth:`run` drains the schedule (or
    stops at ``horizon``) and returns a :class:`ServiceOutcome`.
    """

    def __init__(
        self,
        env: SimulationEnvironment,
        protocol: BroadcastProtocol,
        traffic: TrafficModel,
        rng: Optional[random.Random] = None,
        mac: Optional[MacModel] = None,
        queue_capacity: Optional[int] = DEFAULT_QUEUE_CAPACITY,
        tx_time_per_unit: float = DEFAULT_TX_TIME_PER_UNIT,
        reuse_decisions: bool = True,
        collect_trace: bool = False,
        bus: Optional[EventBus] = None,
        collect_counters: bool = False,
    ) -> None:
        if tx_time_per_unit < 0:
            raise ValueError(
                f"tx_time_per_unit must be non-negative, got {tx_time_per_unit}"
            )
        self.env = env
        self.protocol = protocol
        self.traffic = traffic
        if rng is None:
            rng = random.Random(service_seed(next(_SERVICE_SEQUENCE)))
        self.rng = rng
        self.mac = mac or IdealMac()
        self.queue_capacity = queue_capacity
        self.tx_time_per_unit = tx_time_per_unit
        self.reuse_decisions = reuse_decisions and protocol.cacheable_decisions
        self.scheduler = EventScheduler()
        if bus is None:
            bus = RecordingBus() if collect_trace else NULL_BUS
        elif collect_trace and bus.recorded() is None:
            raise ValueError(
                "collect_trace=True needs a recording bus; pass a "
                "RecordingBus or drop the explicit bus argument"
            )
        self.bus = bus
        self._bus_on = bus.active
        self._collect_trace = collect_trace
        self._collect_counters = collect_counters
        self._tables: Dict[int, MessageTable] = {
            node: MessageTable(node, queue_capacity)
            for node in env.graph.nodes()
        }
        self._messages: Dict[int, Message] = {}
        self._forward: Dict[int, Set[int]] = {}
        self._delivered: Dict[int, Set[int]] = {}
        self._receipts: Dict[int, Dict[int, int]] = {}
        self._designations: Dict[int, Dict[int, FrozenSet[int]]] = {}
        self._bytes: Dict[int, int] = {}
        self._completed_at: Dict[int, float] = {}
        self._drops: Dict[int, Dict[str, int]] = {}
        self._messages_dropped = 0
        self._forward_set_reuses = 0
        #: Cross-message decision cache: knowledge key -> (forward,
        #: designated).  Sound only within one topology epoch, so the
        #: graph's version stamp guards every lookup.
        self._decision_cache: Dict[
            Tuple, Tuple[bool, FrozenSet[int]]
        ] = {}
        self._cache_stamp = env.graph.version_stamp()
        self._ran = False

    # ------------------------------------------------------------------

    def run(self, horizon: Optional[float] = None) -> ServiceOutcome:
        """Execute the full traffic schedule and report the outcome.

        ``horizon`` cuts the run off at a fixed simulation time (events
        beyond it never fire) — the saturation valve for overload
        sweeps; ``None`` runs to quiescence.
        """
        if self._ran:
            raise RuntimeError("a ServiceEngine instance runs only once")
        self._ran = True
        self._bus_on = self.bus.active
        schedule = self.traffic.generate(self.env.graph)
        for message in schedule:
            if message.source not in self._tables:
                raise KeyError(
                    f"message {message.message_id} source {message.source} "
                    f"not in the deployment graph"
                )
            self._messages[message.message_id] = message
            self._forward[message.message_id] = set()
            self._delivered[message.message_id] = set()
            self._receipts[message.message_id] = {}
            self._designations[message.message_id] = {}
            self._bytes[message.message_id] = 0
            self._drops[message.message_id] = {}
        counters: Optional[InstrumentationCounters] = None
        if self._collect_counters:
            with collecting() as counters:
                self._execute(schedule, horizon)
        else:
            self._execute(schedule, horizon)
        return self._assemble(counters)

    def _execute(
        self, schedule: List[Message], horizon: Optional[float]
    ) -> None:
        self.mac.reset()
        for message in schedule:
            self.scheduler.schedule_at(
                message.injected_at,
                lambda m=message: self._inject(m),
            )
        if horizon is None:
            self.scheduler.run()
        else:
            self.scheduler.run_until(horizon)
        queue_depth_max = self._queue_depth_max()
        if _COUNTER_STACK:
            top = _COUNTER_STACK[-1]
            if queue_depth_max > top.queue_depth_max:
                top.queue_depth_max = queue_depth_max

    def _queue_depth_max(self) -> int:
        return max(
            (table.queue_depth_max for table in self._tables.values()),
            default=0,
        )

    def _assemble(
        self, counters: Optional[InstrumentationCounters]
    ) -> ServiceOutcome:
        nodes = tuple(self.env.graph.nodes())
        node_count = len(nodes)
        outcomes: List[MessageOutcome] = []
        for mid in sorted(self._messages):
            message = self._messages[mid]
            delivered = set(self._delivered[mid])
            delivered.add(message.source)
            outcomes.append(
                MessageOutcome(
                    message=message,
                    forward_nodes=self._forward[mid],
                    delivered=delivered,
                    receipt_counts=self._receipts[mid],
                    designations=self._designations[mid],
                    bytes_transmitted=self._bytes[mid],
                    completed_at=self._completed_at.get(mid),
                    delivered_all=(len(delivered) == node_count),
                    drops=self._drops[mid],
                )
            )
        return ServiceOutcome(
            messages=outcomes,
            nodes=nodes,
            completion_time=self.scheduler.now,
            queue_depth_max=self._queue_depth_max(),
            messages_dropped=self._messages_dropped,
            forward_set_reuses=self._forward_set_reuses,
            events=self.bus.recorded(),
            counters=counters,
        )

    # ------------------------------------------------------------------

    def _context(self, message: Message, node: int) -> NodeContext:
        state = self._tables[node].state(message.message_id)
        return NodeContext(
            node=node,
            is_source=(node == message.source),
            time=self.scheduler.now,
            env=self.env,
            hops=self.protocol.hops,
            known_visited=frozenset(state.known_visited),
            known_designated=frozenset(state.known_designated),
            designators=frozenset(state.designators),
            first_packet=state.first_packet,
            rng=self.rng,
        )

    def _drop(self, message_id: int, node: int, sender: int, reason: str) -> None:
        """Record a service-side drop (backpressure or TTL expiry)."""
        drops = self._drops[message_id]
        drops[reason] = drops.get(reason, 0) + 1
        self._messages_dropped += 1
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].messages_dropped += 1
        if self._bus_on:
            self.bus.emit(
                Drop(
                    time=self.scheduler.now,
                    node=node,
                    message_id=message_id,
                    sender=sender,
                    reason=reason,
                )
            )

    def _inject(self, message: Message) -> None:
        """Start one broadcast: the source decides and (tries to) forward."""
        now = self.scheduler.now
        # Give the shared MAC a chance to age out interference state the
        # finished part of the stream can no longer influence.
        self.mac.retire(now)
        mid = message.message_id
        state = self._tables[message.source].state(mid)
        state.known_visited.add(message.source)
        ctx = self._context(message, message.source)
        designated = self.protocol.designate(ctx)
        state.decided = True
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].decisions += 1
        if self._bus_on:
            self.bus.emit(
                Decide(
                    time=now,
                    node=message.source,
                    message_id=mid,
                    forward=True,
                    reason="source",
                )
            )
        self._transmit(message, message.source, designated, incoming=None)

    # ------------------------------------------------------------------

    def _transmit(
        self,
        message: Message,
        node: int,
        designated: FrozenSet[int],
        incoming: Optional[Packet],
    ) -> None:
        """Forward intent: transmit now if idle, else queue (or drop)."""
        table = self._tables[node]
        now = self.scheduler.now
        if now < table.busy_until:
            state = table.state(message.message_id)
            if table.enqueue(message.message_id, designated):
                state.queued = True
                if not table.drain_scheduled:
                    table.drain_scheduled = True
                    self.scheduler.schedule_at(
                        table.busy_until,
                        lambda n=node: self._drain_egress(n),
                    )
            else:
                state.dropped = True
                self._drop(message.message_id, node, node, "queue_full")
            return
        self._do_transmit(message, node, designated, incoming)

    def _do_transmit(
        self,
        message: Message,
        node: int,
        designated: FrozenSet[int],
        incoming: Optional[Packet],
    ) -> None:
        mid = message.message_id
        table = self._tables[node]
        state = table.state(mid)
        state.forwarded = True
        state.known_visited.add(node)
        state.known_designated |= designated
        self._forward[mid].add(node)
        self._designations[mid][node] = designated
        two_hop = (
            self.env.two_hop_set(node)
            if self.protocol.piggyback_two_hop
            else None
        )
        if incoming is None:
            packet = Packet.original(
                node,
                designated,
                self.protocol.piggyback_h,
                two_hop,
                message_id=mid,
                payload_units=message.size_units,
                expires_at=message.expires_at,
            )
        else:
            packet = incoming.forwarded(
                node, designated, self.protocol.piggyback_h, two_hop
            )
        size = packet.size_units()
        self._bytes[mid] += size
        now = self.scheduler.now
        table.busy_until = now + size * self.tx_time_per_unit
        if _COUNTER_STACK:
            top = _COUNTER_STACK[-1]
            top.transmissions += 1
            top.bytes_transmitted += size
        bus_on = self._bus_on
        bus = self.bus
        if bus_on:
            chosen = tuple(sorted(designated))
            if chosen:
                bus.emit(
                    Designate(
                        time=now, node=node, message_id=mid, designated=chosen
                    )
                )
            bus.emit(
                Transmit(
                    time=now,
                    node=node,
                    message_id=mid,
                    designated=chosen,
                    size_units=size,
                )
            )
        # Sorted delivery order keeps same-time tie-breaks well-defined
        # (and identical to the legacy engine).
        neighbors = sorted(self.env.graph.neighbors(node))
        for receiver, arrival in self.mac.deliveries(
            node, now, neighbors, self.rng
        ):
            if arrival is None:
                drops = self._drops[mid]
                drops["loss"] = drops.get("loss", 0) + 1
                if bus_on:
                    bus.emit(
                        Drop(
                            time=now,
                            node=receiver,
                            message_id=mid,
                            sender=node,
                            reason="loss",
                        )
                    )
                continue
            self.scheduler.schedule_at(
                arrival,
                lambda m=message, r=receiver, p=packet, a=arrival: (
                    self._deliver(m, r, p, a)
                ),
            )

    def _drain_egress(self, node: int) -> None:
        """The node's transmitter freed up: send the oldest queued intent."""
        table = self._tables[node]
        table.drain_scheduled = False
        now = self.scheduler.now
        if now < table.busy_until:
            # Another transmission slipped in meanwhile; re-arm.
            table.drain_scheduled = True
            self.scheduler.schedule_at(
                table.busy_until, lambda n=node: self._drain_egress(n)
            )
            return
        entry = table.dequeue()
        while entry is not None:
            mid, designated = entry
            message = self._messages[mid]
            state = table.state(mid)
            state.queued = False
            expires = message.expires_at
            if expires is not None and now > expires:
                state.dropped = True
                self._drop(mid, node, node, "ttl_expired")
                entry = table.dequeue()
                continue
            self._do_transmit(
                message, node, designated, incoming=state.last_packet
            )
            break
        if table.queue_depth() and not table.drain_scheduled:
            table.drain_scheduled = True
            self.scheduler.schedule_at(
                table.busy_until, lambda n=node: self._drain_egress(n)
            )

    # ------------------------------------------------------------------

    def _deliver(
        self, message: Message, receiver: int, packet: Packet, arrival: float
    ) -> None:
        mid = message.message_id
        bus = self.bus
        bus_on = self._bus_on
        now = self.scheduler.now
        if self.mac.corrupted(receiver, arrival):
            # A later transmission collided with this copy in flight.
            drops = self._drops[mid]
            drops["collision"] = drops.get("collision", 0) + 1
            if bus_on:
                bus.emit(
                    Drop(
                        time=now,
                        node=receiver,
                        message_id=mid,
                        sender=packet.sender,
                        reason="collision",
                    )
                )
            return
        if packet.expired(now):
            self._drop(mid, receiver, packet.sender, "ttl_expired")
            return
        table = self._tables[receiver]
        state = table.state(mid)
        if bus_on:
            bus.emit(
                Deliver(
                    time=now,
                    node=receiver,
                    message_id=mid,
                    sender=packet.sender,
                )
            )
        receipts = self._receipts[mid]
        receipts[receiver] = receipts.get(receiver, 0) + 1
        # Snooping: hearing the transmission marks the sender visited.
        state.known_visited.add(packet.sender)
        state.last_packet = packet
        for entry in packet.trail:
            state.known_visited.add(entry.node)
            state.known_designated |= entry.designated
            if receiver in entry.designated:
                state.designators.add(entry.node)

        if not state.received:
            state.received = True
            state.first_packet = packet
            state.first_time = now
            self._delivered[mid].add(receiver)
            self._completed_at[mid] = now

        if state.forwarded or state.queued or state.dropped:
            return
        if state.decided:
            if state.designators:
                # Late designation after a non-forward decision (see the
                # legacy engine for the strict/relaxed rationale).
                if self.protocol.strict_designation:
                    ctx = self._context(message, receiver)
                    if _COUNTER_STACK:
                        _COUNTER_STACK[-1].decisions += 1
                    if bus_on:
                        bus.emit(
                            Decide(
                                time=now,
                                node=receiver,
                                message_id=mid,
                                forward=True,
                                reason="forced-designation",
                            )
                        )
                    self._transmit(
                        message,
                        receiver,
                        self.protocol.designate(ctx),
                        incoming=packet,
                    )
                elif self.protocol.relaxed_designation:
                    ctx = self._context(message, receiver)
                    if self.protocol.should_forward(ctx):
                        if _COUNTER_STACK:
                            _COUNTER_STACK[-1].decisions += 1
                        if bus_on:
                            bus.emit(
                                Decide(
                                    time=now,
                                    node=receiver,
                                    message_id=mid,
                                    forward=True,
                                    reason="relaxed-designation",
                                )
                            )
                        self._transmit(
                            message,
                            receiver,
                            self.protocol.designate(ctx),
                            incoming=packet,
                        )
            return
        if not state.decision_pending:
            state.decision_pending = True
            ctx = self._context(message, receiver)
            delay = self.protocol.decision_delay(ctx, self.rng)
            if bus_on:
                bus.emit(
                    BackoffScheduled(
                        time=now,
                        node=receiver,
                        message_id=mid,
                        delay=delay,
                    )
                )
            self.scheduler.schedule_in(
                delay, lambda m=message, r=receiver: self._decide(m, r)
            )

    # ------------------------------------------------------------------

    def _decision_key(
        self, node: int, state: MessageState
    ) -> Optional[Tuple]:
        """The knowledge key a timer decision is a pure function of.

        Everything :class:`~repro.algorithms.base.NodeContext` exposes to
        a cacheable protocol, minus message-identity fields: the node,
        its snooped visited/designated/designator sets, and the first
        packet's *content* (sender, source, trail, piggybacked 2-hop
        set) stripped of ``message_id``/payload/TTL.
        """
        first = state.first_packet
        if first is None:
            return None
        return (
            node,
            frozenset(state.known_visited),
            frozenset(state.known_designated),
            frozenset(state.designators),
            first.sender,
            first.source,
            first.trail,
            first.sender_two_hop,
        )

    def _decide(self, message: Message, node: int) -> None:
        mid = message.message_id
        state = self._tables[node].state(mid)
        if state.forwarded or state.decided:
            return
        state.decided = True
        state.decision_pending = False
        now = self.scheduler.now
        expires = message.expires_at
        if expires is not None and now > expires:
            # The decision timer outlived the message: nothing to forward.
            state.dropped = True
            self._drop(mid, node, node, "ttl_expired")
            return
        forced = self.protocol.strict_designation and bool(state.designators)
        designated: FrozenSet[int] = frozenset()
        ctx: Optional[NodeContext] = None
        if forced:
            forward = True
        elif self.reuse_decisions:
            stamp = self.env.graph.version_stamp()
            if stamp != self._cache_stamp:
                self._decision_cache.clear()
                self._cache_stamp = stamp
            key = self._decision_key(node, state)
            cached = (
                self._decision_cache.get(key) if key is not None else None
            )
            if cached is not None:
                forward, designated = cached
                self._forward_set_reuses += 1
                if _COUNTER_STACK:
                    _COUNTER_STACK[-1].forward_set_reuses += 1
            else:
                ctx = self._context(message, node)
                forward = self.protocol.should_forward(ctx)
                designated = (
                    self.protocol.designate(ctx) if forward else frozenset()
                )
                if key is not None:
                    self._decision_cache[key] = (forward, designated)
        else:
            ctx = self._context(message, node)
            forward = self.protocol.should_forward(ctx)
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].decisions += 1
        if self._bus_on:
            self.bus.emit(
                Decide(
                    time=now,
                    node=node,
                    message_id=mid,
                    forward=forward,
                    reason="timer",
                    designated=forced,
                )
            )
        if forward:
            if forced:
                ctx = self._context(message, node)
                designated = self.protocol.designate(ctx)
            elif not self.reuse_decisions:
                assert ctx is not None
                designated = self.protocol.designate(ctx)
            self._transmit(message, node, designated, incoming=state.last_packet)
