"""Typed simulation events and the pluggable event bus.

Every observable thing the simulation does — a transmission, a delivery,
a drop, a decision, a designation, a scheduled backoff, a hello beacon,
a NACK — is published as one frozen :class:`SimEvent` subclass on an
:class:`EventBus`.  Consumers subscribe callbacks (optionally filtered
by event type), record full traces with :class:`RecordingBus`, or stay
at the zero-cost default :data:`NULL_BUS`, which reports ``active =
False`` so emitters skip even constructing the event object.

The structured events replace the old free-text
:class:`~repro.sim.trace.TraceRecorder` strings; that class survives as
a deprecated shim that renders the legacy text format *from* typed
events (see :meth:`SimEvent.legacy`).  For offline analysis,
:func:`events_to_jsonl` / :func:`events_from_jsonl` round-trip a trace
through a line-per-event JSON encoding that is byte-stable under a
fixed seed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import (
    Callable,
    ClassVar,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

__all__ = [
    "SimEvent",
    "Transmit",
    "Deliver",
    "Drop",
    "Decide",
    "Designate",
    "BackoffScheduled",
    "HelloBeacon",
    "Nack",
    "EventBus",
    "NullBus",
    "RecordingBus",
    "NULL_BUS",
    "events_to_jsonl",
    "events_from_jsonl",
]


@dataclass(frozen=True)
class SimEvent:
    """Base class: something one node did at one simulation time.

    ``message_id`` names the broadcast message the event belongs to.
    The legacy single-broadcast engine always runs message 0, so the
    field defaults to 0 and :func:`events_to_jsonl` omits it at that
    default — pre-service traces keep their exact byte encoding, while
    multi-message service traces carry the id on every event.
    """

    time: float
    node: int
    message_id: int = 0

    #: Stable wire/type name, also the legacy trace "kind" where one exists.
    kind: ClassVar[str] = "event"

    def legacy(self) -> Optional[Tuple[str, str]]:
        """The ``(kind, detail)`` of the pre-typed text trace, if any.

        Events that had no counterpart in the old string format (e.g.
        :class:`Designate`, :class:`BackoffScheduled`) return ``None``
        and are skipped by the :class:`~repro.sim.trace.TraceRecorder`
        shim.
        """
        return None


@dataclass(frozen=True)
class Transmit(SimEvent):
    """A node transmitted the packet, announcing its designated set."""

    designated: Tuple[int, ...] = ()
    size_units: int = 0

    kind: ClassVar[str] = "transmit"

    def legacy(self) -> Optional[Tuple[str, str]]:
        return ("transmit", f"designates {list(self.designated)}")


@dataclass(frozen=True)
class Deliver(SimEvent):
    """A copy from ``sender`` arrived intact at ``node``."""

    sender: int = -1

    kind: ClassVar[str] = "receive"

    def legacy(self) -> Optional[Tuple[str, str]]:
        return ("receive", f"from {self.sender}")


@dataclass(frozen=True)
class Drop(SimEvent):
    """A copy from ``sender`` was lost on its way to ``node``.

    ``reason`` is ``"loss"`` (the MAC reported the copy lost at send
    time), ``"collision"`` (a later transmission destroyed the copy in
    flight), ``"queue_full"`` (backpressure: the node's bounded egress
    queue was saturated, so its forward of the message was abandoned —
    here ``sender == node``), or ``"ttl_expired"`` (the copy arrived, or
    a queued transmission came up, after the message's TTL).
    """

    sender: int = -1
    reason: str = "loss"

    kind: ClassVar[str] = "drop"

    def legacy(self) -> Optional[Tuple[str, str]]:
        if self.reason == "collision":
            return ("lost", f"collision, copy from {self.sender}")
        if self.reason == "queue_full":
            return ("lost", "egress queue full")
        if self.reason == "ttl_expired":
            return ("lost", f"ttl expired, copy from {self.sender}")
        return ("lost", f"copy from {self.sender}")


@dataclass(frozen=True)
class Decide(SimEvent):
    """A node fixed its forward/non-forward status.

    ``reason`` is one of ``"source"`` (the source always forwards),
    ``"timer"`` (the protocol's ordinary timing point),
    ``"forced-designation"`` (strict neighbor designation overrode a
    non-forward decision), or ``"relaxed-designation"`` (re-evaluation
    at the raised designated priority).  ``designated`` flags a timer
    decision forced by strict designation.
    """

    forward: bool = False
    reason: str = "timer"
    designated: bool = False

    kind: ClassVar[str] = "decide"

    def legacy(self) -> Optional[Tuple[str, str]]:
        if self.reason == "source":
            return ("decide", "source always forwards")
        if self.reason == "forced-designation":
            return ("decide", "forced by late designation")
        if self.reason == "relaxed-designation":
            return ("decide", "forward (re-evaluated as designated)")
        if not self.forward:
            return ("decide", "non-forward")
        detail = "forward (designated)" if self.designated else "forward"
        return ("decide", detail)


@dataclass(frozen=True)
class Designate(SimEvent):
    """A forwarding node designated neighbors to forward next."""

    designated: Tuple[int, ...] = ()

    kind: ClassVar[str] = "designate"


@dataclass(frozen=True)
class BackoffScheduled(SimEvent):
    """A node armed its decision timer ``delay`` time units out."""

    delay: float = 0.0

    kind: ClassVar[str] = "backoff"


@dataclass(frozen=True)
class HelloBeacon(SimEvent):
    """One hello beacon: ``node`` announced its table in round ``time``."""

    round_index: int = 0

    kind: ClassVar[str] = "hello"


@dataclass(frozen=True)
class Nack(SimEvent):
    """A node missing the packet NACKed holder ``target`` for a retransmit."""

    target: int = -1

    kind: ClassVar[str] = "nack"


Subscriber = Callable[[SimEvent], None]


class EventBus:
    """Synchronous pub-sub for :class:`SimEvent` instances.

    Emitters must guard on :attr:`active` before constructing an event —
    that is what makes the :data:`NULL_BUS` default genuinely free::

        if bus.active:
            bus.emit(Transmit(time=now, node=v, designated=chosen))
    """

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: List[
            Tuple[Subscriber, Optional[Tuple[Type[SimEvent], ...]]]
        ] = []

    @property
    def active(self) -> bool:
        """Whether emitting is worthwhile (anyone listening/recording)."""
        return bool(self._subscribers)

    def subscribe(
        self,
        callback: Subscriber,
        kinds: Optional[Iterable[Type[SimEvent]]] = None,
    ) -> None:
        """Register ``callback``; ``kinds`` filters by event class."""
        key = tuple(kinds) if kinds is not None else None
        self._subscribers.append((callback, key))

    def emit(self, event: SimEvent) -> None:
        """Deliver ``event`` to every matching subscriber, in order."""
        for callback, kinds in self._subscribers:
            if kinds is None or isinstance(event, kinds):
                callback(event)

    def recorded(self) -> Optional[List[SimEvent]]:
        """The full event list, when this bus records one (else ``None``)."""
        return None


class NullBus(EventBus):
    """The shared zero-cost default: inactive, drops everything."""

    __slots__ = ()

    @property
    def active(self) -> bool:
        """Always ``False`` — emitters skip event construction entirely."""
        return False

    def subscribe(
        self,
        callback: Subscriber,
        kinds: Optional[Iterable[Type[SimEvent]]] = None,
    ) -> None:
        """Refuse: the null bus is shared and must stay inert."""
        raise TypeError(
            "cannot subscribe to the shared null bus; "
            "pass an EventBus or RecordingBus to the session instead"
        )

    def emit(self, event: SimEvent) -> None:
        """Drop the event (emitters normally never even get here)."""


#: The process-wide no-op bus every session defaults to.
NULL_BUS = NullBus()


class RecordingBus(EventBus):
    """An event bus that additionally appends every event to a list."""

    __slots__ = ("_events",)

    def __init__(self) -> None:
        super().__init__()
        self._events: List[SimEvent] = []

    @property
    def active(self) -> bool:
        """Always ``True``: recording wants every event."""
        return True

    def emit(self, event: SimEvent) -> None:
        """Record the event, then fan out to subscribers."""
        self._events.append(event)
        super().emit(event)

    @property
    def events(self) -> List[SimEvent]:
        """The recorded events, in emission order (the live list)."""
        return self._events

    def recorded(self) -> Optional[List[SimEvent]]:
        """A snapshot copy of the recorded events."""
        return list(self._events)


_EVENT_TYPES: Dict[str, Type[SimEvent]] = {
    cls.kind: cls
    for cls in (
        Transmit,
        Deliver,
        Drop,
        Decide,
        Designate,
        BackoffScheduled,
        HelloBeacon,
        Nack,
    )
}



def events_to_jsonl(events: Sequence[SimEvent]) -> str:
    """Serialise a trace to JSON Lines, one event per line.

    Keys are sorted and separators fixed, so the encoding of a seeded
    run is byte-stable — the golden-trace tests pin exactly this output.
    """
    lines = []
    for event in events:
        payload = {"type": event.kind}
        payload.update(asdict(event))
        if payload.get("message_id") == 0:
            # Message 0 is the implicit default (the legacy single-shot
            # engine's only message); eliding it keeps pre-service
            # traces byte-identical while multi-message traces carry
            # the id explicitly.
            del payload["message_id"]
        lines.append(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )
    return "\n".join(lines)


def events_from_jsonl(text: str) -> List[SimEvent]:
    """Rebuild the typed events serialised by :func:`events_to_jsonl`."""
    events: List[SimEvent] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        payload = json.loads(line)
        try:
            type_name = payload.pop("type")
            cls = _EVENT_TYPES[type_name]
        except KeyError as exc:
            raise ValueError(
                f"line {line_number}: unknown or missing event type"
            ) from exc
        known = {spec.name for spec in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"line {line_number}: unknown fields {sorted(unknown)} "
                f"for event type {type_name!r}"
            )
        for name, value in payload.items():
            # JSON has no tuples; every list came from a tuple field
            # (e.g. Transmit.designated) and must go back to one so the
            # rebuilt events compare equal to the originals.
            if isinstance(value, list):
                payload[name] = tuple(value)
        events.append(cls(**payload))
    return events
