"""The broadcast engine: Algorithm 1 run over a discrete-event simulation.

One :class:`SimulationEnvironment` wraps a deployment (graph + priority
scheme) and caches what real nodes would have collected proactively — the
k-hop view graphs from the hello protocol and the advertised priority
metrics.  A :class:`BroadcastSession` then executes one broadcast of one
protocol from one source:

* the source always forwards;
* every transmission is delivered to MAC-selected neighbors, who *snoop*
  the sender as visited and absorb the piggybacked trail (recently visited
  nodes and their designated sets);
* at the protocol's timing point (immediately or after a backoff) each
  receiving node decides its status via the protocol's hooks;
* under strict neighbor-designation, a designation forces forwarding even
  after a non-forward self-decision.

The engine is deliberately protocol-agnostic: all algorithm behaviour
lives behind :class:`~repro.algorithms.base.BroadcastProtocol`.

Observability: every step is published as a typed
:class:`~repro.sim.events.SimEvent` on the session's
:class:`~repro.sim.events.EventBus` (``collect_trace=True`` records them
into ``BroadcastOutcome.events``), and work counters flow into the active
:func:`repro.instrument.collecting` scope — ``collect_counters=True``
attaches a per-run :class:`~repro.instrument.InstrumentationCounters` to
the outcome.
"""

from __future__ import annotations

import hashlib
import itertools
import random
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..algorithms.base import BroadcastProtocol, NodeContext, Timing
from ..core import status as st
from ..core.priority import PriorityScheme, IdPriority
from ..core.views import View
from ..graph.topology import Topology
from ..instrument import InstrumentationCounters, collecting
from ..instrument import _STACK as _COUNTER_STACK
from .events import (
    NULL_BUS,
    BackoffScheduled,
    Decide,
    Deliver,
    Designate,
    Drop,
    EventBus,
    RecordingBus,
    SimEvent,
    Transmit,
)
from .mac import IdealMac, MacModel
from .packet import Packet
from .scheduler import EventScheduler
from .trace import TraceRecorder

__all__ = [
    "SimulationEnvironment",
    "BroadcastSession",
    "BroadcastOutcome",
    "MessageState",
    "MessageTable",
    "run_broadcast",
    "session_seed",
]


class SimulationEnvironment:
    """A deployment: topology, priority scheme, and proactive caches.

    Create one per sampled network and reuse it across sources and
    protocols — the k-hop view graphs and metric table are topology-only
    and therefore shared.
    """

    def __init__(self, graph: Topology, scheme: Optional[PriorityScheme] = None) -> None:
        if graph.node_count() == 0:
            raise ValueError("cannot simulate on an empty graph")
        self.graph = graph
        self.scheme = scheme or IdPriority()
        self.metrics = self.scheme.metrics(graph)
        self._view_cache: Dict[Tuple[int, Optional[int]], Topology] = {}
        self._two_hop_cache: Dict[int, FrozenSet[int]] = {}
        #: Per-view-graph metric restriction, keyed by graph identity (a
        #: strong reference to the graph is kept alongside, so an id can
        #: never be recycled under the cache).  Scheme-specific — reset by
        #: :meth:`with_scheme`, unlike the topology-only view caches.
        self._view_metrics: Dict[
            int, Tuple[Topology, Dict[int, Tuple[float, ...]]]
        ] = {}
        #: The graph's version stamp the caches above were built against;
        #: :meth:`sync_topology` catches up when it moves.
        self._graph_version = graph.version_stamp()

    def with_scheme(self, scheme: PriorityScheme) -> "SimulationEnvironment":
        """A sibling environment with a different priority scheme.

        Shares the (topology-only) view caches, so rotating priorities
        per broadcast — e.g. ``RandomEpochPriority`` for fairness — costs
        only one metrics pass.
        """
        sibling = SimulationEnvironment.__new__(SimulationEnvironment)
        sibling.graph = self.graph
        sibling.scheme = scheme
        sibling.metrics = scheme.metrics(self.graph)
        sibling._view_cache = self._view_cache
        sibling._two_hop_cache = self._two_hop_cache
        sibling._view_metrics = {}
        sibling._graph_version = self.graph.version_stamp()
        return sibling

    def sync_topology(self) -> None:
        """Catch up with structural changes to the deployment graph.

        Mobility sweeps mutate the shared graph in place (through
        :meth:`~repro.graph.topology.Topology.apply_delta` or the plain
        mutators); this environment notices through the graph's
        :meth:`~repro.graph.topology.Topology.version_stamp` and drops
        its derived caches.  The drop is wholesale but cheap: these are
        latency caches over the topology's own dirty-retained query
        cache, so re-fetching an entry for a node outside the dirty set
        is an O(1) dictionary hit there — only genuinely dirty entries
        get recomputed.  Clearing happens in place because
        :meth:`with_scheme` siblings share the cache dicts by reference.
        Called automatically by the accessors; callers that read
        :attr:`metrics` directly after mutating the graph should call
        this first.
        """
        stamp = self.graph.version_stamp()
        if stamp == self._graph_version:
            return
        self._graph_version = stamp
        self._view_cache.clear()
        self._two_hop_cache.clear()
        self._view_metrics.clear()
        self.metrics = self.scheme.metrics(self.graph)

    def view_graph(self, node: int, hops: Optional[int]) -> Topology:
        """``G_k(node)``, or the full graph when ``hops`` is ``None``."""
        self.sync_topology()
        key = (node, hops)
        cached = self._view_cache.get(key)
        if cached is None:
            if hops is None:
                cached = self.graph
            else:
                cached = self.graph.k_hop_view_graph(node, hops)
            self._view_cache[key] = cached
        return cached

    def two_hop_set(self, node: int) -> FrozenSet[int]:
        """``N2(node)`` on the deployment graph (for TDP piggybacking)."""
        self.sync_topology()
        cached = self._two_hop_cache.get(node)
        if cached is None:
            cached = frozenset(self.graph.k_hop_neighbors(node, 2))
            self._two_hop_cache[node] = cached
        return cached

    def make_view(
        self,
        view_graph: Topology,
        visited: FrozenSet[int],
        designated: FrozenSet[int],
    ) -> View:
        """Assemble a :class:`View` over ``view_graph`` with known state.

        The metric restriction to the visible nodes is topology-dependent
        only, so it is computed once per view graph and shared by every
        per-decision view the engine builds over it (views never mutate
        their metrics mapping).
        """
        self.sync_topology()
        entry = self._view_metrics.get(id(view_graph))
        if entry is None or entry[0] is not view_graph:
            table = self.metrics
            entry = (
                view_graph,
                {node: table[node] for node in view_graph},
            )
            self._view_metrics[id(view_graph)] = entry
        status: Dict[int, float] = {}
        for node in designated:
            if node in view_graph:
                status[node] = st.DESIGNATED
        for node in visited:
            if node in view_graph:
                status[node] = st.VISITED
        return View(
            graph=view_graph,
            status=status,
            metrics=entry[1],
            metric_padding=self.scheme.padding(),
        )


@dataclass
class BroadcastOutcome:
    """Result of one broadcast run."""

    source: int
    #: Nodes that transmitted the packet (the forward node set + source).
    forward_nodes: Set[int]
    #: Nodes that received at least one copy (the source counts).
    delivered: Set[int]
    #: Total transmissions (equals ``len(forward_nodes)``: one each).
    transmissions: int
    #: Simulation time of the last event.
    completion_time: float
    #: Per-node designation announcements, for analysis.
    designations: Dict[int, FrozenSet[int]]
    #: How many copies each node received (redundancy analysis).
    receipt_counts: Dict[int, int] = field(default_factory=dict)
    #: Total abstract packet size transmitted (see ``Packet.size_units``).
    bytes_transmitted: int = 0
    #: Typed event trace (``collect_trace=True``), in emission order.
    events: Optional[List[SimEvent]] = None
    #: Deprecated text-trace shim rendered from :attr:`events`.
    trace: Optional[TraceRecorder] = None
    #: Per-run work counters (``collect_counters=True``).
    counters: Optional[InstrumentationCounters] = None

    @property
    def forward_count(self) -> int:
        """Size of the forward node set (the paper's headline metric)."""
        return len(self.forward_nodes)

    def delivery_ratio(self, graph: Topology) -> float:
        """Delivered fraction of all nodes."""
        return len(self.delivered) / graph.node_count()

    def mean_redundancy(self) -> float:
        """Average copies received per delivered node (1.0 is optimal).

        The broadcast-storm problem is exactly this number exploding:
        under flooding every node hears one copy per neighbor.
        """
        delivered = [
            count for node, count in self.receipt_counts.items() if count
        ]
        if not delivered:
            return 0.0
        return sum(delivered) / len(delivered)


class MessageState:
    """Per-``(node, message)`` runtime state.

    Historically the engine kept one ``_NodeState`` per node because it
    only ever ran one message; the broadcast service runs many
    concurrently, so everything message-scoped — dedup flags, snooped
    visited/designated knowledge, designators, first/last packets — now
    lives in this per-message record.  One node holds one
    :class:`MessageState` per in-flight message, collected in its
    :class:`MessageTable`; the legacy :class:`BroadcastSession` simply
    keeps a single state (message 0) per node.
    """

    __slots__ = (
        "received",
        "decided",
        "forwarded",
        "queued",
        "dropped",
        "decision_pending",
        "known_visited",
        "known_designated",
        "designators",
        "first_packet",
        "first_time",
        "last_packet",
    )

    def __init__(self) -> None:
        self.received = False
        self.decided = False
        self.forwarded = False
        #: A forward intent is waiting in the node's egress queue —
        #: service-path only; guards against double-queuing a message
        #: when a designation arrives while the intent is queued.
        self.queued = False
        #: The node decided to forward but its egress queue rejected the
        #: transmission (backpressure) or the message expired while
        #: queued — service-path only; the legacy engine never sets it.
        self.dropped = False
        self.decision_pending = False
        self.known_visited: Set[int] = set()
        self.known_designated: Set[int] = set()
        self.designators: Set[int] = set()
        self.first_packet: Optional[Packet] = None
        self.first_time: Optional[float] = None
        self.last_packet: Optional[Packet] = None


class MessageTable:
    """One node's per-message state plus its bounded egress FIFO queue.

    The service engine's unit of node-local bookkeeping: a mapping
    ``message_id -> MessageState`` for every message the node has seen,
    and the FIFO of forward intents waiting for the node's transmitter.
    ``capacity`` bounds the egress queue — when a forward intent arrives
    while the queue is full, the service abandons it with an explicit
    ``Drop(reason="queue_full")`` (backpressure, not silent loss).
    ``capacity=None`` leaves the queue unbounded.
    """

    __slots__ = (
        "node",
        "capacity",
        "busy_until",
        "drain_scheduled",
        "queue_depth_max",
        "_states",
        "_egress",
    )

    def __init__(self, node: int, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.node = node
        self.capacity = capacity
        #: Simulation time until which the node's transmitter is busy.
        self.busy_until = 0.0
        #: Whether a drain callback for this node's queue is already
        #: scheduled (at most one in flight keeps the event stream lean).
        self.drain_scheduled = False
        #: High-water mark of the egress queue over the table's life.
        self.queue_depth_max = 0
        self._states: Dict[int, MessageState] = {}
        self._egress: Deque[Tuple[int, FrozenSet[int]]] = deque()

    def state(self, message_id: int) -> MessageState:
        """The node's state for ``message_id``, created on first touch."""
        state = self._states.get(message_id)
        if state is None:
            state = MessageState()
            self._states[message_id] = state
        return state

    def get(self, message_id: int) -> Optional[MessageState]:
        """The node's state for ``message_id``, or ``None`` if untouched."""
        return self._states.get(message_id)

    def items(self) -> Iterator[Tuple[int, MessageState]]:
        """``(message_id, state)`` pairs in first-touch order."""
        return iter(self._states.items())

    def discard(self, message_id: int) -> None:
        """Forget a message's state (post-expiry pruning)."""
        self._states.pop(message_id, None)

    # -- egress queue --------------------------------------------------

    def queue_depth(self) -> int:
        """Forward intents currently waiting for the transmitter."""
        return len(self._egress)

    def enqueue(self, message_id: int, designated: FrozenSet[int]) -> bool:
        """Queue a forward intent; ``False`` means the queue is full.

        ``designated`` is the forward-neighbor set fixed at decision
        time; the packet itself is built when the transmitter frees up,
        from the node's then-current snooped state.
        """
        if self.capacity is not None and len(self._egress) >= self.capacity:
            return False
        self._egress.append((message_id, designated))
        if len(self._egress) > self.queue_depth_max:
            self.queue_depth_max = len(self._egress)
        return True

    def dequeue(self) -> Optional[Tuple[int, FrozenSet[int]]]:
        """Pop the oldest queued forward intent (``None`` when idle)."""
        if not self._egress:
            return None
        return self._egress.popleft()


#: Monotone sequence distinguishing same-process default-seeded sessions.
_SESSION_SEQUENCE = itertools.count()


def session_seed(source: int, sequence: int) -> int:
    """The documented default-RNG seed of one :class:`BroadcastSession`.

    ``sha256("BroadcastSession|{sequence}|{source}")``, truncated to 64
    bits.  ``sequence`` is a per-process monotone counter, so repeated
    sessions constructed without an explicit RNG draw *different* backoff
    streams (a fixed ``Random(0)`` default used to replay the identical
    stream, skewing FRB/FRBD redundancy and completion-time statistics),
    while any single session remains reproducible from its ``(source,
    sequence)`` pair.
    """
    digest = hashlib.sha256(
        f"BroadcastSession|{sequence}|{source}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


class BroadcastSession:
    """One broadcast of one protocol from one source over one deployment.

    .. deprecated::
        Direct construction is deprecated: the engine's supported entry
        points are :func:`run_broadcast` (which now routes through the
        multi-message broadcast service with a one-message traffic
        model) and :class:`repro.sim.service.ServiceEngine` for real
        traffic.  This class remains as the single-message *reference
        executor* the service's byte-identity gates compare against;
        constructing it emits a :class:`DeprecationWarning`.

    Parameters
    ----------
    rng:
        Source of randomness for backoff delays and lossy MACs.  When
        omitted, the session seeds its own generator from
        :func:`session_seed` — a per-session derivation, so repeated
        default-constructed sessions do **not** replay the same stream.
        Pass an explicit ``random.Random`` for cross-run reproducibility.
    bus:
        Event bus receiving the typed :mod:`~repro.sim.events` stream;
        defaults to the zero-cost :data:`~repro.sim.events.NULL_BUS`.
        Subscribe *before* calling :meth:`run` — the engine samples
        ``bus.active`` once at the start of the run (a plain-attribute
        hot-path check instead of a property call per event site), so
        subscriptions made mid-run are not picked up.
    collect_trace:
        Record the event stream into ``outcome.events`` (and the
        deprecated ``outcome.trace`` text shim).  Implied recording bus
        when no explicit ``bus`` is given.
    collect_counters:
        Attach per-run :class:`~repro.instrument.InstrumentationCounters`
        to ``outcome.counters``.
    """

    def __init__(
        self,
        env: SimulationEnvironment,
        protocol: BroadcastProtocol,
        source: int,
        rng: Optional[random.Random] = None,
        mac: Optional[MacModel] = None,
        collect_trace: bool = False,
        bus: Optional[EventBus] = None,
        collect_counters: bool = False,
        _deprecation_warning: bool = True,
    ) -> None:
        if _deprecation_warning:
            warnings.warn(
                "constructing BroadcastSession directly is deprecated; "
                "use run_broadcast() (the service-backed single-message "
                "path) or repro.sim.service.ServiceEngine for "
                "multi-message traffic",
                DeprecationWarning,
                stacklevel=2,
            )
        if source not in env.graph:
            raise KeyError(f"source {source} not in the deployment graph")
        self.env = env
        self.protocol = protocol
        self.source = source
        if rng is None:
            rng = random.Random(
                session_seed(source, next(_SESSION_SEQUENCE))
            )
        self.rng = rng
        self.mac = mac or IdealMac()
        self.scheduler = EventScheduler()
        if bus is None:
            bus = RecordingBus() if collect_trace else NULL_BUS
        elif collect_trace and bus.recorded() is None:
            raise ValueError(
                "collect_trace=True needs a recording bus; pass a "
                "RecordingBus or drop the explicit bus argument"
            )
        self.bus = bus
        #: ``bus.active`` snapshot; refreshed at the top of :meth:`run`.
        self._bus_on = bus.active
        self._collect_trace = collect_trace
        self._collect_counters = collect_counters
        self._states: Dict[int, MessageState] = {
            node: MessageState() for node in env.graph.nodes()
        }
        self._designations: Dict[int, FrozenSet[int]] = {}
        self._receipt_counts: Dict[int, int] = {
            node: 0 for node in env.graph.nodes()
        }
        self._bytes_transmitted = 0

    # ------------------------------------------------------------------

    def run(self) -> BroadcastOutcome:
        """Execute the broadcast to quiescence and report the outcome."""
        self._bus_on = self.bus.active
        counters: Optional[InstrumentationCounters] = None
        if self._collect_counters:
            with collecting() as counters:
                self._execute()
        else:
            self._execute()
        forward_nodes = {
            node for node, state in self._states.items() if state.forwarded
        }
        delivered = {
            node for node, state in self._states.items() if state.received
        }
        delivered.add(self.source)
        events = self.bus.recorded()
        return BroadcastOutcome(
            source=self.source,
            forward_nodes=forward_nodes,
            delivered=delivered,
            transmissions=len(forward_nodes),
            completion_time=self.scheduler.now,
            designations=dict(self._designations),
            receipt_counts=dict(self._receipt_counts),
            bytes_transmitted=self._bytes_transmitted,
            events=events,
            trace=(
                TraceRecorder.from_events(events)
                if self._collect_trace and events is not None
                else None
            ),
            counters=counters,
        )

    def _execute(self) -> None:
        self.mac.reset()
        self.scheduler.schedule_at(0.0, self._start)
        self.scheduler.run()

    # ------------------------------------------------------------------

    def _context(self, node: int) -> NodeContext:
        state = self._states[node]
        return NodeContext(
            node=node,
            is_source=(node == self.source),
            time=self.scheduler.now,
            env=self.env,
            hops=self.protocol.hops,
            known_visited=frozenset(state.known_visited),
            known_designated=frozenset(state.known_designated),
            designators=frozenset(state.designators),
            first_packet=state.first_packet,
            rng=self.rng,
        )

    def _start(self) -> None:
        state = self._states[self.source]
        state.known_visited.add(self.source)
        ctx = self._context(self.source)
        designated = self.protocol.designate(ctx)
        state.decided = True
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].decisions += 1
        if self._bus_on:
            self.bus.emit(
                Decide(
                    time=self.scheduler.now,
                    node=self.source,
                    forward=True,
                    reason="source",
                )
            )
        self._transmit(self.source, designated, incoming=None)

    def _transmit(
        self,
        node: int,
        designated: FrozenSet[int],
        incoming: Optional[Packet],
    ) -> None:
        state = self._states[node]
        state.forwarded = True
        state.known_visited.add(node)
        state.known_designated |= designated
        self._designations[node] = designated
        two_hop = (
            self.env.two_hop_set(node)
            if self.protocol.piggyback_two_hop
            else None
        )
        if incoming is None:
            packet = Packet.original(
                node, designated, self.protocol.piggyback_h, two_hop
            )
        else:
            packet = incoming.forwarded(
                node, designated, self.protocol.piggyback_h, two_hop
            )
        size = packet.size_units()
        self._bytes_transmitted += size
        if _COUNTER_STACK:
            counters = _COUNTER_STACK[-1]
            counters.transmissions += 1
            counters.bytes_transmitted += size
        bus_on = self._bus_on
        bus = self.bus
        if bus_on:
            now = self.scheduler.now
            chosen = tuple(sorted(designated))
            if chosen:
                bus.emit(Designate(time=now, node=node, designated=chosen))
            bus.emit(
                Transmit(
                    time=now, node=node, designated=chosen, size_units=size
                )
            )
        # Sorted delivery order keeps same-time tie-breaks well-defined
        # (and identical to the round-synchronous executor).
        neighbors = sorted(self.env.graph.neighbors(node))
        for receiver, arrival in self.mac.deliveries(
            node, self.scheduler.now, neighbors, self.rng
        ):
            if arrival is None:
                if bus_on:
                    bus.emit(
                        Drop(
                            time=self.scheduler.now,
                            node=receiver,
                            sender=node,
                            reason="loss",
                        )
                    )
                continue
            self.scheduler.schedule_at(
                arrival,
                lambda r=receiver, p=packet, a=arrival: self._deliver(r, p, a),
            )

    def _deliver(self, receiver: int, packet: Packet, arrival: float) -> None:
        bus = self.bus
        bus_on = self._bus_on
        if self.mac.corrupted(receiver, arrival):
            # A later transmission collided with this copy in flight.
            if bus_on:
                bus.emit(
                    Drop(
                        time=self.scheduler.now,
                        node=receiver,
                        sender=packet.sender,
                        reason="collision",
                    )
                )
            return
        state = self._states[receiver]
        if bus_on:
            bus.emit(
                Deliver(
                    time=self.scheduler.now,
                    node=receiver,
                    sender=packet.sender,
                )
            )
        self._receipt_counts[receiver] += 1
        # Snooping: hearing the transmission marks the sender visited.
        state.known_visited.add(packet.sender)
        state.last_packet = packet
        for entry in packet.trail:
            state.known_visited.add(entry.node)
            state.known_designated |= entry.designated
            if receiver in entry.designated:
                state.designators.add(entry.node)

        newly_received = not state.received
        if newly_received:
            state.received = True
            state.first_packet = packet
            state.first_time = self.scheduler.now

        if state.forwarded:
            return
        if state.decided:
            if state.designators:
                # Late designation after a non-forward decision: the
                # strict rule forces forwarding; the relaxed rule
                # re-evaluates at the node's raised (designated, S = 1.5)
                # priority — its own earlier decision used the lower
                # threshold and is no longer authoritative.
                if self.protocol.strict_designation:
                    ctx = self._context(receiver)
                    if _COUNTER_STACK:
                        _COUNTER_STACK[-1].decisions += 1
                    if bus_on:
                        bus.emit(
                            Decide(
                                time=self.scheduler.now,
                                node=receiver,
                                forward=True,
                                reason="forced-designation",
                            )
                        )
                    self._transmit(
                        receiver, self.protocol.designate(ctx), incoming=packet
                    )
                elif self.protocol.relaxed_designation:
                    ctx = self._context(receiver)
                    if self.protocol.should_forward(ctx):
                        if _COUNTER_STACK:
                            _COUNTER_STACK[-1].decisions += 1
                        if bus_on:
                            bus.emit(
                                Decide(
                                    time=self.scheduler.now,
                                    node=receiver,
                                    forward=True,
                                    reason="relaxed-designation",
                                )
                            )
                        self._transmit(
                            receiver,
                            self.protocol.designate(ctx),
                            incoming=packet,
                        )
            return
        if not state.decision_pending:
            state.decision_pending = True
            ctx = self._context(receiver)
            delay = self.protocol.decision_delay(ctx, self.rng)
            if bus_on:
                bus.emit(
                    BackoffScheduled(
                        time=self.scheduler.now, node=receiver, delay=delay
                    )
                )
            self.scheduler.schedule_in(
                delay, lambda r=receiver: self._decide(r)
            )

    def _decide(self, node: int) -> None:
        state = self._states[node]
        if state.forwarded or state.decided:
            return
        state.decided = True
        state.decision_pending = False
        ctx = self._context(node)
        forced = self.protocol.strict_designation and bool(state.designators)
        forward = forced or self.protocol.should_forward(ctx)
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].decisions += 1
        if self._bus_on:
            self.bus.emit(
                Decide(
                    time=self.scheduler.now,
                    node=node,
                    forward=forward,
                    reason="timer",
                    designated=forced,
                )
            )
        if forward:
            designated = self.protocol.designate(ctx)
            self._transmit(node, designated, incoming=state.last_packet)


def run_broadcast(
    graph: Topology,
    protocol: BroadcastProtocol,
    source: int,
    scheme: Optional[PriorityScheme] = None,
    rng: Optional[random.Random] = None,
    mac: Optional[MacModel] = None,
    collect_trace: bool = False,
    bus: Optional[EventBus] = None,
    collect_counters: bool = False,
    env: Optional[SimulationEnvironment] = None,
) -> BroadcastOutcome:
    """Convenience one-shot: one broadcast through the service path.

    Since the broadcast-service refactor this is a thin compatibility
    wrapper: it runs a :class:`~repro.sim.service.ServiceEngine` under a
    one-message :class:`~repro.sim.traffic.SingleShot` traffic model,
    which is byte-identical to the deprecated direct
    :class:`BroadcastSession` path (forward sets, event stream, byte
    counts — gated in ``benchmarks/bench_traffic.py``).

    ``env`` reuses a prepared :class:`SimulationEnvironment` (its graph
    must be ``graph``); without it a fresh environment is built and the
    protocol prepared, exactly like the historical behaviour.
    """
    from .service import ServiceEngine
    from .traffic import SingleShot

    if env is None:
        env = SimulationEnvironment(graph, scheme)
        protocol.prepare(env)
    elif env.graph is not graph:
        raise ValueError("env was built over a different graph")
    engine = ServiceEngine(
        env,
        protocol,
        SingleShot(source),
        rng=rng,
        mac=mac,
        collect_trace=collect_trace,
        bus=bus,
        collect_counters=collect_counters,
    )
    return engine.run().single_outcome()
