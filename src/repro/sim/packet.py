"""Broadcast packets and the piggybacked broadcast-state trail.

Section 5: "the broadcast packet that arrives at v carries information of h
most recently visited nodes, v1, v2, ..., vh, and the set of designated
forward neighbors, D(vi), selected at each vi (usually for small h such as
1 or 2)."  :class:`TrailEntry` is one ``(vi, D(vi))`` element and
:class:`Packet` the full in-flight unit.

TDP additionally piggybacks the sender's 2-hop neighbor set, carried in
:attr:`Packet.sender_two_hop` when the protocol requests it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

__all__ = ["TrailEntry", "Packet"]


@dataclass(frozen=True)
class TrailEntry:
    """One piggybacked visited node and its designated forward neighbors."""

    node: int
    designated: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class Packet:
    """A broadcast packet in flight.

    Attributes
    ----------
    source:
        Originator of the broadcast.
    sender:
        The node whose transmission carries this copy.
    trail:
        The ``h`` most recently visited nodes, most recent first; entry 0
        is always the sender itself.
    sender_two_hop:
        The sender's 2-hop neighbor set ``N2(sender)`` when the protocol
        piggybacks it (TDP), else ``None``.
    message_id:
        Which message this copy belongs to.  The legacy single-broadcast
        engine always uses id 0; the broadcast service keys all dedup and
        forward-set state by this id so concurrent messages never mix.
    payload_units:
        Abstract payload size carried on top of the control overhead
        (:class:`~repro.sim.traffic.Message.size_units`); 0 for the
        legacy path, which keeps its byte counts unchanged.
    expires_at:
        Absolute simulation time after which the message is stale;
        copies delivered past this instant are dropped with
        ``Drop(reason="ttl_expired")``.  ``None`` means no expiry.
    """

    source: int
    sender: int
    trail: Tuple[TrailEntry, ...] = ()
    sender_two_hop: Optional[FrozenSet[int]] = None
    message_id: int = 0
    payload_units: int = 0
    expires_at: Optional[float] = None

    def designated_by_sender(self) -> FrozenSet[int]:
        """The designated set ``D(sender)`` carried by this packet."""
        if self.trail and self.trail[0].node == self.sender:
            return self.trail[0].designated
        return frozenset()

    def size_units(self, header: int = 4) -> int:
        """Abstract packet size: header plus one unit per carried id.

        The paper repeatedly weighs broadcast-state piggybacking against
        packet size ("the broadcast packet needs to be kept relatively
        small"; TDP's 2-hop piggyback is its cost).  Counting carried
        node ids — trail nodes, their designated sets, and the optional
        ``N2(sender)`` — makes that overhead measurable without
        committing to a wire format.  The message's abstract payload
        (:attr:`payload_units`) rides on top.
        """
        size = header + self.payload_units
        for entry in self.trail:
            size += 1 + len(entry.designated)
        if self.sender_two_hop is not None:
            size += len(self.sender_two_hop)
        return size

    def expired(self, now: float) -> bool:
        """Whether the carried message is past its TTL at time ``now``."""
        return self.expires_at is not None and now > self.expires_at

    def forwarded(
        self,
        sender: int,
        designated: FrozenSet[int],
        h: int,
        sender_two_hop: Optional[FrozenSet[int]] = None,
    ) -> "Packet":
        """The packet as re-sent by ``sender``, trail truncated to ``h``."""
        if h < 0:
            raise ValueError(f"trail length h must be non-negative, got {h}")
        new_entry = TrailEntry(node=sender, designated=designated)
        trail = (new_entry, *self.trail)[:h] if h else ()
        return Packet(
            source=self.source,
            sender=sender,
            trail=trail,
            sender_two_hop=sender_two_hop,
            message_id=self.message_id,
            payload_units=self.payload_units,
            expires_at=self.expires_at,
        )

    @staticmethod
    def original(
        source: int,
        designated: FrozenSet[int],
        h: int,
        sender_two_hop: Optional[FrozenSet[int]] = None,
        message_id: int = 0,
        payload_units: int = 0,
        expires_at: Optional[float] = None,
    ) -> "Packet":
        """The first transmission, emitted by the source."""
        trail = (TrailEntry(node=source, designated=designated),)[:h] if h else ()
        return Packet(
            source=source,
            sender=source,
            trail=trail,
            sender_two_hop=sender_two_hop,
            message_id=message_id,
            payload_units=payload_units,
            expires_at=expires_at,
        )
