"""NACK-based recovery: reliable broadcast on a lossy MAC.

The paper's assumption 1 (error-free transmission) is justified by
pointing at reliable broadcast protocols that add "transmission
redundancy and confirmation", and Stojmenovic's algorithm "suggests
rebroadcasting after negative acknowledgements".  This module implements
that recovery sublayer:

* phase 1 — the ordinary broadcast runs to quiescence (any protocol, any
  MAC, including the collision model);
* phase 2 — recovery rounds: every node still missing the packet learns,
  through the periodic hello exchange, which neighbors hold it and sends
  a NACK to the lowest-id holder; NACKed holders retransmit once.  Rounds
  repeat until everyone is covered or no progress is possible.

Retransmissions go through the same MAC, so a collision-prone channel
can also lose recovery copies — rounds simply continue.  On a connected
graph with a non-degenerate MAC the process converges: every round with
an uncovered node adjacent to a covered one makes progress with positive
probability, and the round budget bounds the worst case.

Recovery work is observable: NACKs and retransmissions are published as
typed :class:`~repro.sim.events.Nack` / :class:`~repro.sim.events.Transmit`
events on the session's bus and tallied into the active
:func:`repro.instrument.collecting` scope.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..algorithms.base import BroadcastProtocol
from ..graph.topology import Topology
from ..instrument import _STACK as _COUNTER_STACK
from .engine import BroadcastOutcome, BroadcastSession, SimulationEnvironment
from .events import NULL_BUS, Deliver, Drop, EventBus, Nack, Transmit
from .mac import IdealMac, MacModel

__all__ = ["ReliableOutcome", "ReliableBroadcastSession", "reliable_seed"]

#: Monotone sequence distinguishing same-process default-seeded sessions.
_SESSION_SEQUENCE = itertools.count()


def reliable_seed(sequence: int) -> int:
    """The documented default-RNG seed of one :class:`ReliableBroadcastSession`.

    ``sha256("ReliableBroadcastSession|{sequence}")`` truncated to 64
    bits — the same derivation as
    :func:`repro.sim.engine.session_seed`, under a recovery-specific tag
    so lossy-MAC and backoff draws never correlate with other streams.
    A shared fixed default (the old ``Random(0)``) made every
    default-seeded recovery session in a process replay the identical
    loss pattern; pass an explicit ``rng`` for cross-process
    reproducibility.
    """
    digest = hashlib.sha256(
        f"ReliableBroadcastSession|{sequence}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class ReliableOutcome:
    """Result of a broadcast plus its recovery phase."""

    #: The phase-1 outcome, untouched.
    initial: BroadcastOutcome
    #: Nodes holding the packet after recovery.
    delivered: Set[int]
    #: Nodes recovered by NACK rounds (disjoint from the initial set).
    recovered: Set[int]
    #: Extra transmissions spent on recovery.
    retransmissions: int
    #: NACK messages sent.
    nacks: int
    #: Recovery rounds executed.
    rounds: int

    def delivery_ratio(self, graph: Topology) -> float:
        """Final delivered fraction of all nodes."""
        return len(self.delivered) / graph.node_count()


class ReliableBroadcastSession:
    """A broadcast followed by NACK/retransmission recovery rounds."""

    def __init__(
        self,
        env: SimulationEnvironment,
        protocol: BroadcastProtocol,
        source: int,
        rng: Optional[random.Random] = None,
        mac: Optional[MacModel] = None,
        max_rounds: int = 10,
        bus: Optional[EventBus] = None,
    ) -> None:
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        self.env = env
        self.protocol = protocol
        self.source = source
        self.rng = rng or random.Random(
            reliable_seed(next(_SESSION_SEQUENCE))
        )
        self.mac = mac or IdealMac()
        self.max_rounds = max_rounds
        self.bus = bus or NULL_BUS

    def run(self) -> ReliableOutcome:
        """Phase 1 broadcast, then recovery rounds to convergence."""
        session = BroadcastSession(
            self.env, self.protocol, self.source,
            rng=self.rng, mac=self.mac, bus=self.bus,
            _deprecation_warning=False,
        )
        initial = session.run()
        graph = self.env.graph
        delivered: Set[int] = set(initial.delivered)
        retransmissions = 0
        nacks = 0
        rounds = 0
        clock = initial.completion_time

        while rounds < self.max_rounds:
            missing = set(graph.nodes()) - delivered
            if not missing:
                break
            # Hello exchange: each missing node discovers covered
            # neighbors and NACKs the lowest-id one.
            bus = self.bus
            nacked: Set[int] = set()
            for node in sorted(missing):
                holders = graph.neighbors(node) & delivered
                if holders:
                    target = min(holders)
                    nacked.add(target)
                    nacks += 1
                    if _COUNTER_STACK:
                        _COUNTER_STACK[-1].nacks += 1
                    if bus.active:
                        bus.emit(Nack(time=clock, node=node, target=target))
            if not nacked:
                break  # nobody reachable holds the packet: stuck
            rounds += 1
            clock += 1.0
            # Collect the whole round first: a later retransmission can
            # retroactively corrupt an earlier one at a shared receiver.
            pending: List[Tuple[int, int, float]] = []
            for holder in sorted(nacked):
                retransmissions += 1
                if _COUNTER_STACK:
                    _COUNTER_STACK[-1].retransmissions += 1
                if bus.active:
                    bus.emit(Transmit(time=clock, node=holder))
                for receiver, arrival in self.mac.deliveries(
                    holder, clock, graph.neighbors(holder), self.rng
                ):
                    if arrival is not None:
                        pending.append((holder, receiver, arrival))
                    elif bus.active:
                        bus.emit(
                            Drop(
                                time=clock,
                                node=receiver,
                                sender=holder,
                                reason="loss",
                            )
                        )
            for holder, receiver, arrival in pending:
                if self.mac.corrupted(receiver, arrival):
                    if bus.active:
                        bus.emit(
                            Drop(
                                time=arrival,
                                node=receiver,
                                sender=holder,
                                reason="collision",
                            )
                        )
                else:
                    delivered.add(receiver)
                    if bus.active:
                        bus.emit(
                            Deliver(time=arrival, node=receiver, sender=holder)
                        )
            clock += 1.0

        return ReliableOutcome(
            initial=initial,
            delivered=delivered,
            recovered=delivered - initial.delivered,
            retransmissions=retransmissions,
            nacks=nacks,
            rounds=rounds,
        )
