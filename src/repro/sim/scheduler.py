"""A minimal deterministic discrete-event scheduler.

Events are ``(time, sequence)``-ordered callbacks: equal-time events fire in
scheduling order, so a seeded simulation replays identically.  The
scheduler is intentionally tiny — the broadcast engine is its only client,
but it is generic enough for the hello protocol and the mobility ablations.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..instrument import _STACK as _COUNTER_STACK

__all__ = ["EventScheduler"]

Callback = Callable[[], None]


class EventScheduler:
    """Time-ordered callback execution with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callback]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._executed = 0
        self._max_queue_depth = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """How many events have fired so far."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """How many events are waiting."""
        return len(self._queue)

    @property
    def max_queue_depth(self) -> int:
        """High-water mark of the pending queue over this scheduler's life."""
        return self._max_queue_depth

    def schedule_at(self, time: float, callback: Callback) -> None:
        """Run ``callback`` at absolute ``time`` (must not be in the past)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}; simulation time is {self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._sequence), callback))
        if len(self._queue) > self._max_queue_depth:
            self._max_queue_depth = len(self._queue)

    def schedule_in(self, delay: float, callback: Callback) -> None:
        """Run ``callback`` after ``delay`` time units."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self._now + delay, callback)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; return the number of events executed.

        ``max_events`` caps execution (a safety valve for tests); ``None``
        runs to quiescence.
        """
        return self._drain(max_events=max_events, until=None)

    def run_until(
        self, until: float, max_events: Optional[int] = None
    ) -> int:
        """Execute every event with ``time <= until``; return the count.

        The broadcast service's horizon valve: a saturated multi-message
        run can be cut off at a fixed simulation time instead of being
        drained to quiescence.  Events beyond the horizon stay queued
        (callers may resume with another ``run``/``run_until``), and the
        clock never advances past the last *executed* event.
        """
        if until < self._now:
            raise ValueError(
                f"cannot run until {until}; simulation time is {self._now}"
            )
        return self._drain(max_events=max_events, until=until)

    def _drain(self, max_events: Optional[int], until: Optional[float]) -> int:
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            if until is not None and self._queue[0][0] > until:
                break
            time, _seq, callback = heapq.heappop(self._queue)
            self._now = time
            callback()
            executed += 1
            self._executed += 1
        if _COUNTER_STACK:
            counters = _COUNTER_STACK[-1]
            counters.scheduler_events += executed
            if self._max_queue_depth > counters.scheduler_max_queue_depth:
                counters.scheduler_max_queue_depth = self._max_queue_depth
        return executed
