"""Legacy text-trace shim over the typed event stream.

.. deprecated::
    The simulation now publishes typed :class:`~repro.sim.events.SimEvent`
    objects on an :class:`~repro.sim.events.EventBus`; consume
    ``BroadcastOutcome.events`` (or subscribe a bus) instead of this
    module.  :class:`TraceRecorder` remains so existing code that reads
    ``outcome.trace`` — kind strings, ``node``/``detail`` fields, the
    ``format()`` text — keeps working: it renders the old format from
    typed events via :meth:`~repro.sim.events.SimEvent.legacy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

from .events import SimEvent

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One legacy-format trace line: time, kind, node, free-text detail."""

    time: float
    kind: str
    node: int
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" {self.detail}" if self.detail else ""
        return f"[{self.time:8.3f}] {self.kind:<8} node {self.node}{suffix}"


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records in time order.

    Deprecated compatibility shim: build one from typed events with
    :meth:`from_events` (what the engine does for ``collect_trace=True``)
    or keep appending legacy records with :meth:`record`.
    """

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    @classmethod
    def from_events(cls, events: Iterable[SimEvent]) -> "TraceRecorder":
        """Render typed events into the legacy text-trace format.

        Events without a legacy counterpart (designations, backoff
        scheduling, hello beacons, NACKs) are skipped — the old recorder
        never saw them.
        """
        recorder = cls()
        for event in events:
            rendered = event.legacy()
            if rendered is None:
                continue
            kind, detail = rendered
            recorder.record(event.time, kind, event.node, detail)
        return recorder

    def record(self, time: float, kind: str, node: int, detail: str = "") -> None:
        """Append one event."""
        self._events.append(TraceEvent(time, kind, node, detail))

    def events(self, kind: str = "") -> List[TraceEvent]:
        """All events, optionally filtered by kind."""
        if not kind:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def format(self) -> str:
        """The whole trace as printable text."""
        return "\n".join(str(event) for event in self._events)
