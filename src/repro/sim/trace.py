"""Event trace recording for debugging, examples, and tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded simulation event."""

    time: float
    kind: str
    node: int
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" {self.detail}" if self.detail else ""
        return f"[{self.time:8.3f}] {self.kind:<8} node {self.node}{suffix}"


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records in time order."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, time: float, kind: str, node: int, detail: str = "") -> None:
        """Append one event."""
        self._events.append(TraceEvent(time, kind, node, detail))

    def events(self, kind: str = "") -> List[TraceEvent]:
        """All events, optionally filtered by kind."""
        if not kind:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def format(self) -> str:
        """The whole trace as printable text."""
        return "\n".join(str(event) for event in self._events)
