"""A round-synchronous broadcast executor.

The paper's custom simulator advances in waves: all nodes that decided
to forward in round ``r`` transmit simultaneously, and their neighbors
decide in round ``r + 1``.  This module implements that executor
directly — no event queue, no MAC, no timers — for two purposes:

* **differential validation** — for first-receipt and static protocols
  under the unit-delay ideal MAC, the discrete-event engine must produce
  the *same forward set*, because its delivery schedule degenerates to
  synchronous waves; the tests assert exact agreement protocol by
  protocol;
* **speed** — the wave loop is the fastest way to run large FR sweeps.

Backoff timings (FRB/FRBD) genuinely depend on sub-round timing and are
rejected here.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from typing import Dict, List, Optional, Set

from ..algorithms.base import BroadcastProtocol, NodeContext, Timing
from ..graph.topology import Topology
from ..instrument import _STACK as _COUNTER_STACK
from .engine import BroadcastOutcome, SimulationEnvironment
from .events import (
    NULL_BUS,
    Decide,
    Deliver,
    Designate,
    EventBus,
    RecordingBus,
    Transmit,
)
from .packet import Packet
from .trace import TraceRecorder

__all__ = ["round_seed", "run_round_broadcast"]

_SUPPORTED = (Timing.STATIC, Timing.FIRST_RECEIPT)

#: Monotone sequence distinguishing same-process default-seeded runs.
_ROUND_SEQUENCE = itertools.count()


def round_seed(sequence: int) -> int:
    """The documented default-RNG seed of one :func:`run_round_broadcast`.

    ``sha256("run_round_broadcast|{sequence}")`` truncated to 64 bits —
    the same derivation as :func:`repro.sim.engine.session_seed`, under
    an executor-specific tag so wave-executor draws never correlate
    with discrete-event backoff streams.  A shared fixed default (the
    old ``Random(0)``) made every default-seeded wave run in a process
    draw identically; pass an explicit ``rng`` for cross-process
    reproducibility.
    """
    digest = hashlib.sha256(f"run_round_broadcast|{sequence}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def run_round_broadcast(
    env: SimulationEnvironment,
    protocol: BroadcastProtocol,
    source: int,
    rng: Optional[random.Random] = None,
    bus: Optional[EventBus] = None,
    collect_trace: bool = False,
) -> BroadcastOutcome:
    """Execute one broadcast in synchronous waves.

    Matches the discrete-event engine exactly for static and
    first-receipt protocols under a unit-delay ideal MAC (delivery order
    within a wave follows the transmitting nodes' scheduling order,
    mirroring the engine's FIFO tie-break).  Typed events go to ``bus``
    (or a recording bus under ``collect_trace=True``) with the wave
    number as the timestamp; transmissions and decisions are tallied
    into the active instrumentation scope.
    """
    if protocol.timing not in _SUPPORTED:
        raise ValueError(
            f"round executor supports static/first-receipt timings, "
            f"got {protocol.timing}"
        )
    if source not in env.graph:
        raise KeyError(f"source {source} not in the deployment graph")
    rng = rng or random.Random(round_seed(next(_ROUND_SEQUENCE)))
    if bus is None:
        bus = RecordingBus() if collect_trace else NULL_BUS
    graph = env.graph

    known_visited: Dict[int, Set[int]] = {
        node: set() for node in graph.nodes()
    }
    known_designated: Dict[int, Set[int]] = {
        node: set() for node in graph.nodes()
    }
    designators: Dict[int, Set[int]] = {node: set() for node in graph.nodes()}
    first_packet: Dict[int, Packet] = {}
    receipt_counts: Dict[int, int] = {node: 0 for node in graph.nodes()}
    decided: Set[int] = set()
    forwarded: Set[int] = set()
    designations: Dict[int, frozenset] = {}

    def context(node: int) -> NodeContext:
        return NodeContext(
            node=node,
            is_source=(node == source),
            time=float(rounds),
            env=env,
            hops=protocol.hops,
            known_visited=frozenset(known_visited[node]),
            known_designated=frozenset(known_designated[node]),
            designators=frozenset(designators[node]),
            first_packet=first_packet.get(node),
            rng=rng,
        )

    def transmit(node: int, incoming: Optional[Packet]) -> Packet:
        ctx = context(node)
        chosen = protocol.designate(ctx)
        designations[node] = chosen
        forwarded.add(node)
        known_visited[node].add(node)
        known_designated[node] |= chosen
        two_hop = (
            env.two_hop_set(node) if protocol.piggyback_two_hop else None
        )
        if incoming is None:
            packet = Packet.original(
                node, chosen, protocol.piggyback_h, two_hop
            )
        else:
            packet = incoming.forwarded(
                node, chosen, protocol.piggyback_h, two_hop
            )
        if _COUNTER_STACK:
            counters = _COUNTER_STACK[-1]
            counters.transmissions += 1
            counters.bytes_transmitted += packet.size_units()
        if bus.active:
            announced = tuple(sorted(chosen))
            if announced:
                bus.emit(
                    Designate(
                        time=float(rounds), node=node, designated=announced
                    )
                )
            bus.emit(
                Transmit(
                    time=float(rounds),
                    node=node,
                    designated=announced,
                    size_units=packet.size_units(),
                )
            )
        return packet

    rounds = 0
    known_visited[source].add(source)
    decided.add(source)
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].decisions += 1
    if bus.active:
        bus.emit(Decide(time=0.0, node=source, forward=True, reason="source"))
    wave: List[tuple] = [(source, transmit(source, None))]

    while wave:
        rounds += 1
        # Deliver the whole wave first (knowledge accumulates) with
        # late-designation handling inline per delivery, then let the new
        # receivers decide — exactly the engine's event order for
        # unit-delay delivery.
        newly_received: List[int] = []
        next_wave: List[tuple] = []
        for sender, packet in wave:
            for receiver in sorted(graph.neighbors(sender)):
                receipt_counts[receiver] += 1
                if bus.active:
                    bus.emit(
                        Deliver(
                            time=float(rounds), node=receiver, sender=sender
                        )
                    )
                known_visited[receiver].add(sender)
                for entry in packet.trail:
                    known_visited[receiver].add(entry.node)
                    known_designated[receiver] |= entry.designated
                    if receiver in entry.designated:
                        designators[receiver].add(entry.node)
                if receiver not in first_packet:
                    first_packet[receiver] = packet
                    if receiver not in decided:
                        newly_received.append(receiver)
                elif (
                    receiver in decided
                    and receiver not in forwarded
                    and designators[receiver]
                ):
                    # Late designation after a decision: strict forces,
                    # relaxed re-evaluates at the raised priority — with
                    # the knowledge available at this instant, matching
                    # the engine's per-delivery handling.
                    if protocol.strict_designation:
                        if _COUNTER_STACK:
                            _COUNTER_STACK[-1].decisions += 1
                        if bus.active:
                            bus.emit(
                                Decide(
                                    time=float(rounds),
                                    node=receiver,
                                    forward=True,
                                    reason="forced-designation",
                                )
                            )
                        next_wave.append((receiver, transmit(receiver, packet)))
                    elif protocol.relaxed_designation:
                        if protocol.should_forward(context(receiver)):
                            if _COUNTER_STACK:
                                _COUNTER_STACK[-1].decisions += 1
                            if bus.active:
                                bus.emit(
                                    Decide(
                                        time=float(rounds),
                                        node=receiver,
                                        forward=True,
                                        reason="relaxed-designation",
                                    )
                                )
                            next_wave.append(
                                (receiver, transmit(receiver, packet))
                            )
        for node in newly_received:
            if node in decided:
                continue
            decided.add(node)
            ctx = context(node)
            forced = protocol.strict_designation and bool(designators[node])
            forward = forced or protocol.should_forward(ctx)
            if _COUNTER_STACK:
                _COUNTER_STACK[-1].decisions += 1
            if bus.active:
                bus.emit(
                    Decide(
                        time=float(rounds),
                        node=node,
                        forward=forward,
                        reason="timer",
                        designated=forced,
                    )
                )
            if forward:
                next_wave.append((node, transmit(node, first_packet[node])))
        wave = next_wave

    delivered = {node for node, count in receipt_counts.items() if count}
    delivered.add(source)
    events = bus.recorded()
    return BroadcastOutcome(
        source=source,
        forward_nodes=set(forwarded),
        delivered=delivered,
        transmissions=len(forwarded),
        completion_time=float(rounds),
        designations=dict(designations),
        receipt_counts=receipt_counts,
        events=events,
        trace=(
            TraceRecorder.from_events(events)
            if collect_trace and events is not None
            else None
        ),
    )
