"""Per-node energy accounting and energy-aware priorities.

Span — one of the paper's special cases — exists to extend network
*lifetime*: its original backoff priority is computed from residual
energy so that depleted nodes shed coordinator duty.  The paper strips
the energy term for a fair forward-count comparison; this module puts it
back as a first-class substrate:

* :class:`EnergyTracker` charges transmission and reception costs from
  broadcast outcomes and tracks per-node residual energy;
* :class:`EnergyAwarePriority` turns a residual-energy snapshot into a
  priority scheme (more energy = higher priority = more forward duty),
  which is safe because any fixed total order satisfies the coverage
  theorems;
* :func:`network_lifetime` runs broadcasts until the first node dies,
  the canonical lifetime metric.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Set

from ..algorithms.base import BroadcastProtocol
from ..core.priority import PriorityScheme
from ..graph.topology import Topology
from .engine import BroadcastOutcome, BroadcastSession, SimulationEnvironment

__all__ = [
    "EnergyTracker",
    "EnergyAwarePriority",
    "LifetimeResult",
    "lifetime_seed",
    "network_lifetime",
]

#: Monotone sequence distinguishing same-process default-seeded runs.
_LIFETIME_SEQUENCE = itertools.count()


def lifetime_seed(sequence: int) -> int:
    """The documented default-RNG seed of one :func:`network_lifetime`.

    ``sha256("network_lifetime|{sequence}")`` truncated to 64 bits —
    the same derivation as :func:`repro.sim.engine.session_seed`, under
    a lifetime-specific tag so source selection never correlates with
    engine backoff streams.  A shared fixed default (the old
    ``Random(0)``) made every default-seeded lifetime run in a process
    pick the identical source sequence; pass an explicit ``rng`` for
    cross-process reproducibility.
    """
    digest = hashlib.sha256(f"network_lifetime|{sequence}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class EnergyTracker:
    """Residual energy per node, charged from broadcast outcomes.

    Costs follow the standard radio model shape: transmitting is the
    expensive operation, receiving cheaper by a constant factor.
    """

    def __init__(
        self,
        nodes: Iterable[int],
        initial: float = 100.0,
        transmit_cost: float = 1.0,
        receive_cost: float = 0.2,
    ) -> None:
        if initial <= 0:
            raise ValueError(f"initial energy must be positive, got {initial}")
        if transmit_cost < 0 or receive_cost < 0:
            raise ValueError("costs must be non-negative")
        self.transmit_cost = transmit_cost
        self.receive_cost = receive_cost
        self._remaining: Dict[int, float] = {
            node: float(initial) for node in nodes
        }
        if not self._remaining:
            raise ValueError("tracker needs at least one node")

    def remaining(self, node: int) -> float:
        """Residual energy of ``node`` (never below zero)."""
        try:
            return max(0.0, self._remaining[node])
        except KeyError as exc:
            raise KeyError(f"node {node} not tracked") from exc

    def snapshot(self) -> Dict[int, float]:
        """Residual energy of every node."""
        return {node: self.remaining(node) for node in self._remaining}

    def charge_outcome(self, outcome: BroadcastOutcome) -> None:
        """Debit one broadcast: transmissions and receptions."""
        for node in outcome.forward_nodes:
            self._remaining[node] -= self.transmit_cost
        for node, count in outcome.receipt_counts.items():
            self._remaining[node] -= count * self.receive_cost

    def alive(self) -> Set[int]:
        """Nodes with strictly positive residual energy."""
        return {
            node for node, value in self._remaining.items() if value > 0
        }

    def depleted(self) -> Set[int]:
        """Nodes at or below zero."""
        return set(self._remaining) - self.alive()

    def min_remaining(self) -> float:
        """The weakest node's residual energy."""
        return min(self.remaining(node) for node in self._remaining)


class EnergyAwarePriority(PriorityScheme):
    """Residual energy as the priority metric (Span's ingredient).

    Nodes advertise their remaining energy in hellos; higher residual
    energy means higher priority, so well-charged nodes absorb forward
    duty and depleted ones prune themselves whenever coverage allows.
    The snapshot is fixed per scheme instance (one epoch), keeping the
    order total and the coverage guarantees intact.
    """

    name = "energy"
    arity = 1
    extra_rounds = 1

    def __init__(self, snapshot: Dict[int, float]) -> None:
        if not snapshot:
            raise ValueError("energy snapshot is empty")
        self._snapshot = dict(snapshot)

    def metrics(self, graph: Topology) -> Dict[int, tuple]:
        return {
            node: (self._snapshot.get(node, 0.0),)
            for node in graph.nodes()
        }


@dataclass
class LifetimeResult:
    """Outcome of a :func:`network_lifetime` run."""

    #: Broadcasts completed before the first node died (or the cap).
    broadcasts: int
    #: Whether some node actually depleted (False = hit the cap).
    node_died: bool
    #: Residual energy at the end.
    final_energy: Dict[int, float]

    def survivors(self) -> int:
        """Nodes still holding positive residual energy."""
        return sum(1 for value in self.final_energy.values() if value > 0)


def network_lifetime(
    graph: Topology,
    protocol_factory: Callable[[], BroadcastProtocol],
    tracker: EnergyTracker,
    scheme_factory: Optional[
        Callable[[EnergyTracker], PriorityScheme]
    ] = None,
    rng: Optional[random.Random] = None,
    max_broadcasts: int = 10_000,
) -> LifetimeResult:
    """Broadcast from random sources until the first node dies.

    ``scheme_factory(tracker)`` is consulted before every broadcast, so
    an energy-aware scheme keeps following the residual-energy state; a
    ``None`` factory uses the environment's default (id priority).
    """
    rng = rng or random.Random(lifetime_seed(next(_LIFETIME_SEQUENCE)))
    base_env = SimulationEnvironment(graph)
    count = 0
    while count < max_broadcasts:
        env = base_env
        if scheme_factory is not None:
            env = base_env.with_scheme(scheme_factory(tracker))
        protocol = protocol_factory()
        protocol.prepare(env)
        source = rng.choice(graph.nodes())
        outcome = BroadcastSession(
            env, protocol, source, rng=random.Random(rng.getrandbits(32)),
            _deprecation_warning=False,
        ).run()
        tracker.charge_outcome(outcome)
        count += 1
        if tracker.depleted():
            return LifetimeResult(
                broadcasts=count,
                node_died=True,
                final_energy=tracker.snapshot(),
            )
    return LifetimeResult(
        broadcasts=count,
        node_died=False,
        final_energy=tracker.snapshot(),
    )
