"""Unicast routing over a CDS virtual backbone.

The paper motivates the static approach with exactly this application:
"the static approach produces a relatively stable CDS that forms a
virtual backbone, which facilitates both broadcasting and unicasting."
A :class:`BackboneRouter` wraps a graph plus a CDS: routes enter the
backbone at the source, travel only through backbone nodes, and exit at
the destination — so only the (small, stable) backbone must maintain
routing state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..graph.cds import is_cds
from ..graph.topology import Topology

__all__ = ["BackboneRouter"]


class BackboneRouter:
    """Routes unicast traffic through a connected dominating set.

    Parameters
    ----------
    graph:
        The full network topology.
    backbone:
        A CDS of ``graph`` (validated on construction).

    The router precomputes, per backbone node, a BFS tree within the
    backbone — the routing tables a real deployment would maintain only
    on backbone nodes.
    """

    def __init__(self, graph: Topology, backbone: Iterable[int]) -> None:
        self.graph = graph
        self.backbone: Set[int] = set(backbone)
        if not is_cds(graph, self.backbone):
            raise ValueError("backbone must be a connected dominating set")
        self._core = graph.subgraph(self.backbone) if self.backbone else Topology()

    def attachment_points(self, node: int) -> Set[int]:
        """Backbone nodes adjacent to ``node`` (or ``node`` itself)."""
        if node in self.backbone:
            return {node}
        return set(self.graph.neighbors(node) & self.backbone)

    def route(self, source: int, target: int) -> Optional[List[int]]:
        """A source → target path whose interior stays in the backbone.

        Returns ``None`` only when the endpoints are disconnected (which
        a valid CDS on a connected graph rules out).  Direct neighbors
        short-circuit without entering the backbone.
        """
        if source == target:
            return [source]
        if self.graph.has_edge(source, target):
            return [source, target]
        best: Optional[List[int]] = None
        for entry in sorted(self.attachment_points(source)):
            for exit_point in sorted(self.attachment_points(target)):
                core_path = self._core_path(entry, exit_point)
                if core_path is None:
                    continue
                path = []
                if source not in self.backbone:
                    path.append(source)
                path.extend(core_path)
                if target not in self.backbone:
                    path.append(target)
                if best is None or len(path) < len(best):
                    best = path
        return best

    def _core_path(self, a: int, b: int) -> Optional[List[int]]:
        if a == b:
            return [a]
        return self._core.shortest_path(a, b)

    def stretch(self, source: int, target: int) -> float:
        """Backbone route length over shortest-path length.

        1.0 means the backbone detour is free; the stretch of a good CDS
        stays small.  Raises if the pair is disconnected.
        """
        direct = self.graph.shortest_path(source, target)
        if direct is None:
            raise ValueError(f"{source} and {target} are disconnected")
        if len(direct) == 1:
            return 1.0
        routed = self.route(source, target)
        assert routed is not None  # CDS on a connected graph
        return (len(routed) - 1) / (len(direct) - 1)

    def mean_stretch(self, pairs: Iterable[tuple]) -> float:
        """Average stretch over the given (source, target) pairs."""
        values = [self.stretch(s, t) for s, t in pairs]
        if not values:
            raise ValueError("no pairs supplied")
        return sum(values) / len(values)
