"""Routing applications built on the broadcast substrate."""

from .backbone import BackboneRouter
from .link_state import LinkStateNode, LinkStateRouting

__all__ = ["BackboneRouter", "LinkStateNode", "LinkStateRouting"]
