"""OLSR-style link-state routing on top of MPR flooding.

Multipoint relays were invented to flood *link-state messages* in the
Optimized Link State Routing protocol — the application the paper cites
when classifying MPR.  This module closes that loop:

1. every node periodically originates a topology-control (TC) message
   advertising its links, which is flooded through the broadcast engine
   using the MPR protocol (so only relays re-transmit);
2. each node assembles the received advertisements into a link-state
   database;
3. routes are computed on the database with BFS.

The broadcast layer is the *actual* engine of this library — the TC
flood is a :class:`~repro.sim.engine.BroadcastSession` per originator —
so the dissemination cost directly reflects the MPR forward sets.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..algorithms.mpr import MultipointRelay
from ..graph.topology import Topology
from ..sim.engine import BroadcastSession, SimulationEnvironment

__all__ = ["LinkStateNode", "LinkStateRouting", "linkstate_seed"]

#: Monotone sequence distinguishing same-process default-seeded routers.
_ROUTER_SEQUENCE = itertools.count()


def linkstate_seed(sequence: int) -> int:
    """The documented default-RNG seed of one :class:`LinkStateRouting`.

    ``sha256("LinkStateRouting|{sequence}")`` truncated to 64 bits — the
    same derivation as :func:`repro.sim.engine.session_seed`, under a
    routing-specific tag so TC-flood backoff draws never correlate with
    engine or workload streams.  A shared fixed default (the old
    ``Random(0)``) made every default-constructed router in a process
    replay the identical flood schedule; pass an explicit ``rng`` for
    cross-process reproducibility.
    """
    digest = hashlib.sha256(f"LinkStateRouting|{sequence}".encode()).digest()
    return int.from_bytes(digest[:8], "big")

Edge = Tuple[int, int]


@dataclass
class LinkStateNode:
    """One node's link-state database and derived routing table."""

    node: int
    database: Set[Edge] = field(default_factory=set)

    def topology(self) -> Topology:
        """The database as a graph (includes this node)."""
        graph = Topology(nodes=[self.node])
        for u, v in self.database:
            graph.add_edge(u, v)
        return graph

    def next_hop(self, target: int) -> Optional[int]:
        """First hop of the known shortest path to ``target``."""
        graph = self.topology()
        if target not in graph:
            return None
        path = graph.shortest_path(self.node, target)
        if path is None or len(path) < 2:
            return None
        return path[1]


class LinkStateRouting:
    """Runs a full TC dissemination round and exposes the results.

    Parameters
    ----------
    graph:
        The deployment.
    rng:
        Randomness for the per-flood sessions.

    After :meth:`disseminate`, every node's database contains the links
    advertised by every originator whose flood reached it — on a
    connected graph under an ideal MAC, the full topology.
    """

    def __init__(self, graph: Topology, rng: Optional[random.Random] = None):
        self.graph = graph
        self.rng = rng or random.Random(
            linkstate_seed(next(_ROUTER_SEQUENCE))
        )
        self.env = SimulationEnvironment(graph)
        self.nodes: Dict[int, LinkStateNode] = {
            node: LinkStateNode(node) for node in graph.nodes()
        }
        #: Total transmissions spent on dissemination (cost metric).
        self.total_transmissions = 0
        #: Transmissions a blind-flooding dissemination would have spent.
        self.flooding_transmissions = 0

    def _advertisement(self, originator: int) -> Set[Edge]:
        return {
            (min(originator, nbr), max(originator, nbr))
            for nbr in self.graph.neighbors(originator)
        }

    def disseminate(self) -> None:
        """Flood one TC message from every node via MPR."""
        for originator in self.graph.nodes():
            advertisement = self._advertisement(originator)
            protocol = MultipointRelay()
            protocol.prepare(self.env)
            session = BroadcastSession(
                self.env, protocol, originator, rng=self.rng,
                _deprecation_warning=False,
            )
            outcome = session.run()
            self.total_transmissions += outcome.transmissions
            self.flooding_transmissions += self.graph.node_count()
            for receiver in outcome.delivered:
                self.nodes[receiver].database |= advertisement

    def savings(self) -> float:
        """Fraction of transmissions saved versus flooding every TC."""
        if not self.flooding_transmissions:
            return 0.0
        return 1.0 - self.total_transmissions / self.flooding_transmissions

    def route(self, source: int, target: int) -> Optional[List[int]]:
        """Hop-by-hop forwarding using each node's own table.

        Faithful to distance-vector-free link-state forwarding: every
        intermediate consults *its* database for the next hop, so an
        incomplete dissemination shows up as a routing failure here.
        """
        path = [source]
        current = source
        seen = {source}
        while current != target:
            nxt = self.nodes[current].next_hop(target)
            if nxt is None or nxt in seen:
                return None
            path.append(nxt)
            seen.add(nxt)
            current = nxt
        return path
