"""Command-line entry point: regenerate any paper table or figure.

Examples::

    python -m repro.experiments table1
    python -m repro.experiments fig9 --svg-dir out/
    python -m repro.experiments fig10 --quick
    python -m repro.experiments all --quick
    python -m repro.experiments fig15 --ns 20 60 100 --max-runs 30
    python -m repro.experiments fig11 --jobs 4
    python -m repro.experiments fig11 --quick --instrument
    python -m repro.experiments overhead
    python -m repro.experiments traffic --rates 0.2 1.0 5.0 --jobs 4
    python -m repro.experiments sharded-mobility --quick --shards 4 2 --jobs 4

``--quick`` shrinks the sweep and the repetition bounds so a figure runs
in seconds; omit it for paper-precision runs (90% CI within ±1%).
``--jobs N`` fans the measurement points over N worker processes with
byte-identical results (``--jobs 0`` uses every core).
``--instrument`` turns the work counters on: each point carries them in
the JSON export and text runs print the merged totals per panel.  The
``overhead`` target renders the measured-vs-analytical control-overhead
table.  The ``traffic`` target runs the broadcast service's
offered-vs-delivered-load saturation sweep (one series per protocol,
latency p50/p95/p99 per point); it honours ``--jobs``, ``--seed``,
``--instrument`` and ``--format``.  The ``sharded-mobility`` target
replays a random-waypoint trace through the sharded incremental engine
(``--shards SX SY``, ``--jobs N``) and prints per-step re-decide,
handoff, and boundary-flip statistics.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .config import RunSettings
from .figures import FIGURE_BUILDERS
from .report import (
    format_fig9,
    format_overhead_comparison,
    format_table1,
    run_and_format_figure,
    run_fig9_sample,
    run_overhead_comparison,
)

__all__ = ["main"]

_QUICK_NS = (20, 40, 60, 80, 100)


def _build_settings(args: argparse.Namespace) -> RunSettings:
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    if args.quick:
        return RunSettings(
            min_runs=args.min_runs or 8,
            max_runs=args.max_runs or 20,
            relative_half_width=0.05,
            seed=args.seed,
            jobs=jobs,
            instrument=args.instrument,
        )
    return RunSettings(
        min_runs=args.min_runs or 10,
        max_runs=args.max_runs or 10_000,
        relative_half_width=0.01,
        seed=args.seed,
        jobs=jobs,
        instrument=args.instrument,
    )


def _emit_fig9(args: argparse.Namespace) -> None:
    result = run_fig9_sample(seed=args.seed)
    print(format_fig9(result))
    if args.svg_dir:
        os.makedirs(args.svg_dir, exist_ok=True)
        for (hops, label), _nodes in result.forward_sets.items():
            path = os.path.join(args.svg_dir, f"fig9_{label}_{hops}hop.svg")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(result.svg(hops, label))
            print(f"wrote {path}")


def _run_traffic(args: argparse.Namespace) -> None:
    import random as _random

    from ..algorithms import create
    from ..graph.generators import random_connected_network
    from ..metrics.results import format_table
    from .export import table_to_csv, tables_to_json
    from .traffic import TrafficSweepConfig, run_traffic_sweep

    n = args.traffic_nodes if args.traffic_nodes else (60 if args.quick else 200)
    count = args.messages if args.messages else (20 if args.quick else 50)
    rates = tuple(args.rates) if args.rates else (0.2, 1.0, 5.0)
    network = random_connected_network(
        n, 6.0, _random.Random(args.seed)
    )
    protocols = [
        (name, (lambda protocol_name=name: create(protocol_name)))
        for name in args.protocols
    ]
    config = TrafficSweepConfig(
        rates=rates,
        count=count,
        seed=args.seed,
        ttl=args.ttl,
        jobs=args.jobs if args.jobs else (os.cpu_count() or 1),
        collect_counters=args.instrument,
    )
    progress = (
        (lambda msg: print(f"  .. {msg}", file=sys.stderr))
        if args.verbose
        else None
    )
    table = run_traffic_sweep(network.topology, protocols, config, progress)
    if args.format == "json":
        print(tables_to_json([table]))
    elif args.format == "csv":
        print(f"# {table.title}")
        print(table_to_csv(table))
    else:
        print(format_table(table, precision=4))
        print()
        print("latency SLOs (p50 / p95 / p99) per offered load:")
        for series in table.series:
            for point in series.points:
                extras = point.extras or {}
                if "latency_p50" in extras:
                    slo = (
                        f"{extras['latency_p50']:.2f} / "
                        f"{extras['latency_p95']:.2f} / "
                        f"{extras['latency_p99']:.2f}"
                    )
                else:
                    slo = "no fully delivered messages"
                print(
                    f"  {series.label} @ rate {point.x:g}: {slo}  "
                    f"(goodput {extras.get('goodput', 0.0):.4f}, "
                    f"drops {extras.get('dropped_events', 0.0):g})"
                )
        totals = table.total_counters()
        if totals is not None:
            nonzero = {k: v for k, v in sorted(totals.items()) if v}
            print()
            print("measured work (instrumentation counters):")
            for key, value in nonzero.items():
                print(f"  {key}: {value}")


def _run_sharded_mobility(args: argparse.Namespace) -> None:
    import random as _random

    from ..core.priority import DegreePriority
    from ..graph.geometry import Area, random_points
    from ..graph.mobility import RandomWaypointModel
    from ..graph.unit_disk import range_for_average_degree
    from .sharded import run_sharded_mobility_sweep

    n = args.mobility_nodes if args.mobility_nodes else (300 if args.quick else 2000)
    steps = args.steps if args.steps else (10 if args.quick else 40)
    shards = tuple(args.shards)
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    rng = _random.Random(args.seed)
    positions = random_points(n, Area(), rng)
    radius, _ = range_for_average_degree(positions, 6.0)
    model = RandomWaypointModel(
        positions, radius=radius, rng=rng, min_speed=0.02, max_speed=0.05
    )
    results = run_sharded_mobility_sweep(
        model, steps, 1.0,
        scheme=DegreePriority(), k=2, shards=shards, jobs=jobs,
    )
    print(
        f"sharded mobility sweep: n={n} steps={steps} "
        f"shards={shards[0]}x{shards[1]} jobs={jobs}"
    )
    header = (
        f"{'step':>4}  {'forward':>7}  {'redecided':>9}  {'shard':>6}  "
        f"{'handoff':>7}  {'boundary':>8}  {'flips':>5}"
    )
    print(header)
    for step in results:
        print(
            f"{step.step:>4}  {len(step.forward):>7}  {step.redecided:>9}  "
            f"{step.shard_redecides:>6}  {step.handoff_redecides:>7}  "
            f"{step.boundary_flips:>8}  "
            f"{step.added_edges + step.removed_edges:>5}"
        )
    print(
        "totals: "
        f"redecided={sum(s.redecided for s in results)} "
        f"shard_redecides={sum(s.shard_redecides for s in results)} "
        f"handoff={sum(s.handoff_redecides for s in results)} "
        f"boundary_flips={sum(s.boundary_flips for s in results)} "
        f"flips={sum(s.added_edges + s.removed_edges for s in results)}"
    )


def _run_figure(name: str, args: argparse.Namespace) -> None:
    builder = FIGURE_BUILDERS[name]
    ns = tuple(args.ns) if args.ns else (_QUICK_NS if args.quick else None)
    figure = builder(ns=ns)
    settings = _build_settings(args)
    progress = (lambda msg: print(f"  .. {msg}", file=sys.stderr)) if args.verbose else None
    from .export import table_to_csv, tables_to_json
    from .runner import run_figure as _run
    from ..metrics.results import format_table
    from ..viz.ascii_plot import ascii_chart

    tables = _run(figure, settings, progress)
    if args.format == "json":
        print(tables_to_json(tables))
    elif args.format == "csv":
        for table in tables:
            print(f"# {table.title}")
            print(table_to_csv(table))
    else:
        print(f"{figure.figure_id}: {figure.description}\n")
        for table in tables:
            print(format_table(table))
            totals = table.total_counters()
            if totals is not None:
                nonzero = {k: v for k, v in sorted(totals.items()) if v}
                print()
                print("measured work (instrumentation counters):")
                for key, value in nonzero.items():
                    print(f"  {key}: {value}")
            if not args.no_charts:
                print()
                print(ascii_chart(table))
            print()
    if args.chart_dir:
        from ..viz.chart_svg import chart_svg

        os.makedirs(args.chart_dir, exist_ok=True)
        for index, table in enumerate(tables):
            slug = table.title.replace(" ", "_").replace(",", "")
            path = os.path.join(args.chart_dir, f"{name}_{slug}.svg")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(chart_svg(table))
            print(f"wrote {path}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    targets = [
        "table1", "fig9", *FIGURE_BUILDERS,
        "overhead", "traffic", "sharded-mobility", "all",
    ]
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("target", choices=targets, help="what to regenerate")
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep and repetitions (seconds instead of minutes)",
    )
    parser.add_argument(
        "--ns", type=int, nargs="+", default=None,
        help="node counts to sweep (default: the paper's 20..100)",
    )
    parser.add_argument("--min-runs", type=int, default=None)
    parser.add_argument("--max-runs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=20030519)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for figure sweeps (1 = serial, 0 = all "
        "cores); results are byte-identical at any value",
    )
    parser.add_argument(
        "--svg-dir", default="", help="fig9: directory for SVG renderings"
    )
    parser.add_argument(
        "--chart-dir", default="",
        help="figure runs: also write SVG line charts here",
    )
    parser.add_argument("--no-charts", action="store_true")
    parser.add_argument(
        "--instrument", action="store_true",
        help="collect work counters per point (shown in text runs, "
        "included in JSON export)",
    )
    parser.add_argument(
        "--format", choices=["text", "csv", "json"], default="text",
        help="output format for figure runs (default: text tables)",
    )
    parser.add_argument(
        "--rates", type=float, nargs="+", default=None,
        help="traffic: offered Poisson loads to sweep (msgs/time unit)",
    )
    parser.add_argument(
        "--messages", type=int, default=None,
        help="traffic: messages injected per sweep point",
    )
    parser.add_argument(
        "--traffic-nodes", type=int, default=None,
        help="traffic: deployment size (default 200, or 60 with --quick)",
    )
    parser.add_argument(
        "--ttl", type=float, default=None,
        help="traffic: per-message TTL in simulation time units",
    )
    parser.add_argument(
        "--protocols", nargs="+", default=["flooding", "dp", "pdp"],
        help="traffic: protocol registry names, one series each",
    )
    parser.add_argument(
        "--shards", type=int, nargs=2, default=[2, 2], metavar=("SX", "SY"),
        help="sharded-mobility: spatial shard grid (columns rows)",
    )
    parser.add_argument(
        "--steps", type=int, default=None,
        help="sharded-mobility: mobility steps to replay "
        "(default 40, or 10 with --quick)",
    )
    parser.add_argument(
        "--mobility-nodes", type=int, default=None,
        help="sharded-mobility: deployment size (default 2000, or 300 "
        "with --quick)",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error(f"argument --jobs: must be >= 0, got {args.jobs}")

    if args.target == "table1":
        print(format_table1())
    elif args.target == "fig9":
        _emit_fig9(args)
    elif args.target == "overhead":
        trials = 5 if args.quick else 15
        measured = run_overhead_comparison(trials=trials)
        print(format_overhead_comparison(measured))
    elif args.target == "traffic":
        _run_traffic(args)
    elif args.target == "sharded-mobility":
        _run_sharded_mobility(args)
    elif args.target == "all":
        print(format_table1())
        print()
        _emit_fig9(args)
        print()
        for name in FIGURE_BUILDERS:
            _run_figure(name, args)
    else:
        _run_figure(args.target, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
