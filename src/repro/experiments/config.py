"""Experiment specification types.

A *figure* is a set of *panels* (one per average degree and, where the
paper varies it, per view radius); a panel is a set of *series* (one per
algorithm); a series names a protocol factory and a priority scheme.
The specs are pure data — the runner executes them, the report module
renders them, and the benchmarks wrap them with reduced repetition knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from ..algorithms.base import BroadcastProtocol

__all__ = ["SeriesSpec", "PanelSpec", "FigureSpec", "RunSettings", "PAPER_NS"]

#: The node counts the paper sweeps (x axis of every evaluation figure).
PAPER_NS: Tuple[int, ...] = (20, 30, 40, 50, 60, 70, 80, 90, 100)


@dataclass(frozen=True)
class SeriesSpec:
    """One curve: an algorithm configuration under a priority scheme."""

    label: str
    protocol_factory: Callable[[], BroadcastProtocol]
    scheme_name: str = "id"


@dataclass(frozen=True)
class PanelSpec:
    """One panel: a node-count sweep at a fixed average degree."""

    title: str
    degree: float
    ns: Tuple[int, ...]
    series: Tuple[SeriesSpec, ...]


@dataclass(frozen=True)
class FigureSpec:
    """One paper figure: id, description, and its panels."""

    figure_id: str
    description: str
    panels: Tuple[PanelSpec, ...]


@dataclass(frozen=True)
class RunSettings:
    """Execution knobs: repetition counts and the stopping rule.

    The paper's rule is ``confidence=0.90, relative_half_width=0.01`` with
    effectively unbounded runs; benchmarks lower ``max_runs`` so the suite
    finishes quickly.  ``seed`` makes the whole sweep reproducible.

    ``jobs`` selects the measurement backend: 1 (the default) runs points
    serially in-process; N > 1 fans the ``(series, n)`` points out over a
    pool of N worker processes.  Because every point derives its RNG from
    a per-point digest (:func:`repro.experiments.runner.point_seed`),
    results are byte-identical at any ``jobs`` value.

    ``instrument`` turns on instrumentation counters
    (:class:`repro.instrument.InstrumentationCounters`): each measured
    point then carries its aggregated work counts in
    ``DataPoint.counters``, summed per point regardless of which worker
    measured it, so serial and parallel sweeps report identical totals.
    """

    confidence: float = 0.90
    relative_half_width: float = 0.01
    min_runs: int = 10
    max_runs: int = 200
    seed: int = 20030519  # ICDCS 2003 presentation date
    check_coverage: bool = True
    jobs: int = 1
    instrument: bool = False

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
