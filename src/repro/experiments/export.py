"""Result export: CSV and JSON serialisation of experiment tables.

The text tables in ``repro.metrics.results`` are for humans; these
functions feed spreadsheets and plotting scripts.  CSV rows follow the
figures' layout (one row per x value, one column per series); JSON keeps
the full per-point statistics including confidence half-widths and
sample counts.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List

from ..metrics.results import ResultTable

__all__ = ["table_to_csv", "table_to_json", "tables_to_json"]


def table_to_csv(table: ResultTable) -> str:
    """One panel as CSV: header row, then one row per x value."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([table.x_label, *(s.label for s in table.series)])
    for x in table.xs():
        row: List[Any] = [x]
        for series in table.series:
            value = series.value_at(x)
            row.append("" if value is None else f"{value:.4f}")
        writer.writerow(row)
    return buffer.getvalue()


def _table_payload(table: ResultTable) -> Dict[str, Any]:
    return {
        "title": table.title,
        "x_label": table.x_label,
        "y_label": table.y_label,
        "series": [
            {
                "label": series.label,
                "points": [
                    {
                        "x": point.x,
                        "mean": point.mean,
                        "half_width": point.half_width,
                        "samples": point.samples,
                        # Counters appear only when instrumentation was
                        # on, keeping uninstrumented payloads byte-stable
                        # across the refactor.
                        **(
                            {"counters": point.counters}
                            if point.counters is not None
                            else {}
                        ),
                        # Same treatment for the secondary metrics the
                        # traffic sweeps attach (latency percentiles,
                        # goodput).
                        **(
                            {"extras": point.extras}
                            if point.extras is not None
                            else {}
                        ),
                    }
                    for point in series.points
                ],
            }
            for series in table.series
        ],
    }


def table_to_json(table: ResultTable, indent: int = 2) -> str:
    """One panel as JSON with full per-point statistics."""
    return json.dumps(_table_payload(table), indent=indent)


def tables_to_json(tables: List[ResultTable], indent: int = 2) -> str:
    """A whole figure (several panels) as a JSON array."""
    return json.dumps(
        [_table_payload(table) for table in tables], indent=indent
    )
