"""Multi-broadcast workloads: load, fairness, and aggregate cost.

A single forward-node count tells only part of the story once a network
carries *streams* of broadcasts.  The static approach reuses one CDS for
every broadcast — cheap to maintain, but the same backbone nodes burn
energy on every packet (the fairness concern that motivated Span's
coordinator rotation).  Dynamic approaches recompute per broadcast, so
the forward duty moves around with the source.

:class:`BroadcastWorkload` runs a stream of broadcasts from random
sources over one deployment and aggregates per-node forwarding load,
Jain's fairness index over that load, total transmissions, and latency.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..algorithms.base import BroadcastProtocol
from ..graph.topology import Topology
from ..metrics.stats import jain_fairness_index, mean, percentile
from ..sim.engine import SimulationEnvironment, run_broadcast

__all__ = ["WorkloadResult", "BroadcastWorkload", "workload_seed"]

#: Monotone sequence distinguishing same-process default-seeded runs.
_RUN_SEQUENCE = itertools.count()


def workload_seed(sequence: int) -> int:
    """The documented default-RNG seed of one :meth:`BroadcastWorkload.run`.

    ``sha256("BroadcastWorkload|{sequence}")`` truncated to 64 bits —
    the same session-seed derivation
    :func:`repro.sim.engine.session_seed` uses, under a workload-specific
    tag so workload source draws never correlate with engine backoff
    streams.  A shared fixed default (the old ``Random(0)``) replayed the
    identical source sequence for every run in a process, silently
    correlating "independent" workloads; pass an explicit ``rng`` for
    cross-process reproducibility.
    """
    digest = hashlib.sha256(f"BroadcastWorkload|{sequence}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class WorkloadResult:
    """Aggregates over one workload run."""

    broadcasts: int
    #: Forwarding load per node: how many broadcasts it forwarded.
    load: Dict[int, int]
    #: Total transmissions across the stream.
    total_transmissions: int
    #: Per-broadcast completion times.
    latencies: List[float] = field(default_factory=list)

    def fairness(self) -> float:
        """Jain's index over the per-node forwarding load."""
        return jain_fairness_index(list(self.load.values()))

    def mean_latency(self) -> float:
        """Average broadcast completion time."""
        return mean(self.latencies)

    def latency_p95(self) -> float:
        """95th-percentile broadcast completion time (tail SLO)."""
        return percentile(self.latencies, 95.0)

    def latency_p99(self) -> float:
        """99th-percentile broadcast completion time (tail SLO)."""
        return percentile(self.latencies, 99.0)

    def max_load(self) -> int:
        """The busiest node's forward count (battery bottleneck)."""
        return max(self.load.values())

    def summary(self) -> Dict[str, float]:
        """Headline aggregates, including the tail-latency percentiles."""
        return {
            "broadcasts": float(self.broadcasts),
            "total_transmissions": float(self.total_transmissions),
            "fairness": self.fairness(),
            "max_load": float(self.max_load()),
            "mean_latency": self.mean_latency(),
            "latency_p95": self.latency_p95(),
            "latency_p99": self.latency_p99(),
        }


class BroadcastWorkload:
    """A stream of broadcasts from random sources over one deployment.

    Parameters
    ----------
    graph:
        The deployment.
    protocol_factory:
        Builds a fresh protocol per broadcast (dynamic protocols keep no
        cross-broadcast state; static ones recompute the same sets, so a
        factory models both honestly).
    env:
        Optional pre-built environment (to share view caches).
    """

    def __init__(
        self,
        graph: Topology,
        protocol_factory: Callable[[], BroadcastProtocol],
        env: Optional[SimulationEnvironment] = None,
    ) -> None:
        self.graph = graph
        self.protocol_factory = protocol_factory
        self.env = env or SimulationEnvironment(graph)

    def run(
        self,
        broadcasts: int,
        rng: Optional[random.Random] = None,
        require_coverage: bool = True,
        scheme_factory=None,
    ) -> WorkloadResult:
        """Run ``broadcasts`` sessions from uniformly random sources.

        ``scheme_factory(epoch) -> PriorityScheme`` switches the priority
        scheme per broadcast (e.g. ``RandomEpochPriority(epoch)``), which
        rotates the forward duty across nodes for energy fairness.
        """
        if broadcasts < 1:
            raise ValueError(f"broadcasts must be positive, got {broadcasts}")
        rng = rng or random.Random(workload_seed(next(_RUN_SEQUENCE)))
        load: Dict[int, int] = {node: 0 for node in self.graph.nodes()}
        total = 0
        latencies: List[float] = []
        protocol = self.protocol_factory()
        protocol.prepare(self.env)
        for index in range(broadcasts):
            source = rng.choice(self.graph.nodes())
            env = self.env
            if scheme_factory is not None:
                env = self.env.with_scheme(scheme_factory(index))
                protocol = self.protocol_factory()
                protocol.prepare(env)
            # Per-broadcast sessions go through the service path; the
            # single-message byte-identity contract keeps the stream's
            # transmissions and latencies identical to the legacy engine.
            outcome = run_broadcast(
                self.graph,
                protocol,
                source,
                rng=random.Random(rng.getrandbits(32)),
                env=env,
            )
            if require_coverage and len(outcome.delivered) != self.graph.node_count():
                raise AssertionError(
                    f"broadcast {index} from {source} failed coverage"
                )
            for node in outcome.forward_nodes:
                load[node] += 1
            total += outcome.transmissions
            latencies.append(outcome.completion_time)
        return WorkloadResult(
            broadcasts=broadcasts,
            load=load,
            total_transmissions=total,
            latencies=latencies,
        )
