"""Experiment harness: specs, runner, and reports for every paper exhibit."""

from .config import PAPER_NS, FigureSpec, PanelSpec, RunSettings, SeriesSpec
from .figures import (
    FIGURE_BUILDERS,
    fig10_timing,
    fig11_selection,
    fig12_space,
    fig13_priority,
    fig14_static,
    fig15_first_receipt,
    fig16_backoff,
)
from .report import (
    Fig9Result,
    format_fig9,
    format_overhead_comparison,
    format_table1,
    run_and_format_figure,
    run_fig9_sample,
    run_overhead_comparison,
)
from .runner import (
    CoverageViolation,
    MobilityStep,
    measure_point,
    point_seed,
    run_figure,
    run_mobility_sweep,
    run_panel,
    run_trace_sweep,
)
from .sharded import (
    ShardedStep,
    run_sharded_mobility_sweep,
    run_sharded_trace,
)
from .parallel import PointFailure, run_figure_parallel, run_panel_parallel
from .traffic import (
    TrafficPointFailure,
    TrafficSweepConfig,
    run_traffic_sweep,
    traffic_point_seed,
)
from .overhead import (
    MeasuredOverhead,
    OverheadPoint,
    crossover_broadcasts,
    measure_overhead,
    measure_overhead_instrumented,
)
from .workload import BroadcastWorkload, WorkloadResult

__all__ = [
    "PAPER_NS",
    "FigureSpec",
    "PanelSpec",
    "RunSettings",
    "SeriesSpec",
    "FIGURE_BUILDERS",
    "fig10_timing",
    "fig11_selection",
    "fig12_space",
    "fig13_priority",
    "fig14_static",
    "fig15_first_receipt",
    "fig16_backoff",
    "Fig9Result",
    "format_fig9",
    "format_table1",
    "format_overhead_comparison",
    "run_and_format_figure",
    "run_fig9_sample",
    "run_overhead_comparison",
    "MeasuredOverhead",
    "OverheadPoint",
    "crossover_broadcasts",
    "measure_overhead",
    "measure_overhead_instrumented",
    "BroadcastWorkload",
    "WorkloadResult",
    "CoverageViolation",
    "MobilityStep",
    "measure_point",
    "point_seed",
    "run_figure",
    "run_mobility_sweep",
    "run_panel",
    "run_trace_sweep",
    "ShardedStep",
    "run_sharded_mobility_sweep",
    "run_sharded_trace",
    "PointFailure",
    "run_figure_parallel",
    "run_panel_parallel",
    "TrafficPointFailure",
    "TrafficSweepConfig",
    "run_traffic_sweep",
    "traffic_point_seed",
]
