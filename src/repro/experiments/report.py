"""Report generation: Table 1, the Figure 9 sample network, and figure runs.

These are the entry points the CLI and benchmarks call: each returns the
formatted text the paper's corresponding exhibit would contain.  The
overhead comparison (:func:`run_overhead_comparison` /
:func:`format_overhead_comparison`) renders measured instrumentation
counts next to the analytical cost model of
:mod:`repro.experiments.overhead`, validating the model against the
simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import Timing
from ..algorithms.generic import GenericSelfPruning, GenericStatic
from ..algorithms.registry import table1_rows
from ..graph.generators import random_connected_network
from ..graph.unit_disk import UnitDiskGraph
from ..metrics.results import ResultTable, format_table
from ..sim.engine import BroadcastSession, SimulationEnvironment
from ..core.priority import IdPriority
from ..viz.ascii_plot import ascii_chart
from ..viz.network_svg import network_svg
from .config import FigureSpec, RunSettings
from .overhead import MeasuredOverhead, measure_overhead_instrumented
from .runner import run_figure

__all__ = [
    "format_table1",
    "Fig9Result",
    "run_fig9_sample",
    "format_fig9",
    "run_and_format_figure",
    "run_overhead_comparison",
    "format_overhead_comparison",
]


def format_table1() -> str:
    """The paper's Table 1 classification as aligned text."""
    rows = table1_rows()
    header = ("Category", "Self-pruning", "Neighbor-designating")
    all_rows = [header, *rows]
    widths = [
        max(len(str(row[col])) for row in all_rows) for col in range(3)
    ]
    lines = ["Table 1: existing distributed broadcast algorithms", ""]
    for index, row in enumerate(all_rows):
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
        if index == 0:
            lines.append("-" * (sum(widths) + 4))
    return "\n".join(lines)


@dataclass
class Fig9Result:
    """The Figure 9 sample run: one network, six forward node sets."""

    network: UnitDiskGraph
    source: int
    #: ``(hops, timing label) -> forward node set``.
    forward_sets: Dict[Tuple[int, str], frozenset]

    def counts(self) -> Dict[Tuple[int, str], int]:
        """Forward-node counts per ``(hops, timing)`` combination."""
        return {key: len(value) for key, value in self.forward_sets.items()}

    def svg(self, hops: int, label: str) -> str:
        """A Figure-9-style SVG for one of the six forward sets."""
        forward = self.forward_sets[(hops, label)]
        return network_svg(
            self.network,
            forward_nodes=forward,
            source=self.source,
            title=f"Figure 9 sample: {label}, {hops}-hop "
            f"({len(forward)} forward nodes)",
        )


def run_fig9_sample(
    n: int = 100,
    degree: float = 6.0,
    seed: int = 9,
) -> Fig9Result:
    """Reproduce Figure 9: one 100-node sample, three timings, two radii.

    The paper reports forward-node counts for the static, first-receipt,
    and first-receipt-with-backoff generic algorithms at 2- and 3-hop
    information (49/45/41 and 46/42/36 on its sample network).
    """
    rng = random.Random(seed)
    network = random_connected_network(n, degree, rng)
    source = rng.choice(network.topology.nodes())
    env = SimulationEnvironment(network.topology, IdPriority())
    timings = [
        ("static", None),
        ("FR", Timing.FIRST_RECEIPT),
        ("FRB", Timing.FIRST_RECEIPT_BACKOFF),
    ]
    forward_sets: Dict[Tuple[int, str], frozenset] = {}
    for hops in (2, 3):
        for label, timing in timings:
            if timing is None:
                protocol = GenericStatic(hops=hops)
            else:
                protocol = GenericSelfPruning(timing, hops=hops)
            protocol.prepare(env)
            session = BroadcastSession(
                env, protocol, source, rng=random.Random(seed + hops),
                _deprecation_warning=False,
            )
            outcome = session.run()
            forward_sets[(hops, label)] = frozenset(outcome.forward_nodes)
    return Fig9Result(network=network, source=source, forward_sets=forward_sets)


def format_fig9(result: Fig9Result) -> str:
    """Figure 9 counts as text (paper: 49/45/41 and 46/42/36)."""
    lines = [
        "Figure 9: broadcasting on a sample ad hoc network of "
        f"{result.network.node_count} nodes (source {result.source})",
        "",
    ]
    for hops in (2, 3):
        counts = [
            f"{label}={len(result.forward_sets[(hops, label)])}"
            for label in ("static", "FR", "FRB")
        ]
        lines.append(f"{hops}-hop information: " + ", ".join(counts))
    return "\n".join(lines)


def run_overhead_comparison(
    hops_values: Sequence[int] = (2, 3),
    scheme_names: Sequence[str] = ("id",),
    n: int = 60,
    degree: float = 6.0,
    trials: int = 15,
    seed: int = 97,
) -> List[MeasuredOverhead]:
    """Measure every (k, scheme) combination with instrumentation on."""
    return [
        measure_overhead_instrumented(
            hops, scheme_name, n=n, degree=degree, trials=trials, seed=seed
        )
        for scheme_name in scheme_names
        for hops in hops_values
    ]


def format_overhead_comparison(measured: Sequence[MeasuredOverhead]) -> str:
    """Measured instrumentation counts next to the analytical cost model.

    One row per configuration: the model's hello term
    ``trials * n * (k + extra_rounds)`` against the hello beacons the
    simulator actually emitted, and the model's mean-forward term against
    the mean transmissions the counters recorded.  Agreement validates
    :mod:`repro.experiments.overhead`'s analytical model end to end.
    """
    header = (
        "k",
        "scheme",
        "hello (model)",
        "hello (measured)",
        "fwd/bcast (model)",
        "tx/bcast (measured)",
        "match",
    )
    rows: List[Tuple[str, ...]] = [header]
    for item in measured:
        point = item.point
        tx_match = (
            item.hello_matches
            and abs(item.measured_transmissions - point.mean_forwards) < 1e-9
        )
        rows.append(
            (
                str(point.hops),
                point.scheme_name,
                str(item.analytical_hello_messages),
                str(item.measured_hello_messages),
                f"{point.mean_forwards:.2f}",
                f"{item.measured_transmissions:.2f}",
                "yes" if tx_match else "NO",
            )
        )
    widths = [
        max(len(row[col]) for row in rows) for col in range(len(header))
    ]
    lines = [
        "Control overhead: analytical model vs instrumentation counters",
        "",
    ]
    for index, row in enumerate(rows):
        line = "  ".join(
            cell.rjust(width) for cell, width in zip(row, widths)
        )
        lines.append(line)
        if index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def run_and_format_figure(
    figure: FigureSpec,
    settings: Optional[RunSettings] = None,
    charts: bool = True,
    progress=None,
) -> str:
    """Run a figure spec and render all panels as tables (plus charts)."""
    tables = run_figure(figure, settings, progress)
    sections: List[str] = [f"{figure.figure_id}: {figure.description}", ""]
    for table in tables:
        sections.append(format_table(table))
        if charts:
            sections.append("")
            sections.append(ascii_chart(table))
        sections.append("")
    return "\n".join(sections)
