"""Control overhead: the total-cost model behind "cost-effectiveness".

Section 7 repeatedly weighs forward-node savings against the cost of the
information they need: "considering the cost in gathering neighborhood
information, algorithms based on 4-, 5-hop, or global information are not
cost-effective compared with the ones based on 2- or 3-hop information",
and NCR "has the highest maintenance cost".  This module makes the trade
explicit with the natural message-count model:

* each hello period, every node beacons once per exchange round; k-hop
  topology needs ``k`` rounds and the priority scheme adds its
  ``extra_rounds`` (Definition 2 and Section 4.4's cost accounting);
* each broadcast costs its forward-node transmissions.

Over one hello period carrying ``B`` broadcasts, the total message count
is ``n * (k + extra_rounds) + B * forwards(k, scheme)``.  Few broadcasts
per period favour cheap views; many favour expensive, well-pruned ones —
the crossover is the quantity the paper argues about qualitatively.

:func:`measure_overhead_instrumented` closes the loop on the analytical
model: it re-runs the same trials with instrumentation counters on and
*simulates* the hello rounds message by message, so the table the report
module renders puts measured hello beacons and measured transmissions
next to the model's ``n * (k + extra_rounds)`` and mean-forward terms.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import Timing
from ..algorithms.generic import GenericSelfPruning
from ..core.priority import PriorityScheme, scheme_by_name
from ..graph.generators import random_connected_network
from ..instrument import collecting
from ..sim.engine import BroadcastSession, SimulationEnvironment
from ..sim.hello import run_hello_rounds

__all__ = [
    "OverheadPoint",
    "MeasuredOverhead",
    "measure_overhead",
    "measure_overhead_instrumented",
    "total_cost",
    "crossover_broadcasts",
]


@dataclass(frozen=True)
class OverheadPoint:
    """One configuration's measured cost ingredients."""

    hops: int
    scheme_name: str
    #: Hello rounds per period: k for topology + the scheme's extra.
    hello_rounds: int
    #: Mean forward nodes per broadcast.
    mean_forwards: float
    #: Deployment size (hello messages per round = n).
    n: int

    def total_cost(self, broadcasts_per_period: float) -> float:
        """Messages per hello period at the given broadcast rate."""
        hello = self.n * self.hello_rounds
        return hello + broadcasts_per_period * self.mean_forwards


def measure_overhead(
    hops: int,
    scheme_name: str,
    n: int = 60,
    degree: float = 6.0,
    trials: int = 15,
    seed: int = 97,
) -> OverheadPoint:
    """Measure one (k, scheme) configuration's cost ingredients."""
    scheme = scheme_by_name(scheme_name)
    rng = random.Random(seed)
    forwards: List[float] = []
    for trial in range(trials):
        net = random_connected_network(n, degree, rng)
        env = SimulationEnvironment(net.topology, scheme)
        protocol = GenericSelfPruning(Timing.FIRST_RECEIPT, hops=hops)
        protocol.prepare(env)
        outcome = BroadcastSession(
            env, protocol, rng.choice(net.topology.nodes()),
            rng=random.Random(trial),
            _deprecation_warning=False,
        ).run()
        if len(outcome.delivered) != n:
            raise AssertionError("broadcast failed coverage")
        forwards.append(outcome.forward_count)
    return OverheadPoint(
        hops=hops,
        scheme_name=scheme_name,
        hello_rounds=hops + scheme.extra_rounds,
        mean_forwards=statistics.mean(forwards),
        n=n,
    )


@dataclass(frozen=True)
class MeasuredOverhead:
    """One configuration's analytical cost model next to simulated counts.

    ``point`` carries the analytical ingredients; the measured fields come
    from instrumentation counters over the same trials — hello rounds are
    actually simulated beacon by beacon and broadcast transmissions are
    counted as emitted, so any disagreement with the model is a bug in
    one of them.
    """

    point: OverheadPoint
    #: Trials the measured totals aggregate over.
    trials: int
    #: Hello beacons actually simulated across all trials.
    measured_hello_messages: int
    #: The model's hello term for the same trials:
    #: ``trials * n * (k + extra_rounds)``.
    analytical_hello_messages: int
    #: Mean broadcast transmissions per trial, from counters.
    measured_transmissions: float
    #: The full merged counter payload for the configuration.
    counters: Dict[str, int]

    @property
    def hello_matches(self) -> bool:
        """Whether simulated hello beacons equal the analytical term."""
        return self.measured_hello_messages == self.analytical_hello_messages


def measure_overhead_instrumented(
    hops: int,
    scheme_name: str,
    n: int = 60,
    degree: float = 6.0,
    trials: int = 15,
    seed: int = 97,
) -> MeasuredOverhead:
    """Measure one (k, scheme) configuration with counters on.

    Runs the same deployments, sources, and broadcasts as
    :func:`measure_overhead` (identical RNG draws, so ``point`` is
    identical), additionally simulating one hello period of
    ``k + extra_rounds`` beacon rounds per deployment, all inside a
    :func:`repro.instrument.collecting` scope.
    """
    scheme = scheme_by_name(scheme_name)
    rng = random.Random(seed)
    forwards: List[float] = []
    with collecting() as counters:
        for trial in range(trials):
            net = random_connected_network(n, degree, rng)
            run_hello_rounds(net.topology, hops + scheme.extra_rounds)
            env = SimulationEnvironment(net.topology, scheme)
            protocol = GenericSelfPruning(Timing.FIRST_RECEIPT, hops=hops)
            protocol.prepare(env)
            outcome = BroadcastSession(
                env, protocol, rng.choice(net.topology.nodes()),
                rng=random.Random(trial),
                _deprecation_warning=False,
            ).run()
            if len(outcome.delivered) != n:
                raise AssertionError("broadcast failed coverage")
            forwards.append(outcome.forward_count)
    point = OverheadPoint(
        hops=hops,
        scheme_name=scheme_name,
        hello_rounds=hops + scheme.extra_rounds,
        mean_forwards=statistics.mean(forwards),
        n=n,
    )
    return MeasuredOverhead(
        point=point,
        trials=trials,
        measured_hello_messages=counters.hello_messages,
        analytical_hello_messages=trials * n * point.hello_rounds,
        measured_transmissions=counters.transmissions / trials,
        counters=counters.as_dict(),
    )


def total_cost(point: OverheadPoint, broadcasts_per_period: float) -> float:
    """Convenience alias for :meth:`OverheadPoint.total_cost`."""
    return point.total_cost(broadcasts_per_period)


def crossover_broadcasts(
    cheap: OverheadPoint, rich: OverheadPoint
) -> Optional[float]:
    """Broadcast rate at which the richer configuration starts to pay off.

    Solves ``cheap.total_cost(B) == rich.total_cost(B)``; ``None`` when
    the richer configuration never catches up (it must save forwards to
    amortise its extra hello rounds).
    """
    hello_gap = (rich.n * rich.hello_rounds) - (cheap.n * cheap.hello_rounds)
    savings = cheap.mean_forwards - rich.mean_forwards
    if savings <= 0:
        return None
    if hello_gap <= 0:
        return 0.0
    return hello_gap / savings
