"""Sharded mobility driver: parallel dirty-region re-decides over one
continuously running network.

The serial incremental sweep (:func:`repro.experiments.runner.
run_mobility_sweep` with ``incremental=True``) replays a mobile trace
through one mutable :class:`Topology` and re-decides only the dirty ball
of radius ``k + scheme.metric_locality`` per step.  This module
parallelises that *within* the trace:

* the deployment is partitioned into spatial shards
  (:class:`~repro.graph.sharding.ShardGrid` — contiguous cell blocks
  with a ``k + metric_locality``-cell halo);
* every worker process holds a **full topology replica**, forked from
  the base snapshot and kept in lockstep by applying every step's
  ``edge_flips`` through its own :meth:`Topology.apply_delta` — so any
  worker's re-decision sees the true global graph, and shard geometry
  governs only *which* worker re-decides *what*;
* each step's dirty nodes are routed to every shard whose core + halo
  contains them (pinned from the base positions).  Dirty balls that
  cross a shard boundary are therefore re-decided by every touching
  shard — the **cross-shard handoff** — and the merge keeps the entry
  reported by the lowest routed shard id (the owner rule), which makes
  the merged forward set deterministic by construction;
* the expensive part — coverage-condition evaluation over extracted
  k-hop views — is what actually fans out; delta application and
  metric-table rebuilds are O(flips)/O(n) bookkeeping by comparison.

The determinism contract: for any shard grid and any worker count, the
per-step forward sets are **byte-identical** to the single-process
incremental path, because (a) the routed set equals the serial stale
set exactly (same ``dirty_at`` radius, same first-step/flip-free/
fallback cases), (b) every worker evaluates on an identical replica, so
all copies of a handoff re-decision agree, and (c) the owner rule picks
the canonical copy without looking at values.  ``jobs=1`` (or a
platform without ``fork``) runs the same routing in-process.

Workers communicate over pipes with task→worker affinity (shard ``s``
lives on worker ``s % jobs`` for the whole sweep) — a plain task pool
would lose the warm replica between steps.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.priority import IdPriority, PriorityScheme
from ..graph.fliptrace import FlipTrace
from ..graph.geometry import Point
from ..graph.mobility import RandomWaypointModel, SnapshotDelta
from ..graph.sharding import ShardGrid
from ..graph.topology import Topology
from ..graph.unit_disk import build_unit_disk_graph
from ..instrument import InstrumentationCounters, collecting
from ..instrument import _STACK as _COUNTER_STACK
from .runner import _forward_decision

__all__ = [
    "ShardedStep",
    "run_sharded_mobility_sweep",
    "run_sharded_trace",
]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class ShardedStep:
    """One sharded mobility step's merged forward-set snapshot.

    ``forward`` and ``redecided`` are byte-identical to the serial
    incremental path's :class:`~repro.experiments.runner.MobilityStep`
    fields; the shard-specific fields expose the routing work:
    ``shard_redecides`` counts re-decisions summed over shards (handoff
    copies included), ``handoff_redecides`` the copies beyond each
    node's first routed shard, and ``boundary_flips`` the flips whose
    endpoints' routed shard sets span more than one shard.
    """

    step: int
    time: float
    forward: Tuple[int, ...]
    redecided: int
    shard_redecides: int
    handoff_redecides: int
    boundary_flips: int
    added_edges: int
    removed_edges: int


class _ShardWorker:
    """One worker's replica state: a full topology kept in lockstep.

    Lives either inside a forked child process or in-process (the
    ``jobs=1`` / no-``fork`` fallback).  The replica is private to the
    worker — DET010 flags any outside mutation of it — and is advanced
    exclusively through :meth:`apply_step`, which mirrors the serial
    sweep: apply this step's flips, drop the metric table if anything
    flipped, then re-decide exactly the routed nodes.
    """

    def __init__(
        self, topology: Topology, scheme: PriorityScheme, k: int
    ) -> None:
        self._replica = topology
        self._scheme = scheme
        self._k = k
        self._shard_metrics: Optional[Dict[int, Tuple[float, ...]]] = None

    def apply_step(
        self,
        added: Tuple[Edge, ...],
        removed: Tuple[Edge, ...],
        nodes: Tuple[int, ...],
    ) -> List[Tuple[int, bool]]:
        """Advance the replica one step and re-decide ``nodes``."""
        self._sync_replica(added, removed)
        return self._redecide(nodes)

    def _sync_replica(
        self, added: Tuple[Edge, ...], removed: Tuple[Edge, ...]
    ) -> None:
        if added or removed:
            self._replica.apply_delta(
                added_edges=list(added), removed_edges=list(removed)
            )
            self._shard_metrics = None

    def _redecide(self, nodes: Tuple[int, ...]) -> List[Tuple[int, bool]]:
        if not nodes:
            return []
        if self._shard_metrics is None:
            self._shard_metrics = self._scheme.metrics(self._replica)
        return [
            (
                node,
                _forward_decision(
                    self._replica, node, self._k, self._scheme,
                    self._shard_metrics,
                ),
            )
            for node in nodes
        ]


def _shard_worker_main(conn, topology, scheme, k) -> None:
    """Child-process loop: receive steps, answer with decisions.

    Counters collected during the step travel back as a plain dict and
    are merged into the parent's active scope, so instrumented sharded
    sweeps aggregate to the same totals as serial ones.
    """
    worker = _ShardWorker(topology, scheme, k)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        step, added, removed, nodes = message
        with collecting() as counters:
            decided = worker.apply_step(added, removed, nodes)
        conn.send((step, decided, counters.as_dict()))
    conn.close()


class _ForkShardPool:
    """Persistent fork-spawned workers with shard→worker affinity."""

    def __init__(
        self,
        context,
        topology: Topology,
        scheme: PriorityScheme,
        k: int,
        workers: int,
    ) -> None:
        self._procs = []
        self._conns = []
        for _index in range(workers):
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_shard_worker_main,
                args=(child_conn, topology, scheme, k),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    @property
    def workers(self) -> int:
        return len(self._conns)

    def step(
        self,
        step: int,
        added: Tuple[Edge, ...],
        removed: Tuple[Edge, ...],
        nodes_by_worker: Dict[int, Tuple[int, ...]],
    ):
        """Fan one step out to every worker and gather the decisions.

        Every worker receives the full flip lists (replicas advance in
        lockstep even when no dirty node routed to them); only the
        routed nodes differ per worker.  All sends complete before the
        first receive, so workers compute concurrently.
        """
        for index, conn in enumerate(self._conns):
            conn.send((step, added, removed, nodes_by_worker.get(index, ())))
        decided: Dict[int, Dict[int, bool]] = {}
        payloads: List[Dict[str, int]] = []
        for index, conn in enumerate(self._conns):
            try:
                got_step, entries, counters = conn.recv()
            except EOFError:
                raise RuntimeError(
                    f"shard worker {index} died at step {step} "
                    f"(exitcode={self._procs[index].exitcode})"
                ) from None
            if got_step != step:
                raise RuntimeError(
                    f"shard worker {index} answered step {got_step} "
                    f"while the driver was at step {step}"
                )
            decided[index] = dict(entries)
            payloads.append(counters)
        return decided, payloads

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)


class _InlineShardPool:
    """In-process fallback: one replica decides every routed node.

    Used for ``jobs=1`` and on platforms without the ``fork`` start
    method.  Decisions are computed once over the deduplicated union of
    all routed nodes and served under every worker index, so the
    driver's merge logic is identical either way.
    """

    def __init__(
        self, topology: Topology, scheme: PriorityScheme, k: int
    ) -> None:
        self._worker = _ShardWorker(topology, scheme, k)

    @property
    def workers(self) -> int:
        return 1

    def step(
        self,
        step: int,
        added: Tuple[Edge, ...],
        removed: Tuple[Edge, ...],
        nodes_by_worker: Dict[int, Tuple[int, ...]],
    ):
        union: Dict[int, None] = {}
        for index in sorted(nodes_by_worker):
            for node in nodes_by_worker[index]:
                union[node] = None
        decided = dict(self._worker.apply_step(added, removed, tuple(union)))
        served = {index: decided for index in nodes_by_worker}
        return served, []

    def close(self) -> None:
        """Nothing to tear down in-process."""


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` on platforms
    without it (the driver then degrades to the in-process pool)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _open_pool(
    topology: Topology, scheme: PriorityScheme, k: int, workers: int
):
    context = _fork_context() if workers > 1 else None
    if context is None:
        return _InlineShardPool(topology, scheme, k)
    return _ForkShardPool(context, topology, scheme, k, workers)


def _sharded_sweep(
    base_positions: Dict[int, Point],
    radius: float,
    deltas: Iterator[SnapshotDelta],
    scheme: PriorityScheme,
    k: int,
    shards: Tuple[int, int],
    jobs: int,
) -> List[ShardedStep]:
    """The core driver: route, fan out, merge — one delta at a time."""
    locality = scheme.metric_locality
    dirty_radius = None if locality is None else k + locality
    grid = ShardGrid(
        base_positions,
        radius,
        shape=shards,
        halo_cells=k + (locality or 0),
    )
    assignment = grid.assign(base_positions)
    workers = max(1, min(jobs, grid.shard_count))
    replica = build_unit_disk_graph(base_positions, radius).topology
    pool = _open_pool(replica, scheme, k, workers)
    workers = pool.workers
    decisions: Dict[int, bool] = {}
    results: List[ShardedStep] = []
    try:
        for snap in deltas:
            graph = snap.graph.topology
            if not decisions:
                stale = list(graph.nodes())  # first step: all undecided
            elif snap.report is None:
                stale = []  # no link flipped; cached decisions stand
            elif dirty_radius is None or not snap.report.fast_path:
                stale = list(graph.nodes())
            else:
                stale = sorted(snap.report.dirty_at(dirty_radius))
            by_worker: Dict[int, List[int]] = {}
            owner_worker: Dict[int, int] = {}
            shard_redecides = 0
            handoff = 0
            for node in stale:
                sids = assignment.routed[node]
                shard_redecides += len(sids)
                handoff += len(sids) - 1
                # Owner rule: the lowest routed shard id wins; its worker
                # serves the canonical decision for this node.
                owner_worker[node] = sids[0] % workers
                routed_to = ()
                for sid in sids:
                    index = sid % workers
                    if index in routed_to:
                        continue  # shard co-located on an earlier worker
                    routed_to += (index,)
                    by_worker.setdefault(index, []).append(node)
            boundary = 0
            for edge in tuple(snap.added_edges) + tuple(snap.removed_edges):
                spanned = set(assignment.routed[edge[0]])
                spanned.update(assignment.routed[edge[1]])
                if len(spanned) > 1:
                    boundary += 1
            decided, payloads = pool.step(
                snap.step,
                tuple(snap.added_edges),
                tuple(snap.removed_edges),
                {index: tuple(nodes) for index, nodes in by_worker.items()},
            )
            for node in stale:
                decisions[node] = decided[owner_worker[node]][node]
            if _COUNTER_STACK:
                scope = _COUNTER_STACK[-1]
                scope.shard_redecides += shard_redecides
                scope.shard_handoff_redecides += handoff
                scope.shard_boundary_flips += boundary
                for payload in payloads:
                    scope.merge(InstrumentationCounters.from_dict(payload))
            results.append(
                ShardedStep(
                    step=snap.step,
                    time=snap.time,
                    forward=tuple(sorted(
                        node for node, flag in decisions.items() if flag
                    )),
                    redecided=len(stale),
                    shard_redecides=shard_redecides,
                    handoff_redecides=handoff,
                    boundary_flips=boundary,
                    added_edges=len(snap.added_edges),
                    removed_edges=len(snap.removed_edges),
                )
            )
    finally:
        pool.close()
    return results


def _extra_radii(scheme: PriorityScheme, k: int) -> Tuple[int, ...]:
    locality = scheme.metric_locality
    return () if locality is None else (k + locality,)


def run_sharded_mobility_sweep(
    model: RandomWaypointModel,
    steps: int,
    dt: float,
    scheme: Optional[PriorityScheme] = None,
    k: int = 2,
    shards: Tuple[int, int] = (2, 2),
    jobs: int = 1,
) -> List[ShardedStep]:
    """Sharded exact forward sets across a mobility trace.

    The sharded twin of :func:`~repro.experiments.runner.
    run_mobility_sweep` — same model, same per-step forward sets (the
    determinism contract in the module docstring), with the dirty-region
    re-decisions fanned out over ``jobs`` fork workers across a
    ``shards = (sx, sy)`` grid.  ``jobs`` is clamped to the shard count
    (an idle worker would own no shard); callers wanting core-count
    clamping do it at the CLI/benchmark layer.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    scheme = scheme or IdPriority()
    base_positions = dict(model.positions())
    return _sharded_sweep(
        base_positions,
        model.radius,
        model.snapshot_deltas(dt, steps, extra_radii=_extra_radii(scheme, k)),
        scheme,
        k,
        shards,
        jobs,
    )


def run_sharded_trace(
    trace: FlipTrace,
    scheme: Optional[PriorityScheme] = None,
    k: int = 2,
    shards: Tuple[int, int] = (2, 2),
    jobs: int = 1,
) -> List[ShardedStep]:
    """Sharded sweep over a recorded :class:`FlipTrace`.

    Replays the trace's flip stream instead of a live model, so the
    identical workload can A/B shard grids and worker counts (and be
    compared against :func:`~repro.experiments.runner.run_trace_sweep`,
    the serial incremental replay).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    scheme = scheme or IdPriority()
    return _sharded_sweep(
        trace.positions,
        trace.radius,
        trace.replay(extra_radii=_extra_radii(scheme, k)),
        scheme,
        k,
        shards,
        jobs,
    )
