"""Sharded mobility driver: parallel dirty-region re-decides over one
continuously running network, on O(core + halo) partial replicas.

The serial incremental sweep (:func:`repro.experiments.runner.
run_mobility_sweep` with ``incremental=True``) replays a mobile trace
through one mutable :class:`Topology` and re-decides only the dirty ball
of radius ``k + scheme.metric_locality`` per step.  This module
parallelises that *within* the trace:

* the deployment is partitioned into spatial shards
  (:class:`~repro.graph.sharding.ShardGrid` — contiguous cell blocks
  with a ``k + metric_locality``-cell routing halo);
* every shard owns a :class:`~repro.graph.sharding.ShardSubgraph` — a
  **partial replica** holding only the induced subgraph on the shard's
  *universe* (core + a wider halo of ``routing halo + decision radius
  + 1`` cells), under its own stable local
  :class:`~repro.graph.nodeindex.NodeIndex`.  Workers host the shards
  mapped to them by the pinned ``sid % workers`` affinity, so per-shard
  replica state is identical at any worker count;
* the parent routes each step's link flips to exactly the shards whose
  universe contains **both** endpoints (an edge with an endpoint
  outside the universe is not part of the induced subgraph), applied
  via :meth:`Topology.apply_delta` on the partial replica — lockstep
  apply-everything replication is gone;
* each stale node is **evaluated exactly once**: the parent checks, per
  routed shard, whether the node's decision ball of radius ``R = k +
  max(metric_locality, metric_value_radius)`` lies inside that shard's
  universe (an exact ``k_hop_mask`` containment test on the live
  graph), ships the node to the lowest *eligible* routed shard, and
  decides the rare node with no eligible shard itself on the global
  graph.  ``shard_redecides``/``handoff_redecides`` report the
  eligible-copy routing volume — the same statistic the full-replica
  engine measured by actually re-deciding every copy;
* the decision is exact on the partial replica because everything a
  forward decision reads lives inside the universe: the k-hop view
  needs ``ball(v, k)``, and each visible node ``u``'s metric value
  needs the edges inside ``ball(u, metric_value_radius)`` ⊆ ``ball(v,
  k + metric_value_radius)`` ⊆ ``ball(v, R)``.  Schemes whose values
  are not locally computable (``metric_value_radius is None``, e.g.
  the rank-ordered random-epoch draw) are rejected up front;
* **dynamic re-homing**: the parent tracks per-shard owned-stale load
  over a window; when the maximum shard load skews past
  ``rehome_factor`` times the mean, it re-splits the grid with
  per-axis dirty-weighted cell weights, extracts fresh subgraphs from
  the *current* topology, and ships them folded into the next step
  message (counted as ``shard_rehomes``; deterministic because the
  trigger depends only on the trace).

The determinism contract: for any shard grid, worker count, and
re-home schedule, the per-step forward sets are **byte-identical** to
the single-process incremental path, because (a) the stale set equals
the serial stale set exactly, (b) every stale node is decided exactly
once, on a replica equal to the induced current graph over a universe
containing its whole decision ball (or by the parent on the global
graph), and (c) the lowest-eligible-shard owner rule picks the
evaluator without looking at values.  ``jobs=1`` (or a platform
without ``fork``) hosts every shard replica in-process — the
deduplicated short-circuit: owner-only shipping already evaluates each
node once, with no pipe traffic.

Workers communicate over pipes with shard→worker affinity (shard ``s``
lives on worker ``s % workers`` for the whole sweep) — a plain task
pool would lose the warm replicas between steps.  ``clamp=True``
additionally caps workers at ``os.cpu_count()`` so an oversubscribed
box degrades to the in-process pool instead of paying fork/pipe
overhead for fake parallelism.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.priority import IdPriority, PriorityScheme
from ..graph.fliptrace import FlipTrace
from ..graph.geometry import Point
from ..graph.mobility import RandomWaypointModel, SnapshotDelta
from ..graph.sharding import ShardGrid, ShardSubgraph
from ..graph.unit_disk import build_unit_disk_graph
from ..instrument import InstrumentationCounters, collecting
from ..instrument import _STACK as _COUNTER_STACK
from .runner import _forward_decision

__all__ = [
    "ShardedStep",
    "run_sharded_mobility_sweep",
    "run_sharded_trace",
]

Edge = Tuple[int, int]

#: Per-shard step payload: ``(added, removed, stale_local)`` — the flips
#: routed to the shard's universe (global ids) and the stale nodes it
#: owns this step, as local bit positions.
_ShardPayload = Tuple[Tuple[Edge, ...], Tuple[Edge, ...], Tuple[int, ...]]


@dataclass(frozen=True)
class ShardedStep:
    """One sharded mobility step's merged forward-set snapshot.

    ``forward`` and ``redecided`` are byte-identical to the serial
    incremental path's :class:`~repro.experiments.runner.MobilityStep`
    fields; the shard-specific fields expose the routing work:
    ``shard_redecides`` counts eligible re-decision copies summed over
    shards, ``handoff_redecides`` the copies beyond each node's first
    eligible shard, ``boundary_flips`` the flips whose endpoints'
    routed shard sets span more than one shard, ``parent_redecides``
    the nodes no shard was eligible for (decided by the parent on the
    global graph), and ``rehomed`` whether this step's load window
    triggered a shard re-partition.
    """

    step: int
    time: float
    forward: Tuple[int, ...]
    redecided: int
    shard_redecides: int
    handoff_redecides: int
    boundary_flips: int
    added_edges: int
    removed_edges: int
    parent_redecides: int = 0
    rehomed: bool = False


def _route_flips(
    universes: Dict[int, Set[int]],
    added: Tuple[Edge, ...],
    removed: Tuple[Edge, ...],
) -> Dict[int, Tuple[Tuple[Edge, ...], Tuple[Edge, ...]]]:
    """Route flips to the shards whose universe holds both endpoints.

    Pure function of the universe tables and the flip lists: an edge
    with an endpoint outside a shard's universe does not exist in that
    shard's induced subgraph, so it is never shipped there.
    """
    routed: Dict[int, Tuple[Tuple[Edge, ...], Tuple[Edge, ...]]] = {}
    for sid in sorted(universes):
        members = universes[sid]
        mine_added = tuple(
            (u, v) for u, v in added if u in members and v in members
        )
        mine_removed = tuple(
            (u, v) for u, v in removed if u in members and v in members
        )
        if mine_added or mine_removed:
            routed[sid] = (mine_added, mine_removed)
    return routed


class _ShardReplica:
    """One shard's partial replica plus its decision state.

    The replica (a :class:`~repro.graph.sharding.ShardSubgraph`) and the
    memoised metric table are private — DET010 flags any outside
    mutation — and advance exclusively through :meth:`apply_step`,
    which mirrors the serial sweep: apply this step's routed flips,
    drop the metric table if anything flipped, then re-decide exactly
    the owned stale nodes on the induced subgraph.
    """

    def __init__(
        self, subgraph: ShardSubgraph, scheme: PriorityScheme, k: int
    ) -> None:
        self._replica = subgraph
        self._scheme = scheme
        self._k = k
        self._shard_metrics: Optional[Dict[int, Tuple[float, ...]]] = None

    def __len__(self) -> int:
        return len(self._replica)

    def _install(self, subgraph: ShardSubgraph) -> None:
        """Adopt a freshly extracted replica (re-home delivery)."""
        self._replica = subgraph
        self._shard_metrics = None

    def apply_step(
        self,
        added: Tuple[Edge, ...],
        removed: Tuple[Edge, ...],
        stale_local: Tuple[int, ...],
    ) -> List[Tuple[int, bool]]:
        """Advance the replica one step and re-decide the owned nodes.

        Returns ``(global_id, forward)`` pairs — the local→global
        translation happens here, so the merge layer never sees a
        local index.
        """
        self._sync_replica(added, removed)
        return self._redecide(stale_local)

    def _sync_replica(
        self, added: Tuple[Edge, ...], removed: Tuple[Edge, ...]
    ) -> None:
        if added or removed:
            self._replica.apply_flips(added, removed)
            self._shard_metrics = None

    def _redecide(
        self, stale_local: Tuple[int, ...]
    ) -> List[Tuple[int, bool]]:
        if not stale_local:
            return []
        graph = self._replica.graph
        if self._shard_metrics is None:
            self._shard_metrics = self._scheme.metrics(graph)
        decided: List[Tuple[int, bool]] = []
        for position in stale_local:
            node = self._replica.to_global(position)
            decided.append(
                (
                    node,
                    _forward_decision(
                        graph, node, self._k, self._scheme,
                        self._shard_metrics,
                    ),
                )
            )
        return decided


class _ShardWorker:
    """The shard replicas resident on one worker, stepped in sid order.

    Lives either inside a forked child process or in-process (the
    ``workers=1`` / no-``fork`` fallback, which hosts *every* shard).
    """

    def __init__(
        self,
        subgraphs: Dict[int, ShardSubgraph],
        scheme: PriorityScheme,
        k: int,
    ) -> None:
        self._replicas: Dict[int, _ShardReplica] = {
            sid: _ShardReplica(subgraphs[sid], scheme, k)
            for sid in sorted(subgraphs)
        }

    def _rehome(self, replacements: Dict[int, ShardSubgraph]) -> None:
        for sid in sorted(replacements):
            self._replicas[sid]._install(replacements[sid])

    def apply_step(
        self,
        payloads: Dict[int, _ShardPayload],
        rehome: Optional[Dict[int, ShardSubgraph]],
    ) -> List[Tuple[int, bool]]:
        """Install any re-home, advance every replica, decide, report.

        Owner-only shipping guarantees the per-shard decision lists are
        disjoint, so concatenating them in sid order is a merge.
        """
        if rehome:
            self._rehome(rehome)
        decided: List[Tuple[int, bool]] = []
        for sid, replica in self._replicas.items():
            added, removed, stale_local = payloads.get(sid, ((), (), ()))
            decided.extend(replica.apply_step(added, removed, stale_local))
        if _COUNTER_STACK and self._replicas:
            peak = max(len(replica) for replica in self._replicas.values())
            scope = _COUNTER_STACK[-1]
            if peak > scope.replica_nodes_max:
                scope.replica_nodes_max = peak
        return decided


def _shard_worker_main(conn, subgraphs, scheme, k) -> None:
    """Child-process loop: receive steps, answer with decisions.

    Counters collected during the step travel back as a plain dict and
    are merged into the parent's active scope, so instrumented sharded
    sweeps aggregate to the same totals as serial ones.
    """
    worker = _ShardWorker(subgraphs, scheme, k)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        step, payloads, rehome = message
        with collecting() as counters:
            decided = worker.apply_step(payloads, rehome)
        conn.send((step, decided, counters.as_dict()))
    conn.close()


class _ForkShardPool:
    """Persistent fork-spawned workers with shard→worker affinity.

    Each child inherits its shards' subgraphs through ``fork`` (no
    pickling on the way in); only re-home replacements travel the pipe,
    in the compact :meth:`ShardSubgraph.__getstate__` form.
    """

    def __init__(
        self,
        context,
        subgraphs: Dict[int, ShardSubgraph],
        scheme: PriorityScheme,
        k: int,
        workers: int,
    ) -> None:
        self._procs = []
        self._conns = []
        for index in range(workers):
            mine = {
                sid: subgraph
                for sid, subgraph in subgraphs.items()
                if sid % workers == index
            }
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_shard_worker_main,
                args=(child_conn, mine, scheme, k),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    @property
    def workers(self) -> int:
        return len(self._conns)

    def step(
        self,
        step: int,
        payloads: Dict[int, _ShardPayload],
        rehome: Optional[Dict[int, ShardSubgraph]],
    ):
        """Fan one step out to every worker and gather the decisions.

        A worker receives only its own shards' payloads (and, on a
        re-home step, their fresh subgraphs).  All sends complete
        before the first receive, so workers compute concurrently.
        """
        workers = len(self._conns)
        for index, conn in enumerate(self._conns):
            mine = {
                sid: payload
                for sid, payload in payloads.items()
                if sid % workers == index
            }
            mine_rehome = None
            if rehome:
                mine_rehome = {
                    sid: subgraph
                    for sid, subgraph in rehome.items()
                    if sid % workers == index
                }
            conn.send((step, mine, mine_rehome))
        decided: Dict[int, bool] = {}
        counter_payloads: List[Dict[str, int]] = []
        for index, conn in enumerate(self._conns):
            try:
                got_step, entries, counters = conn.recv()
            except EOFError:
                raise RuntimeError(
                    f"shard worker {index} died at step {step} "
                    f"(exitcode={self._procs[index].exitcode})"
                ) from None
            if got_step != step:
                raise RuntimeError(
                    f"shard worker {index} answered step {got_step} "
                    f"while the driver was at step {step}"
                )
            decided.update(entries)
            counter_payloads.append(counters)
        return decided, counter_payloads

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=5)


class _InlineShardPool:
    """In-process fallback hosting every shard replica.

    Used for ``workers=1`` (including clamped runs) and on platforms
    without the ``fork`` start method.  Owner-only shipping is already
    the deduplicated short-circuit — each stale node is decided once —
    so the driver's merge logic is identical either way; counters land
    directly in the parent's active scope (no payload round-trip).
    """

    def __init__(
        self,
        subgraphs: Dict[int, ShardSubgraph],
        scheme: PriorityScheme,
        k: int,
    ) -> None:
        self._worker = _ShardWorker(subgraphs, scheme, k)

    @property
    def workers(self) -> int:
        return 1

    def step(
        self,
        step: int,
        payloads: Dict[int, _ShardPayload],
        rehome: Optional[Dict[int, ShardSubgraph]],
    ):
        decided = dict(self._worker.apply_step(payloads, rehome))
        return decided, []

    def close(self) -> None:
        """Nothing to tear down in-process."""


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` on platforms
    without it (the driver then degrades to the in-process pool)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _open_pool(
    subgraphs: Dict[int, ShardSubgraph],
    scheme: PriorityScheme,
    k: int,
    workers: int,
):
    context = _fork_context() if workers > 1 else None
    if context is None:
        return _InlineShardPool(subgraphs, scheme, k)
    return _ForkShardPool(context, subgraphs, scheme, k, workers)


def _universe_members(
    grid: ShardGrid,
    positions: Dict[int, Point],
    universe_halo: int,
) -> Dict[int, List[int]]:
    """Each shard's universe: nodes within ``universe_halo`` cells of
    its core, listed in ``positions`` insertion order."""
    members: Dict[int, List[int]] = {
        sid: [] for sid in range(grid.shard_count)
    }
    for node, p in positions.items():
        for sid in grid.touching(p, halo_cells=universe_halo):
            members[sid].append(node)
    return members


def _rebalanced_grid(
    grid: ShardGrid,
    positions: Dict[int, Point],
    radius: float,
    shape: Tuple[int, int],
    halo_cells: int,
    dirty_counts: Dict[int, int],
) -> ShardGrid:
    """The same grid geometry re-split around the observed load.

    Each node contributes ``1 + dirty_count`` (its load-window stale
    count) to its cell's per-axis weight, so the weighted splits pull
    shard boundaries toward the churn.  Deterministic: the weights are
    a pure function of the trace prefix.
    """
    x_extent, y_extent = grid.extents
    x_weights = [0.0] * x_extent
    y_weights = [0.0] * y_extent
    for node, p in positions.items():
        ox, oy = grid.offsets_of(p)
        weight = 1.0 + dirty_counts.get(node, 0)
        x_weights[ox] += weight
        y_weights[oy] += weight
    return ShardGrid(
        positions,
        radius,
        shape=shape,
        halo_cells=halo_cells,
        x_weights=x_weights,
        y_weights=y_weights,
    )


def _sharded_sweep(
    base_positions: Dict[int, Point],
    radius: float,
    deltas: Iterator[SnapshotDelta],
    scheme: PriorityScheme,
    k: int,
    shards: Tuple[int, int],
    jobs: int,
    clamp: bool,
    rehome_factor: Optional[float],
) -> List[ShardedStep]:
    """The core driver: route, fan out, merge — one delta at a time."""
    locality = scheme.metric_locality
    value_radius = scheme.metric_value_radius
    if value_radius is None:
        raise ValueError(
            f"scheme {scheme.name!r} has metric_value_radius=None: its "
            "metric values cannot be reproduced on a partial replica "
            "(use the serial incremental sweep instead)"
        )
    if rehome_factor is not None and rehome_factor < 1:
        raise ValueError(
            f"rehome_factor must be >= 1 or None, got {rehome_factor}"
        )
    dirty_radius = None if locality is None else k + locality
    route_halo = k + (locality or 0)
    decision_radius = k + max(locality or 0, value_radius)
    # One extra cell of slack over the exact cell-distance bound; the
    # per-node eligibility check below is exact, so the halo width only
    # tunes how often the parent must fall back, never correctness.
    universe_halo = route_halo + decision_radius + 1
    grid = ShardGrid(
        base_positions, radius, shape=shards, halo_cells=route_halo
    )
    assignment = grid.assign(base_positions)
    workers = max(1, min(jobs, grid.shard_count))
    if clamp:
        workers = max(1, min(workers, os.cpu_count() or 1))
    base_graph = build_unit_disk_graph(base_positions, radius).topology
    members = _universe_members(grid, base_positions, universe_halo)
    subgraphs = {
        sid: ShardSubgraph.extract(
            sid, base_graph, mine, positions=base_positions
        )
        for sid, mine in members.items()
    }
    universe_sets = {sid: set(mine) for sid, mine in members.items()}
    universe_masks: Dict[int, int] = {}
    pool = _open_pool(subgraphs, scheme, k, workers)
    decisions: Dict[int, bool] = {}
    parent_metrics: Optional[Dict[int, Tuple[float, ...]]] = None
    pending_rehome: Optional[Dict[int, ShardSubgraph]] = None
    window_loads = [0] * grid.shard_count
    window_total = 0
    dirty_counts: Dict[int, int] = {}
    seen_first = False
    results: List[ShardedStep] = []
    try:
        for snap in deltas:
            graph = snap.graph.topology
            added = tuple(snap.added_edges)
            removed = tuple(snap.removed_edges)
            if added or removed:
                parent_metrics = None
            if not universe_masks:
                # Masks live under the replay graph's own node index so
                # the eligibility comparison below is exact.
                index = graph.node_index()
                universe_masks = {
                    sid: index.mask_of(mine)
                    for sid, mine in universe_sets.items()
                }
            if not decisions:
                stale = list(graph.nodes())  # first step: all undecided
            elif snap.report is None:
                stale = []  # no link flipped; cached decisions stand
            elif dirty_radius is None or not snap.report.fast_path:
                stale = list(graph.nodes())
            else:
                stale = sorted(snap.report.dirty_at(dirty_radius))
            flips_by_sid = _route_flips(universe_sets, added, removed)
            stale_by_sid: Dict[int, List[int]] = {}
            shipped: List[int] = []
            parent_stale: List[int] = []
            shard_redecides = 0
            handoff = 0
            for node in stale:
                ball = graph.k_hop_mask(node, decision_radius)
                eligible = [
                    sid
                    for sid in assignment.routed[node]
                    if ball & ~universe_masks[sid] == 0
                ]
                if eligible:
                    shard_redecides += len(eligible)
                    handoff += len(eligible) - 1
                    # Owner rule: the lowest eligible shard id decides;
                    # the node ships as its local bit position there.
                    owner_sid = eligible[0]
                    stale_by_sid.setdefault(owner_sid, []).append(
                        subgraphs[owner_sid].to_local(node)
                    )
                    shipped.append(node)
                else:
                    parent_stale.append(node)
            boundary = 0
            for edge in added + removed:
                spanned = set(assignment.routed[edge[0]])
                spanned.update(assignment.routed[edge[1]])
                if len(spanned) > 1:
                    boundary += 1
            payloads: Dict[int, _ShardPayload] = {}
            for sid in set(flips_by_sid) | set(stale_by_sid):
                sid_added, sid_removed = flips_by_sid.get(sid, ((), ()))
                payloads[sid] = (
                    sid_added,
                    sid_removed,
                    tuple(stale_by_sid.get(sid, ())),
                )
            decided, counter_payloads = pool.step(
                snap.step, payloads, pending_rehome
            )
            pending_rehome = None
            for node in shipped:
                decisions[node] = decided[node]
            if parent_stale:
                if parent_metrics is None:
                    parent_metrics = scheme.metrics(graph)
                for node in parent_stale:
                    decisions[node] = _forward_decision(
                        graph, node, k, scheme, parent_metrics
                    )
            if _COUNTER_STACK:
                scope = _COUNTER_STACK[-1]
                scope.shard_redecides += shard_redecides
                scope.shard_handoff_redecides += handoff
                scope.shard_boundary_flips += boundary
                for payload in counter_payloads:
                    scope.merge(InstrumentationCounters.from_dict(payload))
            rehomed = False
            if seen_first:
                # The first step re-decides everyone regardless of the
                # geometry; folding it into the load window would bias
                # the first trigger toward the base node density.
                for node in stale:
                    window_loads[assignment.owner[node]] += 1
                    dirty_counts[node] = dirty_counts.get(node, 0) + 1
                window_total += len(stale)
                if (
                    rehome_factor is not None
                    and grid.shard_count > 1
                    and window_total >= grid.shard_count
                    and max(window_loads) * grid.shard_count
                    > rehome_factor * window_total
                ):
                    candidate = _rebalanced_grid(
                        grid, base_positions, radius, shards, route_halo,
                        dirty_counts,
                    )
                    if candidate.splits != grid.splits:
                        rehomed = True
                        grid = candidate
                        assignment = grid.assign(base_positions)
                        members = _universe_members(
                            grid, base_positions, universe_halo
                        )
                        subgraphs = {
                            sid: ShardSubgraph.extract(
                                sid, graph, mine, positions=base_positions
                            )
                            for sid, mine in members.items()
                        }
                        universe_sets = {
                            sid: set(mine) for sid, mine in members.items()
                        }
                        index = graph.node_index()
                        universe_masks = {
                            sid: index.mask_of(mine)
                            for sid, mine in universe_sets.items()
                        }
                        pending_rehome = subgraphs
                        if _COUNTER_STACK:
                            _COUNTER_STACK[-1].shard_rehomes += 1
                    # An unmoved split is not a re-home, but the window
                    # resets either way so the trigger cannot re-fire
                    # every step on the same skew.
                    window_loads = [0] * grid.shard_count
                    window_total = 0
                    dirty_counts = {}
            seen_first = True
            results.append(
                ShardedStep(
                    step=snap.step,
                    time=snap.time,
                    forward=tuple(sorted(
                        node for node, flag in decisions.items() if flag
                    )),
                    redecided=len(stale),
                    shard_redecides=shard_redecides,
                    handoff_redecides=handoff,
                    boundary_flips=boundary,
                    added_edges=len(added),
                    removed_edges=len(removed),
                    parent_redecides=len(parent_stale),
                    rehomed=rehomed,
                )
            )
    finally:
        pool.close()
    return results


def _extra_radii(scheme: PriorityScheme, k: int) -> Tuple[int, ...]:
    locality = scheme.metric_locality
    return () if locality is None else (k + locality,)


def run_sharded_mobility_sweep(
    model: RandomWaypointModel,
    steps: int,
    dt: float,
    scheme: Optional[PriorityScheme] = None,
    k: int = 2,
    shards: Tuple[int, int] = (2, 2),
    jobs: int = 1,
    clamp: bool = True,
    rehome_factor: Optional[float] = 4.0,
) -> List[ShardedStep]:
    """Sharded exact forward sets across a mobility trace.

    The sharded twin of :func:`~repro.experiments.runner.
    run_mobility_sweep` — same model, same per-step forward sets (the
    determinism contract in the module docstring), with the dirty-region
    re-decisions fanned out over ``jobs`` fork workers hosting
    O(core + halo) partial replicas across a ``shards = (sx, sy)``
    grid.  ``jobs`` is clamped to the shard count (an idle worker would
    own no shard) and, with ``clamp=True``, to ``os.cpu_count()`` —
    a single effective worker runs the in-process short-circuit
    instead of a pipe-driven pool.  ``rehome_factor`` bounds the
    tolerated max/mean load skew before a dynamic re-home (``None``
    disables re-homing); the schedule is deterministic for a given
    trace, so forward sets stay byte-identical at any setting.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    scheme = scheme or IdPriority()
    base_positions = dict(model.positions())
    return _sharded_sweep(
        base_positions,
        model.radius,
        model.snapshot_deltas(dt, steps, extra_radii=_extra_radii(scheme, k)),
        scheme,
        k,
        shards,
        jobs,
        clamp,
        rehome_factor,
    )


def run_sharded_trace(
    trace: FlipTrace,
    scheme: Optional[PriorityScheme] = None,
    k: int = 2,
    shards: Tuple[int, int] = (2, 2),
    jobs: int = 1,
    clamp: bool = True,
    rehome_factor: Optional[float] = 4.0,
) -> List[ShardedStep]:
    """Sharded sweep over a recorded :class:`FlipTrace`.

    Replays the trace's flip stream instead of a live model, so the
    identical workload can A/B shard grids, worker counts, and re-home
    schedules (and be compared against
    :func:`~repro.experiments.runner.run_trace_sweep`, the serial
    incremental replay).  See :func:`run_sharded_mobility_sweep` for
    the ``clamp``/``rehome_factor`` semantics.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    scheme = scheme or IdPriority()
    return _sharded_sweep(
        trace.positions,
        trace.radius,
        trace.replay(extra_radii=_extra_radii(scheme, k)),
        scheme,
        k,
        shards,
        jobs,
        clamp,
        rehome_factor,
    )
