"""Executes experiment specs: sampling, simulation, aggregation.

One *sample* = one fresh random connected deployment + one random source +
one broadcast of the protocol under test; the measured value is the
forward-node count.  Samples repeat under the paper's
confidence-interval stopping rule (:func:`repro.metrics.stats.
repeat_until_confident`).  Every sample also verifies full coverage —
under an ideal MAC a correct protocol must deliver to every node — so the
experiment harness doubles as a system-level correctness check.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..algorithms.base import BroadcastProtocol
from ..core.coverage import coverage_condition
from ..core.priority import IdPriority, PriorityScheme, scheme_by_name
from ..core.views import local_view
from ..graph.fliptrace import FlipTrace
from ..graph.generators import random_connected_network
from ..graph.mobility import RandomWaypointModel, SnapshotDelta
from ..graph.topology import Topology
from ..graph.unit_disk import build_unit_disk_graph, edge_flips
from ..instrument import collecting
from ..metrics.results import DataPoint, ResultTable, Series
from ..metrics.stats import repeat_until_confident
from ..sim.engine import SimulationEnvironment, run_broadcast
from .config import FigureSpec, PanelSpec, RunSettings, SeriesSpec

__all__ = [
    "CoverageViolation",
    "MobilityStep",
    "point_seed",
    "measure_point",
    "run_panel",
    "run_figure",
    "run_mobility_sweep",
    "run_trace_sweep",
]


class CoverageViolation(AssertionError):
    """A broadcast failed to reach every node under an ideal MAC."""


def point_seed(
    seed: int, panel_title: str, label: str, n: int, degree: float
) -> int:
    """The deterministic RNG seed of one ``(panel, series, n, d)`` point.

    Every measurement point draws from its own ``random.Random`` seeded by
    a ``sha256(seed|panel|label|n|degree)`` digest (hashlib, not the salted
    built-in ``hash``), so results are bit-identical no matter which
    process measures the point, in what order, or at what worker count —
    the determinism contract of the parallel harness.
    """
    digest = hashlib.sha256(
        f"{seed}|{panel_title}|{label}|{n}|{degree!r}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def _one_sample(
    spec: SeriesSpec,
    n: int,
    degree: float,
    rng: random.Random,
    check_coverage: bool,
) -> float:
    network = random_connected_network(n, degree, rng)
    scheme = scheme_by_name(spec.scheme_name)
    env = SimulationEnvironment(network.topology, scheme)
    protocol = spec.protocol_factory()
    protocol.prepare(env)
    source = rng.choice(network.topology.nodes())
    # The service-backed single-message path — byte-identical to the
    # deprecated direct BroadcastSession (gated in bench_traffic.py).
    outcome = run_broadcast(
        network.topology, protocol, source, rng=rng, env=env
    )
    if check_coverage and len(outcome.delivered) != n:
        missing = sorted(set(network.topology.nodes()) - outcome.delivered)
        raise CoverageViolation(
            f"{spec.label}: broadcast from {source} missed nodes {missing} "
            f"(n={n}, d={degree})"
        )
    return float(outcome.forward_count)


def measure_point(
    spec: SeriesSpec,
    n: int,
    degree: float,
    settings: RunSettings,
    rng: Optional[random.Random] = None,
) -> DataPoint:
    """Measure one (algorithm, n, d) point under the stopping rule.

    Without an explicit ``rng`` the fallback is derived from a
    ``(seed, label, n, degree)`` digest, so two different points measured
    back-to-back never replay the same sample stream (a bare
    ``Random(settings.seed)`` would correlate every point).

    With ``settings.instrument`` the point's samples run inside a
    :func:`repro.instrument.collecting` scope and the aggregated counts
    travel on ``DataPoint.counters`` — per point, so parallel sweeps
    merge to exactly the serial totals.
    """
    if rng is None:
        rng = random.Random(point_seed(settings.seed, "", spec.label, n, degree))

    def sample_all() -> object:
        return repeat_until_confident(
            lambda: _one_sample(spec, n, degree, rng, settings.check_coverage),
            confidence=settings.confidence,
            relative_half_width=settings.relative_half_width,
            min_runs=settings.min_runs,
            max_runs=settings.max_runs,
        )

    counter_payload: Optional[Dict[str, int]] = None
    if settings.instrument:
        with collecting() as counters:
            result = sample_all()
        counter_payload = counters.as_dict()
    else:
        result = sample_all()
    return DataPoint(
        x=n,
        mean=result.mean,
        half_width=result.interval.half_width,
        samples=len(result.samples),
        counters=counter_payload,
    )


def run_panel(
    panel: PanelSpec,
    settings: RunSettings,
    progress: Optional[Callable[[str], None]] = None,
) -> ResultTable:
    """Run every series of a panel over its node-count sweep.

    With ``settings.jobs > 1`` the points fan out over a process pool;
    the result is byte-identical to the serial run because every point
    seeds its own RNG via :func:`point_seed`.
    """
    if settings.jobs > 1:
        from .parallel import run_panel_parallel

        return run_panel_parallel(panel, settings, progress)
    table = ResultTable(
        title=panel.title,
        x_label="n",
        y_label="forward nodes",
    )
    for spec in panel.series:
        series = Series(label=spec.label)
        for n in panel.ns:
            # One RNG per point keeps every (series, n) measurement
            # independent and order-agnostic — the same seeds the
            # parallel harness hands its workers.
            rng = random.Random(
                point_seed(settings.seed, panel.title, spec.label, n, panel.degree)
            )
            point = measure_point(spec, n, panel.degree, settings, rng)
            series.add(point)
            if progress is not None:
                progress(
                    f"{panel.title} / {spec.label}: n={n} "
                    f"mean={point.mean:.2f} (+-{point.half_width:.2f}, "
                    f"{point.samples} runs)"
                )
        table.add_series(series)
    return table


def run_figure(
    figure: FigureSpec,
    settings: Optional[RunSettings] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ResultTable]:
    """Run every panel of a figure.

    With ``settings.jobs > 1`` all points of all panels share one process
    pool (see :mod:`repro.experiments.parallel`); output is byte-identical
    to the serial run at any worker count.
    """
    settings = settings or RunSettings()
    if settings.jobs > 1:
        from .parallel import run_figure_parallel

        return run_figure_parallel(figure, settings, progress)
    return [run_panel(panel, settings, progress) for panel in figure.panels]


@dataclass(frozen=True)
class MobilityStep:
    """One mobility step's forward-set snapshot.

    ``forward`` is the exact forward set under the generic scheme's
    coverage condition (Theorem 1: every node whose k-hop local view
    does *not* certify coverage forwards); ``redecided`` counts how many
    coverage conditions were actually evaluated this step (``n`` on the
    rebuild path, the dirty-set size on the incremental path).
    """

    step: int
    time: float
    forward: Tuple[int, ...]
    redecided: int
    added_edges: int
    removed_edges: int


def _forward_decision(
    graph: Topology,
    node: int,
    k: int,
    scheme: PriorityScheme,
    metrics: Dict[int, Tuple[float, ...]],
) -> bool:
    view = local_view(graph, node, k, scheme, metrics=metrics)
    return not coverage_condition(view, node)


def run_mobility_sweep(
    model: RandomWaypointModel,
    steps: int,
    dt: float,
    scheme: Optional[PriorityScheme] = None,
    k: int = 2,
    incremental: bool = True,
    shards: Optional[Tuple[int, int]] = None,
    jobs: int = 1,
) -> List[MobilityStep]:
    """Exact forward sets across a mobility trace, one entry per step.

    With ``incremental=True`` the sweep reuses **one mutable**
    :class:`Topology` across adjacent steps: each step's link flips go
    through :meth:`Topology.apply_delta`
    (via :meth:`~repro.graph.mobility.RandomWaypointModel.
    snapshot_deltas`), and only nodes inside the dirty ball of radius
    ``k + scheme.metric_locality`` re-evaluate their coverage condition
    — a changed edge can alter a cached decision at ``v`` only if an
    endpoint lies within ``k`` hops of some node visible to ``v``
    (Definition 2 locality) or within ``metric_locality`` hops of one
    (metric drift), i.e. within ``k + metric_locality`` of ``v``.
    Schemes that leave ``metric_locality`` as ``None`` re-decide every
    node per step, which is always safe.

    With ``incremental=False`` every step rebuilds the unit-disk graph
    from scratch and re-decides all nodes — the oracle the benchmark's
    equivalence gate compares against.  Both paths drive the model's RNG
    identically (only :meth:`~repro.graph.mobility.RandomWaypointModel.
    advance` draws), so equally-seeded models produce byte-identical
    ``forward`` tuples either way.

    With ``shards=(sx, sy)`` the incremental sweep's dirty-region
    re-decisions fan out over ``jobs`` fork workers across a spatial
    shard grid (see :mod:`repro.experiments.sharded`); the returned
    :class:`~repro.experiments.sharded.ShardedStep` entries carry the
    same ``step``/``time``/``forward``/``redecided``/flip-count fields
    with byte-identical values at any grid and worker count.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    scheme = scheme or IdPriority()
    if shards is not None:
        if not incremental:
            raise ValueError(
                "sharded sweeps are incremental by construction; "
                "incremental=False is only for the rebuild oracle"
            )
        from .sharded import run_sharded_mobility_sweep

        return run_sharded_mobility_sweep(
            model, steps, dt, scheme=scheme, k=k, shards=shards, jobs=jobs
        )
    if incremental:
        return _mobility_sweep_incremental(model, steps, dt, scheme, k)
    return _mobility_sweep_rebuild(model, steps, dt, scheme, k)


def _mobility_sweep_incremental(
    model: RandomWaypointModel,
    steps: int,
    dt: float,
    scheme: PriorityScheme,
    k: int,
) -> List[MobilityStep]:
    locality = scheme.metric_locality
    radius = None if locality is None else k + locality
    extra = () if radius is None else (radius,)
    return _incremental_sweep_over(
        model.snapshot_deltas(dt, steps, extra_radii=extra), scheme, k, radius
    )


def _incremental_sweep_over(
    deltas: Iterable[SnapshotDelta],
    scheme: PriorityScheme,
    k: int,
    radius: Optional[int],
) -> List[MobilityStep]:
    """The incremental decision loop over any SnapshotDelta stream.

    Shared by the live-model sweep and the recorded-trace replay; the
    sharded driver replicates this stale-set logic exactly (its
    determinism contract depends on it).
    """
    decisions: Dict[int, bool] = {}
    metrics: Optional[Dict[int, Tuple[float, ...]]] = None
    results: List[MobilityStep] = []
    for snap in deltas:
        graph = snap.graph.topology
        if not decisions:
            stale = graph.nodes()  # first step: everything undecided
        elif snap.report is None:
            stale = []  # no link flipped; every cached decision stands
        elif radius is None or not snap.report.fast_path:
            stale = graph.nodes()
        else:
            stale = sorted(snap.report.dirty_at(radius))
        if metrics is None or (snap.report is not None and stale):
            # Metric tables are O(n) for the built-in schemes — cheap
            # next to view extraction, and only rebuilt on flip steps.
            metrics = scheme.metrics(graph)
        for node in stale:
            decisions[node] = _forward_decision(graph, node, k, scheme, metrics)
        results.append(
            MobilityStep(
                step=snap.step,
                time=snap.time,
                forward=tuple(sorted(
                    node for node, flag in decisions.items() if flag
                )),
                redecided=len(stale),
                added_edges=len(snap.added_edges),
                removed_edges=len(snap.removed_edges),
            )
        )
    return results


def _mobility_sweep_rebuild(
    model: RandomWaypointModel,
    steps: int,
    dt: float,
    scheme: PriorityScheme,
    k: int,
) -> List[MobilityStep]:
    # Diff step 0 against the pre-advance positions, exactly like the
    # incremental path's baseline snapshot, so flip counts line up.
    previous = build_unit_disk_graph(model.positions(), model.radius).topology
    results: List[MobilityStep] = []
    for step in range(steps):
        model.advance(dt)
        positions = model.positions()
        added, removed = edge_flips(positions, model.radius, previous)
        graph = build_unit_disk_graph(positions, model.radius).topology
        metrics = scheme.metrics(graph)
        results.append(
            MobilityStep(
                step=step,
                time=model.time,
                forward=tuple(sorted(
                    node for node in graph.nodes()
                    if _forward_decision(graph, node, k, scheme, metrics)
                )),
                redecided=graph.node_count(),
                added_edges=len(added),
                removed_edges=len(removed),
            )
        )
        previous = graph
    return results


def run_trace_sweep(
    trace: FlipTrace,
    scheme: Optional[PriorityScheme] = None,
    k: int = 2,
) -> List[MobilityStep]:
    """Serial incremental sweep over a recorded :class:`FlipTrace`.

    Replays the trace's flip stream through the exact decision loop of
    :func:`run_mobility_sweep` with ``incremental=True``, so a recorded
    workload can A/B schemes — and serve as the serial oracle for the
    sharded driver (:func:`repro.experiments.sharded.run_sharded_trace`)
    — without re-running the mobility model.
    """
    scheme = scheme or IdPriority()
    locality = scheme.metric_locality
    radius = None if locality is None else k + locality
    extra = () if radius is None else (radius,)
    return _incremental_sweep_over(
        trace.replay(extra_radii=extra), scheme, k, radius
    )
