"""Executes experiment specs: sampling, simulation, aggregation.

One *sample* = one fresh random connected deployment + one random source +
one broadcast of the protocol under test; the measured value is the
forward-node count.  Samples repeat under the paper's
confidence-interval stopping rule (:func:`repro.metrics.stats.
repeat_until_confident`).  Every sample also verifies full coverage —
under an ideal MAC a correct protocol must deliver to every node — so the
experiment harness doubles as a system-level correctness check.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..algorithms.base import BroadcastProtocol
from ..core.priority import scheme_by_name
from ..graph.generators import random_connected_network
from ..instrument import collecting
from ..metrics.results import DataPoint, ResultTable, Series
from ..metrics.stats import repeat_until_confident
from ..sim.engine import BroadcastSession, SimulationEnvironment
from .config import FigureSpec, PanelSpec, RunSettings, SeriesSpec

__all__ = [
    "CoverageViolation",
    "point_seed",
    "measure_point",
    "run_panel",
    "run_figure",
]


class CoverageViolation(AssertionError):
    """A broadcast failed to reach every node under an ideal MAC."""


def point_seed(
    seed: int, panel_title: str, label: str, n: int, degree: float
) -> int:
    """The deterministic RNG seed of one ``(panel, series, n, d)`` point.

    Every measurement point draws from its own ``random.Random`` seeded by
    a ``sha256(seed|panel|label|n|degree)`` digest (hashlib, not the salted
    built-in ``hash``), so results are bit-identical no matter which
    process measures the point, in what order, or at what worker count —
    the determinism contract of the parallel harness.
    """
    digest = hashlib.sha256(
        f"{seed}|{panel_title}|{label}|{n}|{degree!r}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def _one_sample(
    spec: SeriesSpec,
    n: int,
    degree: float,
    rng: random.Random,
    check_coverage: bool,
) -> float:
    network = random_connected_network(n, degree, rng)
    scheme = scheme_by_name(spec.scheme_name)
    env = SimulationEnvironment(network.topology, scheme)
    protocol = spec.protocol_factory()
    protocol.prepare(env)
    source = rng.choice(network.topology.nodes())
    outcome = BroadcastSession(env, protocol, source, rng=rng).run()
    if check_coverage and len(outcome.delivered) != n:
        missing = sorted(set(network.topology.nodes()) - outcome.delivered)
        raise CoverageViolation(
            f"{spec.label}: broadcast from {source} missed nodes {missing} "
            f"(n={n}, d={degree})"
        )
    return float(outcome.forward_count)


def measure_point(
    spec: SeriesSpec,
    n: int,
    degree: float,
    settings: RunSettings,
    rng: Optional[random.Random] = None,
) -> DataPoint:
    """Measure one (algorithm, n, d) point under the stopping rule.

    Without an explicit ``rng`` the fallback is derived from a
    ``(seed, label, n, degree)`` digest, so two different points measured
    back-to-back never replay the same sample stream (a bare
    ``Random(settings.seed)`` would correlate every point).

    With ``settings.instrument`` the point's samples run inside a
    :func:`repro.instrument.collecting` scope and the aggregated counts
    travel on ``DataPoint.counters`` — per point, so parallel sweeps
    merge to exactly the serial totals.
    """
    if rng is None:
        rng = random.Random(point_seed(settings.seed, "", spec.label, n, degree))

    def sample_all() -> object:
        return repeat_until_confident(
            lambda: _one_sample(spec, n, degree, rng, settings.check_coverage),
            confidence=settings.confidence,
            relative_half_width=settings.relative_half_width,
            min_runs=settings.min_runs,
            max_runs=settings.max_runs,
        )

    counter_payload: Optional[Dict[str, int]] = None
    if settings.instrument:
        with collecting() as counters:
            result = sample_all()
        counter_payload = counters.as_dict()
    else:
        result = sample_all()
    return DataPoint(
        x=n,
        mean=result.mean,
        half_width=result.interval.half_width,
        samples=len(result.samples),
        counters=counter_payload,
    )


def run_panel(
    panel: PanelSpec,
    settings: RunSettings,
    progress: Optional[Callable[[str], None]] = None,
) -> ResultTable:
    """Run every series of a panel over its node-count sweep.

    With ``settings.jobs > 1`` the points fan out over a process pool;
    the result is byte-identical to the serial run because every point
    seeds its own RNG via :func:`point_seed`.
    """
    if settings.jobs > 1:
        from .parallel import run_panel_parallel

        return run_panel_parallel(panel, settings, progress)
    table = ResultTable(
        title=panel.title,
        x_label="n",
        y_label="forward nodes",
    )
    for spec in panel.series:
        series = Series(label=spec.label)
        for n in panel.ns:
            # One RNG per point keeps every (series, n) measurement
            # independent and order-agnostic — the same seeds the
            # parallel harness hands its workers.
            rng = random.Random(
                point_seed(settings.seed, panel.title, spec.label, n, panel.degree)
            )
            point = measure_point(spec, n, panel.degree, settings, rng)
            series.add(point)
            if progress is not None:
                progress(
                    f"{panel.title} / {spec.label}: n={n} "
                    f"mean={point.mean:.2f} (+-{point.half_width:.2f}, "
                    f"{point.samples} runs)"
                )
        table.add_series(series)
    return table


def run_figure(
    figure: FigureSpec,
    settings: Optional[RunSettings] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ResultTable]:
    """Run every panel of a figure.

    With ``settings.jobs > 1`` all points of all panels share one process
    pool (see :mod:`repro.experiments.parallel`); output is byte-identical
    to the serial run at any worker count.
    """
    settings = settings or RunSettings()
    if settings.jobs > 1:
        from .parallel import run_figure_parallel

        return run_figure_parallel(figure, settings, progress)
    return [run_panel(panel, settings, progress) for panel in figure.panels]
