"""Process-parallel experiment harness.

Figure sweeps repeat every ``(protocol, n, d)`` point until the paper's
90%-confidence ±1% stopping rule is met; the points are mutually
independent, so they fan out over a ``multiprocessing`` pool.  Three
properties make the pool safe to use for reproduction work:

* **Order-independent determinism** — every point seeds its own
  ``random.Random`` from a ``sha256(seed|panel|label|n|degree)`` digest
  (:func:`repro.experiments.runner.point_seed`), so the assembled
  :class:`~repro.metrics.results.ResultTable` is byte-identical at any
  worker count, including the ``jobs=1`` in-process serial fallback.
* **Crash recovery** — a point whose worker raises (or whose worker
  process dies, breaking the pool) is re-dispatched once, serially in the
  parent; a second failure surfaces as a structured
  :class:`PointFailure` naming the panel, series, n, and degree.
* **Pickle-safe progress** — workers only ship ``(task, DataPoint)``
  tuples of plain ints and floats back to the parent; the parent renders
  progress messages and invokes the (unpicklable) callback itself.
  Instrumentation counters (``settings.instrument``) ride inside each
  shipped ``DataPoint`` as a plain dict, collected per point in whichever
  process measured it — merging per-point counters therefore gives
  exactly the serial totals at any worker count.

Worker processes are created with the ``fork`` start method: protocol
factories in :class:`~repro.experiments.config.SeriesSpec` are typically
lambdas, which cannot be pickled but are inherited through ``fork`` for
free.  On platforms without ``fork`` the harness degrades to the serial
path (reporting so through the progress callback) rather than failing.
"""

from __future__ import annotations

import multiprocessing
import random
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..metrics.results import DataPoint, ResultTable, Series
from .config import FigureSpec, PanelSpec, RunSettings
from .runner import measure_point, point_seed

__all__ = [
    "PointFailure",
    "run_panel_parallel",
    "run_figure_parallel",
]

#: One unit of work: indices into the panel list and its series, plus n.
#: Kept as a plain tuple so it crosses the process boundary trivially.
_Task = Tuple[int, int, int]


class PointFailure(RuntimeError):
    """A measurement point failed twice (original dispatch plus one retry).

    Carries enough structure to re-run the point by hand; the underlying
    exception is chained as ``__cause__`` and its traceback preserved in
    :attr:`worker_traceback`.
    """

    def __init__(
        self,
        panel_title: str,
        label: str,
        n: int,
        degree: float,
        worker_traceback: str,
    ) -> None:
        super().__init__(
            f"point ({label}, n={n}, d={degree:g}) of panel "
            f"{panel_title!r} failed after retry"
        )
        self.panel_title = panel_title
        self.label = label
        self.n = n
        self.degree = degree
        self.worker_traceback = worker_traceback


# Worker-side state, installed by the pool initializer.  Under the fork
# start method the initializer arguments are inherited, never pickled, so
# panels may hold lambda protocol factories.
_WORKER_PANELS: Optional[Sequence[PanelSpec]] = None
_WORKER_SETTINGS: Optional[RunSettings] = None


def _init_worker(panels: Sequence[PanelSpec], settings: RunSettings) -> None:
    global _WORKER_PANELS, _WORKER_SETTINGS
    _WORKER_PANELS = panels
    _WORKER_SETTINGS = settings


def _measure_task(
    task: _Task, panels: Sequence[PanelSpec], settings: RunSettings
) -> DataPoint:
    """Measure one point — the same code path in workers and the parent."""
    panel_index, series_index, n = task
    panel = panels[panel_index]
    spec = panel.series[series_index]
    rng = random.Random(
        point_seed(settings.seed, panel.title, spec.label, n, panel.degree)
    )
    return measure_point(spec, n, panel.degree, settings, rng)


def _worker_measure(task: _Task) -> Tuple[_Task, DataPoint]:
    assert _WORKER_PANELS is not None and _WORKER_SETTINGS is not None
    return task, _measure_task(task, _WORKER_PANELS, _WORKER_SETTINGS)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _progress_message(
    panel: PanelSpec, series_index: int, n: int, point: DataPoint
) -> str:
    spec = panel.series[series_index]
    return (
        f"{panel.title} / {spec.label}: n={n} "
        f"mean={point.mean:.2f} (+-{point.half_width:.2f}, "
        f"{point.samples} runs)"
    )


def _retry_serially(
    task: _Task,
    panels: Sequence[PanelSpec],
    settings: RunSettings,
    first_error: BaseException,
) -> DataPoint:
    """Second (and last) dispatch of a failed point, in the parent."""
    try:
        return _measure_task(task, panels, settings)
    except Exception as exc:
        panel_index, series_index, n = task
        panel = panels[panel_index]
        raise PointFailure(
            panel_title=panel.title,
            label=panel.series[series_index].label,
            n=n,
            degree=panel.degree,
            worker_traceback="".join(
                traceback.format_exception(
                    type(first_error), first_error, first_error.__traceback__
                )
            ),
        ) from exc


def _measure_points(
    panels: Sequence[PanelSpec],
    settings: RunSettings,
    progress: Optional[Callable[[str], None]],
) -> Dict[_Task, DataPoint]:
    """Measure every point of every panel, possibly in parallel.

    Returns a task-to-point mapping; table assembly afterwards follows
    spec order, so completion order never leaks into results.
    """
    tasks: List[_Task] = [
        (panel_index, series_index, n)
        for panel_index, panel in enumerate(panels)
        for series_index in range(len(panel.series))
        for n in panel.ns
    ]
    results: Dict[_Task, DataPoint] = {}

    context = _fork_context() if settings.jobs > 1 else None
    if context is None:
        if settings.jobs > 1 and progress is not None:
            progress("fork start method unavailable; running points serially")
        for task in tasks:
            results[task] = _measure_task(task, panels, settings)
            if progress is not None:
                panel_index, series_index, n = task
                progress(
                    _progress_message(
                        panels[panel_index], series_index, n, results[task]
                    )
                )
        return results

    workers = min(settings.jobs, len(tasks)) or 1
    failed_once: List[Tuple[_Task, BaseException]] = []
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(panels, settings),
    ) as pool:
        pending = {pool.submit(_worker_measure, task): task for task in tasks}
        while pending:
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            for future in done:
                task = pending.pop(future)
                error = future.exception()
                if error is not None:
                    # First failure (including a broken pool, which fails
                    # every pending future): queue the single retry.
                    failed_once.append((task, error))
                    continue
                returned_task, point = future.result()
                results[returned_task] = point
                if progress is not None:
                    panel_index, series_index, n = returned_task
                    progress(
                        _progress_message(
                            panels[panel_index], series_index, n, point
                        )
                    )
    for task, error in failed_once:
        point = _retry_serially(task, panels, settings, error)
        results[task] = point
        if progress is not None:
            panel_index, series_index, n = task
            progress(
                _progress_message(panels[panel_index], series_index, n, point)
                + " [re-dispatched]"
            )
    return results


def _assemble_tables(
    panels: Sequence[PanelSpec], results: Dict[_Task, DataPoint]
) -> List[ResultTable]:
    tables: List[ResultTable] = []
    for panel_index, panel in enumerate(panels):
        table = ResultTable(
            title=panel.title, x_label="n", y_label="forward nodes"
        )
        for series_index, spec in enumerate(panel.series):
            series = Series(label=spec.label)
            for n in panel.ns:
                series.add(results[(panel_index, series_index, n)])
            table.add_series(series)
        tables.append(table)
    return tables


def run_panel_parallel(
    panel: PanelSpec,
    settings: RunSettings,
    progress: Optional[Callable[[str], None]] = None,
) -> ResultTable:
    """Run one panel with its points fanned out over ``settings.jobs``
    worker processes; byte-identical to the serial run."""
    results = _measure_points([panel], settings, progress)
    return _assemble_tables([panel], results)[0]


def run_figure_parallel(
    figure: FigureSpec,
    settings: RunSettings,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ResultTable]:
    """Run a whole figure over one shared worker pool.

    All panels' points enter the same queue, so a slow panel cannot
    serialise the sweep; tables come back in panel order regardless of
    completion order.
    """
    results = _measure_points(list(figure.panels), settings, progress)
    return _assemble_tables(list(figure.panels), results)
