"""Traffic sweeps: offered load versus delivered load per scheme.

The paper's figures measure forward-set size for one broadcast at a
time; a deployed network cares about what happens when broadcasts
*queue up*.  :func:`run_traffic_sweep` drives the broadcast service
(:class:`~repro.sim.service.ServiceEngine`) across a ladder of offered
Poisson loads, one series per protocol, and reports per point:

* the headline mean — **delivered load** (fully covered messages per
  simulation time unit, the service's goodput);
* per-message delivery-latency percentiles (p50/p95/p99) and the raw
  goodput/offered figures in ``DataPoint.extras``;
* optionally the merged work counters (``collect_counters=True``),
  including the service-layer trio ``queue_depth_max`` /
  ``messages_dropped`` / ``forward_set_reuses``.

Determinism contract — identical to the figure harness
(:mod:`repro.experiments.parallel`): every ``(protocol, rate)`` point
derives its decision RNG from ``sha256("TrafficSweep|seed|label|rate")``
(:func:`traffic_point_seed`) and its arrival schedule from the traffic
model's own seeded generator, so the assembled
:class:`~repro.metrics.results.ResultTable` is byte-identical at any
``jobs`` count.  Points fan out over a ``fork`` process pool (protocol
factories may be lambdas — inherited, never pickled); a point that fails
in a worker is re-dispatched once serially before surfacing as
:class:`TrafficPointFailure`.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import random
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..algorithms.base import BroadcastProtocol
from ..graph.topology import Topology
from ..instrument import collecting
from ..metrics.results import DataPoint, ResultTable, Series
from ..metrics.stats import percentile
from ..sim.engine import SimulationEnvironment
from ..sim.service import (
    DEFAULT_QUEUE_CAPACITY,
    DEFAULT_TX_TIME_PER_UNIT,
    ServiceEngine,
)
from ..sim.traffic import PoissonTraffic

__all__ = [
    "TrafficSweepConfig",
    "TrafficPointFailure",
    "run_traffic_sweep",
    "traffic_point_seed",
]

#: A sweep series: display label plus a zero-argument protocol factory
#: (a fresh protocol per point — prepared against the point's own
#: environment, exactly like the figure harness).
ProtocolSpec = Tuple[str, Callable[[], BroadcastProtocol]]

#: One unit of work: (series index, rate index).
_Task = Tuple[int, int]


def traffic_point_seed(seed: int, label: str, rate: float) -> int:
    """Order-independent RNG seed of one ``(protocol, rate)`` point.

    ``sha256("TrafficSweep|{seed}|{label}|{rate}")`` truncated to 64
    bits — the same derivation family as
    :func:`repro.experiments.runner.point_seed`, so any worker measuring
    any subset of points in any order reproduces the serial sweep.
    ``rate`` is formatted with ``repr`` to keep the digest exact.
    """
    digest = hashlib.sha256(
        f"TrafficSweep|{seed}|{label}|{rate!r}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class TrafficSweepConfig:
    """Everything one traffic sweep needs besides the deployment.

    ``rates`` is the offered-load ladder (Poisson messages per time
    unit); ``count`` messages are injected per point.  ``ttl`` and
    ``queue_capacity`` control staleness and backpressure;
    ``horizon`` optionally cuts every point off at a fixed simulation
    time (the saturation valve).
    """

    rates: Sequence[float]
    count: int = 50
    seed: int = 0
    size_units: int = 4
    ttl: Optional[float] = None
    queue_capacity: Optional[int] = DEFAULT_QUEUE_CAPACITY
    tx_time_per_unit: float = DEFAULT_TX_TIME_PER_UNIT
    horizon: Optional[float] = None
    jobs: int = 1
    collect_counters: bool = False

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("rates must be non-empty")
        if any(rate <= 0 for rate in self.rates):
            raise ValueError(f"rates must be positive, got {self.rates}")
        if self.count < 1:
            raise ValueError(f"count must be positive, got {self.count}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")


class TrafficPointFailure(RuntimeError):
    """A sweep point failed twice (original dispatch plus one retry)."""

    def __init__(
        self, label: str, rate: float, worker_traceback: str
    ) -> None:
        super().__init__(
            f"traffic point ({label}, rate={rate:g}) failed after retry"
        )
        self.label = label
        self.rate = rate
        self.worker_traceback = worker_traceback


def _measure_point(
    graph: Topology,
    protocols: Sequence[ProtocolSpec],
    config: TrafficSweepConfig,
    task: _Task,
) -> DataPoint:
    """Run the service at one ``(protocol, rate)`` point."""
    series_index, rate_index = task
    label, factory = protocols[series_index]
    rate = config.rates[rate_index]
    protocol = factory()
    # A private copy per point: the topology's internal query cache is
    # warmed by whoever touches it, so sharing one graph object across
    # points would make cache-hit/miss counters depend on measurement
    # order (and thus on the worker count).
    env = SimulationEnvironment(graph.copy())
    protocol.prepare(env)
    traffic = PoissonTraffic(
        rate=rate,
        count=config.count,
        # Distinct arrival schedules per point, reproducible at any
        # worker count: the model's own sha256 derivation takes over
        # from here.
        seed=traffic_point_seed(config.seed, label, rate),
        size_units=config.size_units,
        ttl=config.ttl,
    )
    engine = ServiceEngine(
        env,
        protocol,
        traffic,
        rng=random.Random(traffic_point_seed(config.seed, label, rate) ^ 1),
        queue_capacity=config.queue_capacity,
        tx_time_per_unit=config.tx_time_per_unit,
        collect_counters=config.collect_counters,
    )
    if config.collect_counters:
        with collecting() as counters:
            outcome = engine.run(horizon=config.horizon)
    else:
        outcome = engine.run(horizon=config.horizon)
    latencies = outcome.latencies()
    extras: Dict[str, float] = {
        "offered_load": outcome.offered_load(),
        "goodput": outcome.goodput(),
        "delivered_messages": float(outcome.delivered_count),
        "dropped_events": float(outcome.messages_dropped),
        "queue_depth_max": float(outcome.queue_depth_max),
        "forward_set_reuses": float(outcome.forward_set_reuses),
    }
    if latencies:
        extras["latency_p50"] = percentile(latencies, 50.0)
        extras["latency_p95"] = percentile(latencies, 95.0)
        extras["latency_p99"] = percentile(latencies, 99.0)
    return DataPoint(
        x=rate,
        mean=outcome.goodput(),
        half_width=0.0,
        samples=len(outcome.messages),
        counters=(counters.as_dict() if config.collect_counters else None),
        extras=extras,
    )


# Worker-side state, installed by the pool initializer (inherited through
# fork, never pickled — protocol factories may be lambdas).
_WORKER_GRAPH: Optional[Topology] = None
_WORKER_PROTOCOLS: Optional[Sequence[ProtocolSpec]] = None
_WORKER_CONFIG: Optional[TrafficSweepConfig] = None


def _init_worker(
    graph: Topology,
    protocols: Sequence[ProtocolSpec],
    config: TrafficSweepConfig,
) -> None:
    global _WORKER_GRAPH, _WORKER_PROTOCOLS, _WORKER_CONFIG
    _WORKER_GRAPH = graph
    _WORKER_PROTOCOLS = protocols
    _WORKER_CONFIG = config


def _worker_measure(task: _Task) -> Tuple[_Task, DataPoint]:
    assert (
        _WORKER_GRAPH is not None
        and _WORKER_PROTOCOLS is not None
        and _WORKER_CONFIG is not None
    )
    return task, _measure_point(
        _WORKER_GRAPH, _WORKER_PROTOCOLS, _WORKER_CONFIG, task
    )


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _measure_all(
    graph: Topology,
    protocols: Sequence[ProtocolSpec],
    config: TrafficSweepConfig,
    progress: Optional[Callable[[str], None]],
) -> Dict[_Task, DataPoint]:
    tasks: List[_Task] = [
        (series_index, rate_index)
        for series_index in range(len(protocols))
        for rate_index in range(len(config.rates))
    ]
    results: Dict[_Task, DataPoint] = {}

    def report(task: _Task, point: DataPoint) -> None:
        if progress is None:
            return
        label = protocols[task[0]][0]
        progress(
            f"{label}: rate={point.x:g} goodput={point.mean:.4f} "
            f"({point.samples} messages)"
        )

    context = _fork_context() if config.jobs > 1 else None
    if context is None:
        if config.jobs > 1 and progress is not None:
            progress("fork start method unavailable; running points serially")
        for task in tasks:
            results[task] = _measure_point(graph, protocols, config, task)
            report(task, results[task])
        return results

    workers = min(config.jobs, len(tasks)) or 1
    failed_once: List[Tuple[_Task, BaseException]] = []
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(graph, protocols, config),
    ) as pool:
        pending = {pool.submit(_worker_measure, task): task for task in tasks}
        while pending:
            done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
            for future in done:
                task = pending.pop(future)
                error = future.exception()
                if error is not None:
                    failed_once.append((task, error))
                    continue
                returned_task, point = future.result()
                results[returned_task] = point
                report(returned_task, point)
    for task, error in failed_once:
        try:
            results[task] = _measure_point(graph, protocols, config, task)
        except Exception as exc:
            raise TrafficPointFailure(
                label=protocols[task[0]][0],
                rate=config.rates[task[1]],
                worker_traceback="".join(
                    traceback.format_exception(
                        type(error), error, error.__traceback__
                    )
                ),
            ) from exc
        report(task, results[task])
    return results


def run_traffic_sweep(
    graph: Topology,
    protocols: Sequence[ProtocolSpec],
    config: TrafficSweepConfig,
    progress: Optional[Callable[[str], None]] = None,
) -> ResultTable:
    """Offered-vs-delivered-load sweep over one deployment.

    One series per protocol, one point per offered rate; assembly
    follows spec order so worker completion order never leaks into the
    table.  Byte-identical at any ``config.jobs`` value.
    """
    if not protocols:
        raise ValueError("protocols must be non-empty")
    results = _measure_all(graph, protocols, config, progress)
    table = ResultTable(
        title=(
            f"Broadcast service saturation (n={graph.node_count()}, "
            f"{config.count} messages/point)"
        ),
        x_label="offered load (msgs/time)",
        y_label="delivered load (msgs/time)",
    )
    for series_index, (label, _factory) in enumerate(protocols):
        series = Series(label=label)
        for rate_index in range(len(config.rates)):
            series.add(results[(series_index, rate_index)])
        table.add_series(series)
    return table
