"""One experiment spec per paper figure (Section 7).

Every builder accepts the node-count sweep and degree list so benchmarks
can shrink them; defaults reproduce the paper's configuration
(n = 20..100, d ∈ {6, 18}, 2-hop views and id priority unless the figure
varies exactly that axis).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..algorithms.base import Timing
from ..algorithms.dominant_pruning import DominantPruning, PartialDominantPruning
from ..algorithms.generic import (
    GenericNeighborDesignating,
    GenericSelfPruning,
    GenericStatic,
)
from ..algorithms.hybrid import MaxDegHybrid, MinPriHybrid
from ..algorithms.lenwb import LENWB
from ..algorithms.mpr import MultipointRelay
from ..algorithms.rule_k import RuleK
from ..algorithms.sba import SBA
from ..algorithms.span import Span
from .config import PAPER_NS, FigureSpec, PanelSpec, SeriesSpec

__all__ = [
    "fig10_timing",
    "fig11_selection",
    "fig12_space",
    "fig13_priority",
    "fig14_static",
    "fig15_first_receipt",
    "fig16_backoff",
    "FIGURE_BUILDERS",
]

DEGREES: Tuple[float, ...] = (6.0, 18.0)


def _ns(ns: Optional[Sequence[int]]) -> Tuple[int, ...]:
    return tuple(ns) if ns is not None else PAPER_NS


def _panels_per_degree(
    title: str,
    series: Tuple[SeriesSpec, ...],
    ns: Tuple[int, ...],
    degrees: Sequence[float],
) -> Tuple[PanelSpec, ...]:
    return tuple(
        PanelSpec(
            title=f"{title}, d={degree:g}",
            degree=degree,
            ns=ns,
            series=series,
        )
        for degree in degrees
    )


def fig10_timing(
    ns: Optional[Sequence[int]] = None,
    degrees: Sequence[float] = DEGREES,
) -> FigureSpec:
    """Figure 10: Static vs FR vs FRB vs FRBD (2-hop, id priority)."""
    series = (
        SeriesSpec("Static", lambda: GenericStatic(hops=2)),
        SeriesSpec(
            "FR", lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
        ),
        SeriesSpec(
            "FRB",
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT_BACKOFF, hops=2),
        ),
        SeriesSpec(
            "FRBD",
            lambda: GenericSelfPruning(
                Timing.FIRST_RECEIPT_BACKOFF_DEGREE, hops=2
            ),
        ),
    )
    return FigureSpec(
        figure_id="fig10",
        description="Timing options of the generic broadcast protocol",
        panels=_panels_per_degree("fig10 timing", series, _ns(ns), degrees),
    )


def fig11_selection(
    ns: Optional[Sequence[int]] = None,
    degrees: Sequence[float] = DEGREES,
) -> FigureSpec:
    """Figure 11: SP vs ND vs MaxDeg vs MinPri (FR, 2-hop, id priority)."""
    series = (
        SeriesSpec(
            "SP", lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
        ),
        SeriesSpec("ND", GenericNeighborDesignating),
        SeriesSpec("MaxDeg", MaxDegHybrid),
        SeriesSpec("MinPri", MinPriHybrid),
    )
    return FigureSpec(
        figure_id="fig11",
        description="Selection options of the dynamic (first-receipt) protocol",
        panels=_panels_per_degree("fig11 selection", series, _ns(ns), degrees),
    )


def fig12_space(
    ns: Optional[Sequence[int]] = None,
    degrees: Sequence[float] = DEGREES,
) -> FigureSpec:
    """Figure 12: 2/3/4/5-hop versus global views (FR self-pruning)."""
    series = tuple(
        SeriesSpec(
            f"{k}-hop",
            lambda k=k: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=k),
        )
        for k in (2, 3, 4, 5)
    ) + (
        SeriesSpec(
            "global",
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=None),
        ),
    )
    return FigureSpec(
        figure_id="fig12",
        description="Local view radius (space) of dynamic self-pruning",
        panels=_panels_per_degree("fig12 space", series, _ns(ns), degrees),
    )


def fig13_priority(
    ns: Optional[Sequence[int]] = None,
    degrees: Sequence[float] = DEGREES,
) -> FigureSpec:
    """Figure 13: ID vs Degree vs NCR priorities (FR self-pruning, 2-hop)."""

    def fr() -> GenericSelfPruning:
        return GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)

    series = (
        SeriesSpec("ID", fr, scheme_name="id"),
        SeriesSpec("Degree", fr, scheme_name="degree"),
        SeriesSpec("NCR", fr, scheme_name="ncr"),
    )
    return FigureSpec(
        figure_id="fig13",
        description="Priority functions of dynamic self-pruning",
        panels=_panels_per_degree("fig13 priority", series, _ns(ns), degrees),
    )


def _hop_panels(
    title: str,
    make_series,
    ns: Tuple[int, ...],
    degrees: Sequence[float],
    hop_values: Sequence[int] = (2, 3),
) -> Tuple[PanelSpec, ...]:
    panels = []
    for hops in hop_values:
        for degree in degrees:
            panels.append(
                PanelSpec(
                    title=f"{title}, d={degree:g}, {hops}-hop",
                    degree=degree,
                    ns=ns,
                    series=make_series(hops),
                )
            )
    return tuple(panels)


def fig14_static(
    ns: Optional[Sequence[int]] = None,
    degrees: Sequence[float] = DEGREES,
) -> FigureSpec:
    """Figure 14: static algorithms — MPR, Span, Rule-k, Generic.

    All self-pruning entries use NCR priority (Span's original
    configuration); MPR's designating-time priority is built into its
    forwarding rule, so its scheme setting is irrelevant.
    """

    def make_series(hops: int) -> Tuple[SeriesSpec, ...]:
        return (
            SeriesSpec("MPR", MultipointRelay),
            SeriesSpec(
                "Span", lambda h=hops: Span(hops=h), scheme_name="ncr"
            ),
            SeriesSpec(
                "Rule k", lambda h=hops: RuleK(hops=h), scheme_name="ncr"
            ),
            SeriesSpec(
                "Generic",
                lambda h=hops: GenericStatic(hops=h),
                scheme_name="ncr",
            ),
        )

    return FigureSpec(
        figure_id="fig14",
        description="Static broadcast algorithms",
        panels=_hop_panels("fig14 static", make_series, _ns(ns), degrees),
    )


def fig15_first_receipt(
    ns: Optional[Sequence[int]] = None,
    degrees: Sequence[float] = DEGREES,
) -> FigureSpec:
    """Figure 15: first-receipt algorithms — DP, PDP, LENWB, Generic.

    All entries use node degree as the priority (LENWB's original
    configuration).
    """

    def make_series(hops: int) -> Tuple[SeriesSpec, ...]:
        def lenwb(h: int = hops) -> LENWB:
            protocol = LENWB()
            protocol.hops = h
            return protocol

        return (
            SeriesSpec("DP", DominantPruning, scheme_name="degree"),
            SeriesSpec("PDP", PartialDominantPruning, scheme_name="degree"),
            SeriesSpec("LENWB", lenwb, scheme_name="degree"),
            SeriesSpec(
                "Generic",
                lambda h=hops: GenericSelfPruning(
                    Timing.FIRST_RECEIPT, hops=h
                ),
                scheme_name="degree",
            ),
        )

    return FigureSpec(
        figure_id="fig15",
        description="First-receipt broadcast algorithms",
        panels=_hop_panels(
            "fig15 first-receipt", make_series, _ns(ns), degrees
        ),
    )


def fig16_backoff(
    ns: Optional[Sequence[int]] = None,
    degrees: Sequence[float] = DEGREES,
) -> FigureSpec:
    """Figure 16: first-receipt-with-backoff — SBA vs Generic (id priority)."""

    def make_series(hops: int) -> Tuple[SeriesSpec, ...]:
        def sba(h: int = hops) -> SBA:
            protocol = SBA()
            protocol.hops = h
            return protocol

        return (
            SeriesSpec("SBA", sba),
            SeriesSpec(
                "Generic",
                lambda h=hops: GenericSelfPruning(
                    Timing.FIRST_RECEIPT_BACKOFF, hops=h
                ),
            ),
        )

    return FigureSpec(
        figure_id="fig16",
        description="First-receipt-with-backoff broadcast algorithms",
        panels=_hop_panels("fig16 backoff", make_series, _ns(ns), degrees),
    )


#: Figure id to builder, for the CLI and the benchmarks.
FIGURE_BUILDERS = {
    "fig10": fig10_timing,
    "fig11": fig11_selection,
    "fig12": fig12_space,
    "fig13": fig13_priority,
    "fig14": fig14_static,
    "fig15": fig15_first_receipt,
    "fig16": fig16_backoff,
}
