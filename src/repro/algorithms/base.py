"""Protocol interface: how broadcast algorithms plug into the engine.

Every algorithm — the generic framework and each special case — is a
:class:`BroadcastProtocol`.  The engine drives the protocol through three
hooks:

* :meth:`BroadcastProtocol.prepare` — once per deployment, for proactive
  state (static forward sets, MPR sets);
* :meth:`BroadcastProtocol.should_forward` — the forward/non-forward
  decision at the protocol's timing point, given a :class:`NodeContext`
  capturing everything the node may legitimately know;
* :meth:`BroadcastProtocol.designate` — the designated-forward-neighbor
  selection executed when the node forwards.

Class attributes declare the protocol's position along the paper's four
axes: ``timing`` (Section 4.1), ``strict_designation`` (selection, 4.2),
``hops`` (space, 4.3), and the priority scheme is supplied by the
simulation environment (4.4).
"""

from __future__ import annotations

import enum
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Set, Tuple

from ..core.views import View
from ..graph.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import SimulationEnvironment
    from ..sim.packet import Packet

__all__ = ["Timing", "Decision", "NodeContext", "BroadcastProtocol"]


class Timing(enum.Enum):
    """When the forward/non-forward status is computed (Section 4.1)."""

    #: Proactively, from the static view, before any broadcast.
    STATIC = "static"
    #: Right at the first receipt of the broadcast packet.
    FIRST_RECEIPT = "fr"
    #: After a uniformly random backoff following the first receipt.
    FIRST_RECEIPT_BACKOFF = "frb"
    #: After a backoff proportional to the inverse of the node degree.
    FIRST_RECEIPT_BACKOFF_DEGREE = "frbd"


@dataclass(frozen=True)
class Decision:
    """Outcome of a node's status decision."""

    forward: bool
    designated: FrozenSet[int] = frozenset()


@dataclass
class NodeContext:
    """Everything node ``node`` may use when deciding its status.

    The context exposes only legitimately local knowledge: the k-hop view
    graph, snooped/piggybacked broadcast state, and the packets the node
    received.  Algorithms must not reach into the environment's full graph.
    """

    node: int
    is_source: bool
    time: float
    env: "SimulationEnvironment"
    hops: Optional[int]
    known_visited: FrozenSet[int]
    known_designated: FrozenSet[int]
    designators: FrozenSet[int]
    first_packet: Optional["Packet"]
    rng: random.Random

    @property
    def first_sender(self) -> Optional[int]:
        """The sender of the first received copy (``None`` at the source)."""
        return self.first_packet.sender if self.first_packet else None

    @property
    def view_graph(self) -> Topology:
        """The node's k-hop view graph ``G_k(node)`` (cached per deployment)."""
        return self.env.view_graph(self.node, self.hops)

    def neighbors(self) -> FrozenSet[int]:
        """``N(node)`` — 1-hop information, always available."""
        return self.view_graph.neighbors(self.node)

    def two_hop_neighbors(self) -> Set[int]:
        """``N2(node)`` as known from the view graph (needs ``hops >= 2``)."""
        return self.view_graph.k_hop_neighbors(self.node, 2)

    def neighbor_neighbors(self, neighbor: int) -> FrozenSet[int]:
        """``N(neighbor)`` as visible in the view graph."""
        return self.view_graph.neighbors(neighbor)

    def view(self) -> View:
        """The node's current local view: k-hop topology + broadcast state."""
        return self.env.make_view(
            self.view_graph, self.known_visited, self.known_designated
        )

    def static_view(self) -> View:
        """The static local view: same topology, no broadcast state."""
        return self.env.make_view(self.view_graph, frozenset(), frozenset())

    def priority(self, node: int) -> Tuple[float, ...]:
        """Priority of ``node`` under the current (dynamic) local view."""
        return self.view().priority(node)


class BroadcastProtocol(ABC):
    """Base class for every broadcast algorithm.

    Subclasses set the axis attributes and implement
    :meth:`should_forward`; neighbor-designating protocols also implement
    :meth:`designate` and usually set ``strict_designation``.
    """

    #: Registry/display name.
    name: str = "abstract"
    #: Decision timing (Section 4.1).
    timing: Timing = Timing.FIRST_RECEIPT
    #: Hops of neighborhood information; ``None`` means the global view.
    hops: Optional[int] = 2
    #: How many recently-visited entries the packet carries (Section 5).
    piggyback_h: int = 1
    #: Whether packets carry the sender's 2-hop set (TDP only).
    piggyback_two_hop: bool = False
    #: Whether a designated node must forward even if self-pruning would
    #: allow otherwise (the strict neighbor-designating rule).
    strict_designation: bool = False
    #: The relaxed rule of Section 4.2: a designated node may stay silent
    #: *if it meets the coverage condition at its raised (S = 1.5)
    #: priority*.  The engine re-invokes ``should_forward`` whenever a
    #: designation reaches a node that already decided non-forward —
    #: without this re-evaluation the relaxed rule is unsound: the node's
    #: earlier decision used its old (S = 1) threshold while other nodes
    #: now rely on it at 1.5, which can close a cyclic dependency and
    #: break coverage.
    relaxed_designation: bool = False
    #: Backoff window for the FRB/FRBD timings; sized to dominate the MAC
    #: delay so that same-wave forwarders can be overheard during backoff.
    backoff_window: float = 10.0
    #: Whether ``should_forward``/``designate`` are pure functions of the
    #: :class:`NodeContext`'s knowledge fields (node, snooped state,
    #: first packet).  The broadcast service reuses such decisions across
    #: messages within one topology epoch; protocols that consult
    #: ``ctx.rng`` or other per-call state (e.g. gossip) must opt out.
    cacheable_decisions: bool = True

    def prepare(self, env: "SimulationEnvironment") -> None:
        """Per-deployment proactive computation (default: none)."""

    @abstractmethod
    def should_forward(self, ctx: NodeContext) -> bool:
        """The node's own forward/non-forward decision.

        Called at the protocol's timing point.  The engine independently
        forces forwarding for the source and — under strict designation —
        for designated nodes, so implementations answer only for the
        self-pruning component.
        """

    def designate(self, ctx: NodeContext) -> FrozenSet[int]:
        """Designated forward neighbors announced when forwarding."""
        return frozenset()

    def decision_delay(self, ctx: NodeContext, rng: random.Random) -> float:
        """Delay between first receipt and the status decision."""
        if self.timing in (Timing.STATIC, Timing.FIRST_RECEIPT):
            return 0.0
        if self.timing is Timing.FIRST_RECEIPT_BACKOFF:
            return rng.uniform(0.0, self.backoff_window)
        degree = max(1, len(ctx.neighbors()))
        return self.backoff_window / degree

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
