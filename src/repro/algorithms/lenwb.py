"""LENWB — Lightweight and Efficient Network-Wide Broadcast (Sucec & Marsic).

First-receipt self-pruning: when node ``v`` receives the broadcast packet
from ``u``, it computes the set ``C`` of nodes connected to ``u`` via
nodes with priorities higher than ``v``'s.  If ``N(v) ⊆ C``, node ``v`` is
non-forward.  In coverage-condition terms this is the strong coverage
condition with a coverage set built around a single visited node — the
last forwarder — plus un-visited higher-priority nodes.

The original configuration uses node degree as the priority and 2-hop
information; the connectivity requirement is evaluated inside the k-hop
view, the paper's "restricted implementation".
"""

from __future__ import annotations

from collections import deque
from typing import Set

from ..core.views import View
from .base import BroadcastProtocol, NodeContext, Timing

__all__ = ["LENWB", "connected_via_higher_priority"]


def connected_via_higher_priority(view: View, start: int, v: int) -> Set[int]:
    """Nodes connected to ``start`` via intermediates above ``Pr(v)``.

    Returns the set ``C``: the component of ``start`` within the
    higher-priority subgraph, plus every node adjacent to it (a path may
    *end* at any node; only intermediates need the priority).  ``start``
    itself must rank above ``v`` — with LENWB it is the visited last
    forwarder, whose status-2 priority tops everything.
    """
    threshold = view.priority(v)
    eligible = {
        node
        for node in view.graph
        if node != v and view.priority(node) > threshold
    }
    if start not in eligible:
        return set()
    component: Set[int] = {start}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for neighbor in sorted(view.graph.neighbors(node)):
            if neighbor in eligible and neighbor not in component:
                component.add(neighbor)
                frontier.append(neighbor)
    reachable = set(component)
    for node in component:
        reachable |= view.graph.neighbors(node)
    reachable.discard(v)
    return reachable


class LENWB(BroadcastProtocol):
    """Forward unless ``N(v)`` is reachable from the last forwarder."""

    name = "lenwb"
    timing = Timing.FIRST_RECEIPT
    hops = 2
    piggyback_h = 1

    def should_forward(self, ctx: NodeContext) -> bool:
        sender = ctx.first_sender
        if sender is None:  # pragma: no cover - source is engine-forced
            return True
        # LENWB uses only the last visited node: the view marks just the
        # sender as visited, regardless of other snooped information.
        view = ctx.env.make_view(
            ctx.view_graph, frozenset({sender}), frozenset()
        )
        covered = connected_via_higher_priority(view, sender, ctx.node)
        return not (set(view.graph.neighbors(ctx.node)) <= covered)
