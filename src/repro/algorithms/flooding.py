"""Blind flooding: the zero-information baseline.

Every node forwards the broadcast packet exactly once.  Flooding trivially
ensures coverage on a connected graph and marks the upper end of the
forward-node-count scale against which all pruning schemes are measured.
"""

from __future__ import annotations

from .base import BroadcastProtocol, NodeContext, Timing

__all__ = ["Flooding"]


class Flooding(BroadcastProtocol):
    """Forward on first receipt, unconditionally."""

    name = "flooding"
    timing = Timing.FIRST_RECEIPT
    hops = 1
    piggyback_h = 0

    def should_forward(self, ctx: NodeContext) -> bool:
        return True
