"""Protocol registry and the paper's Table 1 classification.

Maps protocol names to factories plus classification metadata (timing
category and selection style), from which the Table 1 reproduction is
generated.  Factories take no arguments and return fresh protocol
instances with the configuration used in the paper's comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .ahbp import AHBP
from .base import BroadcastProtocol, Timing
from .dominant_pruning import (
    DominantPruning,
    PartialDominantPruning,
    TotalDominantPruning,
)
from .flooding import Flooding
from .generic import (
    GenericNeighborDesignating,
    GenericSelfPruning,
    GenericStatic,
)
from .hybrid import MaxDegHybrid, MinPriHybrid, RelaxedMaxDegHybrid
from .lenwb import LENWB
from .mpr import MultipointRelay
from .rule_k import RuleK
from .sba import SBA
from .span import Span
from .stojmenovic import Stojmenovic
from .wu_li import WuLi

__all__ = ["ProtocolInfo", "REGISTRY", "create", "names", "table1_rows"]

Factory = Callable[[], BroadcastProtocol]


@dataclass(frozen=True)
class ProtocolInfo:
    """Registry entry: factory plus classification metadata."""

    name: str
    factory: Factory
    category: str  # "static" | "first-receipt" | "first-receipt-with-backoff"
    selection: str  # "self-pruning" | "neighbor-designating" | "hybrid"
    existing: bool  # appears in the paper's Table 1 (vs derived/generic)
    reference: str


def _entries() -> List[ProtocolInfo]:
    return [
        ProtocolInfo(
            "flooding", Flooding, "first-receipt", "self-pruning", False,
            "baseline",
        ),
        ProtocolInfo(
            "wu-li", WuLi, "static", "self-pruning", True,
            "Wu & Li 1999 (marking + Rules 1, 2)",
        ),
        ProtocolInfo(
            "rule-k", RuleK, "static", "self-pruning", True,
            "Dai & Wu 2003 (Rule k)",
        ),
        ProtocolInfo(
            "span", Span, "static", "self-pruning", True,
            "Chen et al. 2002 (enhanced Span)",
        ),
        ProtocolInfo(
            "mpr", MultipointRelay, "static", "neighbor-designating", True,
            "Qayyum et al. 2002 (multipoint relays)",
        ),
        ProtocolInfo(
            "lenwb", LENWB, "first-receipt", "self-pruning", True,
            "Sucec & Marsic 2000 (LENWB)",
        ),
        ProtocolInfo(
            "dp", DominantPruning, "first-receipt", "neighbor-designating",
            True, "Lim & Kim 2001 (dominant pruning)",
        ),
        ProtocolInfo(
            "tdp", TotalDominantPruning, "first-receipt",
            "neighbor-designating", False, "Lou & Wu 2002 (TDP)",
        ),
        ProtocolInfo(
            "pdp", PartialDominantPruning, "first-receipt",
            "neighbor-designating", True, "Lou & Wu 2002 (PDP)",
        ),
        ProtocolInfo(
            "ahbp", AHBP, "first-receipt", "neighbor-designating",
            False, "Peng & Lu 2002 (AHBP)",
        ),
        ProtocolInfo(
            "sba", SBA, "first-receipt-with-backoff", "self-pruning", True,
            "Peng & Lu 2000 (SBA)",
        ),
        ProtocolInfo(
            "stojmenovic", Stojmenovic, "first-receipt-with-backoff",
            "self-pruning", False,
            "Stojmenovic et al. 2002 (neighbor elimination)",
        ),
        ProtocolInfo(
            "hybrid-maxdeg", MaxDegHybrid, "first-receipt", "hybrid", False,
            "Section 6.4 (MaxDeg)",
        ),
        ProtocolInfo(
            "hybrid-minpri", MinPriHybrid, "first-receipt", "hybrid", False,
            "Section 6.4 (MinPri)",
        ),
        ProtocolInfo(
            "hybrid-maxdeg-relaxed", RelaxedMaxDegHybrid, "first-receipt",
            "hybrid", False, "Section 4.2 relaxed designation (MaxDeg)",
        ),
        ProtocolInfo(
            "generic-nd", GenericNeighborDesignating, "first-receipt",
            "neighbor-designating", False, "generic framework (ND instance)",
        ),
        ProtocolInfo(
            "generic-static", GenericStatic, "static", "self-pruning", False,
            "generic framework (static)",
        ),
        ProtocolInfo(
            "generic-fr",
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT),
            "first-receipt", "self-pruning", False,
            "generic framework (first receipt)",
        ),
        ProtocolInfo(
            "generic-frb",
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT_BACKOFF),
            "first-receipt-with-backoff", "self-pruning", False,
            "generic framework (backoff)",
        ),
        ProtocolInfo(
            "generic-frbd",
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT_BACKOFF_DEGREE),
            "first-receipt-with-backoff", "self-pruning", False,
            "generic framework (degree backoff)",
        ),
    ]


REGISTRY: Dict[str, ProtocolInfo] = {info.name: info for info in _entries()}


def names() -> List[str]:
    """All registered protocol names."""
    return list(REGISTRY)


def create(name: str) -> BroadcastProtocol:
    """A fresh instance of the named protocol."""
    try:
        return REGISTRY[name].factory()
    except KeyError as exc:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(REGISTRY)}"
        ) from exc


def table1_rows() -> List[Tuple[str, str, str]]:
    """The paper's Table 1: (category, self-pruning, neighbor-designating).

    Rows list the *existing* algorithms the paper classifies, grouped by
    timing category.
    """
    categories = ["static", "first-receipt", "first-receipt-with-backoff"]
    rows: List[Tuple[str, str, str]] = []
    for category in categories:
        self_pruning = [
            info.name
            for info in REGISTRY.values()
            if info.existing
            and info.category == category
            and info.selection == "self-pruning"
        ]
        designating = [
            info.name
            for info in REGISTRY.values()
            if info.existing
            and info.category == category
            and info.selection == "neighbor-designating"
        ]
        rows.append(
            (
                category,
                ", ".join(self_pruning) or "-",
                ", ".join(designating) or "-",
            )
        )
    return rows
