"""Wu and Li's marking process with pruning Rules 1 and 2 (static).

A node is *marked* as a gateway when it has two neighbors that are not
directly connected.  Two pruning rules then shrink the gateway set:

* **Rule 1** — a gateway ``v`` becomes a non-gateway if all of its
  neighbors are also neighbors of a single coverage node ``u`` with higher
  priority;
* **Rule 2** — a gateway ``v`` becomes a non-gateway if all of its
  neighbors are covered by two directly-connected coverage nodes ``u`` and
  ``w``, both with higher priority.

Coverage nodes are drawn from ``N(v)`` (the 2-hop-information variant the
paper describes; a neighbor's-neighbor variant would need 3-hop views).
The priority is whatever scheme the environment supplies — the original
paper uses node id, or node degree with id tie-break.
"""

from __future__ import annotations

from itertools import combinations

from ..core.views import View
from .static_base import StaticSelfPruningProtocol

__all__ = ["WuLi", "is_marked", "rule1_applies", "rule2_applies"]


def is_marked(view: View, node: int) -> bool:
    """The marking process: two neighbors not directly connected."""
    neighbors = sorted(view.graph.neighbors(node))
    return any(
        not view.graph.has_edge(u, w)
        for u, w in combinations(neighbors, 2)
    )


def rule1_applies(view: View, node: int) -> bool:
    """Rule 1: one higher-priority neighbor covers ``N(node)``."""
    neighbors = view.graph.neighbors(node)
    threshold = view.priority(node)
    for u in neighbors:
        if view.priority(u) <= threshold:
            continue
        if neighbors - {u} <= view.graph.neighbors(u):
            return True
    return False


def rule2_applies(view: View, node: int) -> bool:
    """Rule 2: two connected higher-priority neighbors cover ``N(node)``."""
    neighbors = sorted(view.graph.neighbors(node))
    threshold = view.priority(node)
    eligible = [u for u in neighbors if view.priority(u) > threshold]
    for u, w in combinations(eligible, 2):
        if not view.graph.has_edge(u, w):
            continue
        coverage = view.graph.neighbors(u) | view.graph.neighbors(w)
        if set(neighbors) - {u, w} <= coverage:
            return True
    return False


class WuLi(StaticSelfPruningProtocol):
    """Marking process + Rules 1 and 2, evaluated on static 2-hop views."""

    name = "wu-li"
    hops = 2

    def is_non_forward(self, view: View, node: int) -> bool:
        if not is_marked(view, node):
            return True
        return rule1_applies(view, node) or rule2_applies(view, node)
