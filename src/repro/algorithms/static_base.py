"""Shared base for proactive (static) self-pruning protocols.

Wu & Li, Dai & Wu's Rule-k, Span, and the static Generic instance all
follow the same shape: during ``prepare`` every node evaluates a predicate
on its *static* local view (topology only, no broadcast state); nodes
failing the non-forward test form the proactive forward set, over which the
broadcast is then relayed.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import FrozenSet, Set

from ..core.views import View
from .base import BroadcastProtocol, NodeContext, Timing

__all__ = ["StaticSelfPruningProtocol"]


class StaticSelfPruningProtocol(BroadcastProtocol):
    """Computes a forward set in ``prepare`` from static local views."""

    timing = Timing.STATIC
    piggyback_h = 0
    strict_designation = False

    def __init__(self) -> None:
        self._forward_set: Set[int] = set()

    @property
    def forward_set(self) -> FrozenSet[int]:
        """The proactively computed forward node set."""
        return frozenset(self._forward_set)

    @abstractmethod
    def is_non_forward(self, view: View, node: int) -> bool:
        """The protocol's pruning rule on a static local view."""

    def prepare(self, env) -> None:
        self._forward_set = set()
        for node in env.graph.nodes():
            view = env.make_view(
                env.view_graph(node, self.hops), frozenset(), frozenset()
            )
            if not self.is_non_forward(view, node):
                self._forward_set.add(node)

    def should_forward(self, ctx: NodeContext) -> bool:
        return ctx.node in self._forward_set
