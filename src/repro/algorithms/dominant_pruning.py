"""Dominant pruning and its refinements: DP, TDP, PDP.

All three are strict neighbor-designating, first-receipt protocols: only
designated nodes (and the source) forward, and a forwarding node ``v``
that received the packet from ``u`` greedily designates neighbors to cover
its not-yet-covered 2-hop neighborhood.  They differ in how much of
``N2(v)`` they must still cover:

* **DP** (Lim & Kim): candidates ``X = N(v) − N(u)``, targets
  ``Y = N2(v) − N(u) − N(v)``;
* **TDP** (Lou & Wu): the packet piggybacks ``N2(u)``, so
  ``Y = N2(v) − N2(u)`` — fewer targets at the cost of fatter packets;
* **PDP** (Lou & Wu): no piggybacking; additionally removes the neighbors
  of common neighbors, ``Y = N2(v) − N(u) − N(v) − N(N(u) ∩ N(v))``,
  achieving nearly TDP's reduction for free.

Targets unreachable from the candidate set are dropped (they lie in the
previous forwarder's coverage responsibility — see
``repro.algorithms.designation``).
"""

from __future__ import annotations

from typing import FrozenSet, Set

from .base import BroadcastProtocol, NodeContext, Timing
from .designation import greedy_cover_designation

__all__ = ["DominantPruning", "TotalDominantPruning", "PartialDominantPruning"]


class DominantPruning(BroadcastProtocol):
    """Lim and Kim's dominant pruning."""

    name = "dp"
    timing = Timing.FIRST_RECEIPT
    hops = 2
    piggyback_h = 1
    strict_designation = True

    def should_forward(self, ctx: NodeContext) -> bool:
        return False

    def designate(self, ctx: NodeContext) -> FrozenSet[int]:
        graph = ctx.view_graph
        node = ctx.node
        neighbors = set(graph.neighbors(node))
        candidates = set(neighbors)
        targets = set(graph.k_hop_neighbors(node, 2)) - neighbors - {node}
        sender = ctx.first_sender
        if sender is not None and sender in graph:
            sender_nbrs = set(graph.neighbors(sender)) | {sender}
            candidates -= sender_nbrs
            targets -= sender_nbrs
        targets = self.reduce_targets(ctx, targets)
        return greedy_cover_designation(graph, candidates, targets)

    def reduce_targets(self, ctx: NodeContext, targets: Set[int]) -> Set[int]:
        """Hook for TDP/PDP target reduction; DP keeps all targets."""
        return targets


class TotalDominantPruning(DominantPruning):
    """TDP: the sender piggybacks ``N2(u)``; cover only ``N2(v) − N2(u)``."""

    name = "tdp"
    piggyback_two_hop = True

    def reduce_targets(self, ctx: NodeContext, targets: Set[int]) -> Set[int]:
        packet = ctx.first_packet
        if packet is None or packet.sender_two_hop is None:
            return targets
        return targets - packet.sender_two_hop


class PartialDominantPruning(DominantPruning):
    """PDP: drop neighbors of the common neighbors ``N(N(u) ∩ N(v))``."""

    name = "pdp"

    def reduce_targets(self, ctx: NodeContext, targets: Set[int]) -> Set[int]:
        sender = ctx.first_sender
        graph = ctx.view_graph
        if sender is None or sender not in graph:
            return targets
        common = set(graph.neighbors(sender)) & set(
            graph.neighbors(ctx.node)
        )
        reduced = set(targets)
        for w in common:
            reduced -= set(graph.neighbors(w))
        return reduced
