"""Broadcast protocols: the generic framework and every special case."""

from .ahbp import AHBP
from .base import BroadcastProtocol, Decision, NodeContext, Timing
from .dominant_pruning import (
    DominantPruning,
    PartialDominantPruning,
    TotalDominantPruning,
)
from .flooding import Flooding
from .gossip import Gossip
from .generic import (
    GenericNeighborDesignating,
    GenericSelfPruning,
    GenericStatic,
)
from .hybrid import Hybrid, MaxDegHybrid, MinPriHybrid, RelaxedMaxDegHybrid
from .lenwb import LENWB
from .mpr import MultipointRelay
from .precomputed import PrecomputedForwardSet
from .registry import REGISTRY, ProtocolInfo, create, names, table1_rows
from .rule_k import RuleK
from .sba import SBA
from .span import Span
from .stojmenovic import Stojmenovic
from .wu_li import WuLi

__all__ = [
    "AHBP",
    "BroadcastProtocol",
    "Decision",
    "NodeContext",
    "Timing",
    "DominantPruning",
    "PartialDominantPruning",
    "TotalDominantPruning",
    "Flooding",
    "Gossip",
    "GenericNeighborDesignating",
    "GenericSelfPruning",
    "GenericStatic",
    "Hybrid",
    "MaxDegHybrid",
    "MinPriHybrid",
    "RelaxedMaxDegHybrid",
    "LENWB",
    "MultipointRelay",
    "PrecomputedForwardSet",
    "REGISTRY",
    "ProtocolInfo",
    "create",
    "names",
    "table1_rows",
    "RuleK",
    "SBA",
    "Span",
    "Stojmenovic",
    "WuLi",
]
