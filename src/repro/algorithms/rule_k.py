"""Dai and Wu's Rule-k (static self-pruning).

Rule-k generalises Wu & Li's Rules 1 and 2: a gateway becomes a
non-gateway if all of its neighbors are covered by *any number* of
coverage nodes that are connected among themselves and have higher
priorities.  In the generic framework this is exactly the **strong
coverage condition** on a static view; the "restricted implementation"
with 2- or 3-hop information simply evaluates it on the k-hop view graph,
where the connectivity of coverage nodes is checked within the view.

Nodes whose neighbors are pairwise connected are non-gateways outright
(the marking process — a direct edge is a replacement path that needs no
coverage node).
"""

from __future__ import annotations

from ..core.coverage import strong_coverage_condition
from ..core.views import View
from .static_base import StaticSelfPruningProtocol
from .wu_li import is_marked

__all__ = ["RuleK"]


class RuleK(StaticSelfPruningProtocol):
    """Strong coverage condition on static k-hop views (k = 2 or 3)."""

    def __init__(self, hops: int = 2) -> None:
        super().__init__()
        if hops < 2:
            raise ValueError(
                f"Rule-k needs at least 2-hop information, got {hops}"
            )
        self.hops = hops
        self.name = f"rule-k-{hops}hop"

    def is_non_forward(self, view: View, node: int) -> bool:
        if not is_marked(view, node):
            return True
        return strong_coverage_condition(view, node)
