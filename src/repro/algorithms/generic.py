"""The generic framework instances (Algorithm 1) at every timing/selection.

These are the protocols labelled "Generic" in the paper's figures plus the
building blocks of Figures 10-13:

* :class:`GenericSelfPruning` — the full coverage condition checked by each
  node itself, at any timing (Static / FR / FRB / FRBD) and any view radius
  (including the global view);
* :class:`GenericStatic` — the proactive variant: forward sets computed
  from static local views before any broadcast;
* :class:`GenericNeighborDesignating` — the strict neighbor-designating
  instance: only designated nodes forward, each forwarder greedily
  designates 1-hop neighbors to cover its uncovered 2-hop neighborhood.

Per Section 7.2, the dynamic Generic instances piggyback ``h = 2`` recently
visited nodes ("each node also knows the second last visited node").
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from ..core.coverage import coverage_condition, strong_coverage_condition
from .base import BroadcastProtocol, NodeContext, Timing
from .designation import greedy_cover_designation

__all__ = [
    "GenericSelfPruning",
    "GenericStatic",
    "GenericNeighborDesignating",
]

_TIMING_LABEL = {
    Timing.STATIC: "static",
    Timing.FIRST_RECEIPT: "fr",
    Timing.FIRST_RECEIPT_BACKOFF: "frb",
    Timing.FIRST_RECEIPT_BACKOFF_DEGREE: "frbd",
}


class GenericSelfPruning(BroadcastProtocol):
    """Self-pruning with the generic (or strong) coverage condition.

    Parameters
    ----------
    timing:
        Any of the four timing options.  ``STATIC`` here still evaluates at
        receipt time but on the static view — prefer :class:`GenericStatic`
        for a faithful proactive protocol; it produces identical forward
        sets.
    hops:
        View radius ``k``; ``None`` selects the global view.
    strong:
        Use the O(D^2) strong coverage condition instead of the full O(D^3)
        condition.
    """

    strict_designation = False

    def __init__(
        self,
        timing: Timing = Timing.FIRST_RECEIPT,
        hops: Optional[int] = 2,
        strong: bool = False,
        piggyback_h: int = 2,
        backoff_window: float = 10.0,
    ) -> None:
        self.timing = timing
        self.hops = hops
        self.strong = strong
        self.piggyback_h = piggyback_h
        self.backoff_window = backoff_window
        radius = "global" if hops is None else f"{hops}hop"
        condition = "strong" if strong else "coverage"
        self.name = f"generic-sp-{_TIMING_LABEL[timing]}-{radius}-{condition}"

    def should_forward(self, ctx: NodeContext) -> bool:
        view = (
            ctx.static_view() if self.timing is Timing.STATIC else ctx.view()
        )
        condition = (
            strong_coverage_condition if self.strong else coverage_condition
        )
        return not condition(view, ctx.node)


class GenericStatic(BroadcastProtocol):
    """Proactive generic framework: forward sets from static local views.

    ``prepare`` evaluates the coverage condition for every node on its own
    static k-hop view; the broadcast then simply relays over the resulting
    forward node set.  This is the "Static" series of Figure 10 and the
    "Generic" entry of Figure 14.
    """

    timing = Timing.STATIC
    strict_designation = False
    piggyback_h = 0

    def __init__(
        self,
        hops: Optional[int] = 2,
        strong: bool = False,
    ) -> None:
        self.hops = hops
        self.strong = strong
        radius = "global" if hops is None else f"{hops}hop"
        condition = "strong" if strong else "coverage"
        self.name = f"generic-static-{radius}-{condition}"
        self._forward_set: Set[int] = set()

    @property
    def forward_set(self) -> FrozenSet[int]:
        """The proactively computed forward node set."""
        return frozenset(self._forward_set)

    def prepare(self, env) -> None:
        condition = (
            strong_coverage_condition if self.strong else coverage_condition
        )
        self._forward_set = set()
        nodes = env.graph.nodes()
        if self.hops is None and nodes:
            # The global view is node-independent, so one shared view
            # serves every node: per-view memos (and the numpy backend's
            # whole-graph sweep) amortise across the node set instead of
            # being rebuilt per node.  Verdicts are unchanged — the
            # per-node views were equal value objects.
            view = env.make_view(
                env.view_graph(nodes[0], None), frozenset(), frozenset()
            )
            for node in nodes:
                if not condition(view, node):
                    self._forward_set.add(node)
            return
        for node in nodes:
            view = env.make_view(
                env.view_graph(node, self.hops), frozenset(), frozenset()
            )
            if not condition(view, node):
                self._forward_set.add(node)

    def should_forward(self, ctx: NodeContext) -> bool:
        return ctx.node in self._forward_set


class GenericNeighborDesignating(BroadcastProtocol):
    """Strict neighbor-designating instance of the generic framework.

    Only designated nodes (and the source) forward.  A forwarding node
    ``v`` designates, from the candidates ``N(v) − N(u) − {u}`` minus
    already-visited nodes, a greedy minimal subset covering the 2-hop
    neighbors not already covered by ``u`` or other known visited nodes.
    This is the "ND" series of Figure 11.
    """

    timing = Timing.FIRST_RECEIPT
    strict_designation = True
    hops = 2
    piggyback_h = 1

    def __init__(self) -> None:
        self.name = "generic-nd"

    def should_forward(self, ctx: NodeContext) -> bool:
        return False

    def designate(self, ctx: NodeContext) -> FrozenSet[int]:
        graph = ctx.view_graph
        node = ctx.node
        index, masks = graph.adjacency_masks()
        neighbors_mask = masks[index.position(node)]
        targets_mask = (
            graph.k_hop_mask(node, 2) & ~neighbors_mask & ~index.bit(node)
        )
        candidates = (
            set(index.members(neighbors_mask))
            - ctx.known_visited
            - ctx.known_designated
        )
        sender = ctx.first_sender
        if sender is not None and sender in index:
            sender_closed = (
                masks[index.position(sender)] | index.bit(sender)
            )
            candidates -= set(index.members(sender_closed))
            targets_mask &= ~sender_closed
        # 2-hop targets already covered by known visited nodes or by nodes
        # someone already designated (under the strict rule those are
        # guaranteed to forward, so their neighborhoods are handled).
        for handled in ctx.known_visited | ctx.known_designated:
            if handled in index:
                targets_mask &= ~(
                    masks[index.position(handled)] | index.bit(handled)
                )
        targets = set(index.members(targets_mask))
        return greedy_cover_designation(graph, candidates, targets)
