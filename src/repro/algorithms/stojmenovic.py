"""Stojmenovic, Seddigh and Zunic's algorithm.

Applies Wu & Li's marking process and Rules 1/2 proactively (with node
degree as the priority, as their paper prescribes) and combines it with an
SBA-style *neighbor elimination* during the broadcast: a static gateway
still withholds its transmission when, by the end of its backoff, all of
its neighbors are covered by visited neighbors.  Non-gateways never
forward.

The original exploits geographic positions to cut the marking's
information cost to 1-hop; topologically that is equivalent to the 2-hop
implementation used here (paper assumption 2 rules location information
out of scope).
"""

from __future__ import annotations

from typing import Set

from ..core.views import View
from .base import BroadcastProtocol, NodeContext, Timing
from .sba import uncovered_neighbors
from .wu_li import is_marked, rule1_applies, rule2_applies

__all__ = ["Stojmenovic"]


class Stojmenovic(BroadcastProtocol):
    """Static marking + Rules 1/2, then dynamic neighbor elimination."""

    name = "stojmenovic"
    timing = Timing.FIRST_RECEIPT_BACKOFF
    hops = 2
    piggyback_h = 0

    def __init__(self, backoff_window: float = 10.0) -> None:
        self.backoff_window = backoff_window
        self._gateways: Set[int] = set()

    @property
    def gateways(self) -> Set[int]:
        """The statically marked (and rule-pruned) gateway set."""
        return set(self._gateways)

    def prepare(self, env) -> None:
        self._gateways = set()
        for node in env.graph.nodes():
            view = env.make_view(
                env.view_graph(node, self.hops), frozenset(), frozenset()
            )
            if not is_marked(view, node):
                continue
            if rule1_applies(view, node) or rule2_applies(view, node):
                continue
            self._gateways.add(node)

    def should_forward(self, ctx: NodeContext) -> bool:
        if ctx.node not in self._gateways:
            return False
        return bool(uncovered_neighbors(ctx))
