"""Probabilistic (gossip) broadcasting — the paper's contrast class.

The introduction sets deterministic pruning against the probabilistic
approach: "each node, upon receiving a broadcast packet, forwards the
packet with probability p ... the probabilistic approach cannot guarantee
full coverage" and conservative choices of ``p`` "yield a relatively
large forward node set."  This module implements that baseline so the
claim is measurable: :class:`Gossip` forwards with fixed probability
``p``, optionally always forwarding for the first ``sure_hops`` hops
(the standard GOSSIP1(p, k) refinement that protects the early phase,
where a single unlucky coin flip kills the whole broadcast).

Gossip is intentionally **not** part of the coverage-guaranteeing
registry: its delivery ratio is a random variable, which is exactly the
point of the comparison example and the reliability benchmarks.
"""

from __future__ import annotations

from .base import BroadcastProtocol, NodeContext, Timing

__all__ = ["Gossip"]


class Gossip(BroadcastProtocol):
    """Forward with probability ``p`` on first receipt.

    Parameters
    ----------
    p:
        Forwarding probability in [0, 1].
    sure_hops:
        Nodes whose first copy travelled fewer than this many hops
        forward deterministically (GOSSIP1(p, k)); 0 disables the guard.
    """

    timing = Timing.FIRST_RECEIPT
    hops = 1
    piggyback_h = 0
    #: The coin flip makes every decision per-call state; the broadcast
    #: service must not reuse it across messages.
    cacheable_decisions = False

    def __init__(self, p: float = 0.7, sure_hops: int = 1) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        if sure_hops < 0:
            raise ValueError(f"sure_hops must be non-negative, got {sure_hops}")
        self.p = p
        self.sure_hops = sure_hops
        self.name = f"gossip-{p:g}"

    def should_forward(self, ctx: NodeContext) -> bool:
        if self.sure_hops and ctx.first_packet is not None:
            # The trail length approximates the hop count of the first
            # copy only for small hops; the source's own transmission is
            # the 1-hop case, which is the one that matters.
            if ctx.first_packet.sender == ctx.first_packet.source:
                if self.sure_hops >= 1:
                    return True
        return ctx.rng.random() < self.p
