"""The Scalable Broadcast Algorithm (SBA) of Peng and Lu.

First-receipt-with-backoff self-pruning by *neighbor elimination*: on
receiving the broadcast packet a node waits out a random backoff; for
every neighbor ``u`` heard forwarding the packet it removes ``N[u]`` from
its own uncovered neighbor set.  If nothing remains uncovered when the
backoff expires, the node stays silent — its neighbors are all directly
adjacent to visited nodes, which (being connected through the source)
supply a replacement path for every pair, so the coverage condition holds.

SBA needs 2-hop information (to know ``N(u)`` for each neighbor ``u``).
"""

from __future__ import annotations

from typing import Set

from .base import BroadcastProtocol, NodeContext, Timing

__all__ = ["SBA", "uncovered_neighbors"]


def uncovered_neighbors(ctx: NodeContext) -> Set[int]:
    """``N(v)`` minus the closed neighborhoods of known visited neighbors."""
    graph = ctx.view_graph
    neighbors = set(graph.neighbors(ctx.node))
    remaining = set(neighbors)
    for visited in ctx.known_visited:
        if visited in neighbors:
            remaining -= set(graph.neighbors(visited)) | {visited}
    return remaining


class SBA(BroadcastProtocol):
    """Neighbor elimination after a random backoff."""

    name = "sba"
    timing = Timing.FIRST_RECEIPT_BACKOFF
    hops = 2
    piggyback_h = 0

    def __init__(self, backoff_window: float = 10.0) -> None:
        self.backoff_window = backoff_window

    def should_forward(self, ctx: NodeContext) -> bool:
        return bool(uncovered_neighbors(ctx))
