"""AHBP — the Ad Hoc Broadcast Protocol of Peng and Lu.

The remaining member of the paper's neighbor-designating taxonomy
(Section 1 cites it alongside DP and MPR).  Like dominant pruning, a
forwarding node designates *broadcast relay gateways* (BRGs) from its
1-hop neighbors to cover its 2-hop neighborhood; unlike DP, the packet
carries the sender's BRG set, and the next relay discounts every 2-hop
target already covered by the **sender's other BRGs** — they are
guaranteed to forward too, so covering their neighborhoods again is pure
redundancy.

In this library's terms AHBP is dominant pruning with a designation-
aware target reduction: ``Y = N2(v) − N(u) − N(v) − ∪_{w ∈ D(u)} N(w)``.
"""

from __future__ import annotations

from typing import Set

from .base import NodeContext
from .dominant_pruning import DominantPruning

__all__ = ["AHBP"]


class AHBP(DominantPruning):
    """Dominant pruning minus the co-designated BRGs' coverage."""

    name = "ahbp"

    def reduce_targets(self, ctx: NodeContext, targets: Set[int]) -> Set[int]:
        packet = ctx.first_packet
        if packet is None:
            return targets
        graph = ctx.view_graph
        reduced = set(targets)
        for gateway in packet.designated_by_sender():
            if gateway == ctx.node or gateway not in graph:
                continue
            reduced -= set(graph.neighbors(gateway)) | {gateway}
        return reduced
