"""Enhanced Span (static self-pruning).

Span elects *coordinators*: a node becomes a coordinator when two of its
neighbors cannot reach each other directly, via one intermediate
coordinator, or via two intermediate coordinators.  The original protocol
breaks ties with a backoff delay computed from energy, degree, and
neighborhood connectivity ratio; since simultaneous withdrawals can leave
the coordinator set disconnected, the paper compares against an *enhanced*
Span in which a node is a coordinator unless every neighbor pair is
connected via at most two intermediates **with higher priority values** —
i.e. the coverage condition restricted to un-visited intermediates and
replacement paths of at most three hops.

Implementing Span needs 3-hop information (two intermediates plus the
endpoints span three hops).
"""

from __future__ import annotations

from ..core.coverage import span_condition
from ..core.views import View
from .static_base import StaticSelfPruningProtocol

__all__ = ["Span"]


class Span(StaticSelfPruningProtocol):
    """Coverage condition restricted to ≤ 2 un-visited intermediates."""

    name = "span"
    hops = 3

    def __init__(self, hops: int = 3, max_intermediates: int = 2) -> None:
        super().__init__()
        self.hops = hops
        self.max_intermediates = max_intermediates
        self.name = f"span-{hops}hop"

    def is_non_forward(self, view: View, node: int) -> bool:
        return span_condition(view, node, self.max_intermediates)
