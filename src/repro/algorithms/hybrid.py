"""The dynamic hybrid algorithms of Section 6.4 (MaxDeg and MinPri).

A hybrid of self-pruning and neighbor-designating, first-receipt timing:

* a node designated by the previous forwarder must forward (the strict
  rule used in the paper's Figure 11 comparison);
* any other node applies the generic coverage condition to decide for
  itself;
* a forwarding node ``v`` selects **one** designated forward neighbor
  ``w ∉ {u} ∪ D(u)`` that covers at least one yet-uncovered 2-hop
  neighbor of ``v`` — choosing the maximum effective degree (``MaxDeg``)
  or the lowest id (``MinPri``).

Only 2-hop information is required.  MaxDeg is the new algorithm the
paper's simulations single out as outperforming both pure self-pruning
and pure neighbor-designating in sparse networks.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from ..core.coverage import coverage_condition
from .base import BroadcastProtocol, NodeContext, Timing

__all__ = ["Hybrid", "MaxDegHybrid", "MinPriHybrid"]


class Hybrid(BroadcastProtocol):
    """Self-pruning plus single-neighbor designation."""

    timing = Timing.FIRST_RECEIPT
    hops = 2
    piggyback_h = 1
    strict_designation = True

    #: ``"maxdeg"`` or ``"minpri"`` — the designated-neighbor choice rule.
    selection: str = "maxdeg"

    def should_forward(self, ctx: NodeContext) -> bool:
        return not coverage_condition(ctx.view(), ctx.node)

    def designate(self, ctx: NodeContext) -> FrozenSet[int]:
        graph = ctx.view_graph
        node = ctx.node
        neighbors = set(graph.neighbors(node))
        uncovered = set(graph.k_hop_neighbors(node, 2)) - neighbors - {node}
        candidates = set(neighbors)
        sender = ctx.first_sender
        if sender is not None:
            candidates.discard(sender)
            if sender in graph:
                uncovered -= set(graph.neighbors(sender)) | {sender}
        if ctx.first_packet is not None:
            prior = ctx.first_packet.designated_by_sender()
            candidates -= prior
            for x in prior:
                if x in graph:
                    uncovered -= set(graph.neighbors(x)) | {x}
        chosen = self._choose(graph, candidates, uncovered)
        return frozenset({chosen}) if chosen is not None else frozenset()

    def _choose(
        self, graph, candidates: Set[int], uncovered: Set[int]
    ) -> Optional[int]:
        contributing = {
            w: len(set(graph.neighbors(w)) & uncovered)
            for w in candidates
            if set(graph.neighbors(w)) & uncovered
        }
        if not contributing:
            return None
        if self.selection == "maxdeg":
            # Max effective degree; id breaks ties (lowest wins).
            return max(contributing, key=lambda w: (contributing[w], -w))
        return min(contributing)


class MaxDegHybrid(Hybrid):
    """Designate the neighbor with the maximum effective node degree."""

    name = "hybrid-maxdeg"
    selection = "maxdeg"


class MinPriHybrid(Hybrid):
    """Designate the contributing neighbor with the lowest id."""

    name = "hybrid-minpri"
    selection = "minpri"


class RelaxedMaxDegHybrid(Hybrid):
    """MaxDeg under the relaxed designation rule of Section 4.2.

    A designated node forwards only if the coverage condition fails *at
    its raised S = 1.5 priority* — the paper's ``S(v, t) = 1.5`` status
    for "unvisited but designated" nodes.  The raised threshold is
    essential: re-evaluating at the old S = 1 priority would let a node
    designated *after* its non-forward decision stay silent while other
    nodes already rely on its 1.5 rank as a replacement intermediate,
    closing a cyclic dependency that breaks coverage (the engine
    re-evaluates designated nodes to prevent exactly that).
    """

    name = "hybrid-maxdeg-relaxed"
    selection = "maxdeg"
    strict_designation = False
    relaxed_designation = True
