"""Multipoint relays (MPR) — proactive neighbor designation.

Each node ``v`` selects, from its 1-hop neighbors, a minimal multipoint
relay set covering all of its strict 2-hop neighbors (greedy set cover, as
in OLSR).  The forwarding rule embodies the *designating time* priority
the paper describes: a node relays a broadcast packet only when the
**first** copy arrives from a neighbor that selected it as an MPR; copies
arriving first from non-designators are not relayed, because the
designator's own MPRs (designated earlier) already cover the node's
neighborhood.

MPR ignores visited-node information entirely — the whole 2-hop
neighborhood must be covered — which is why the paper classifies it as the
static/proactive member of the neighbor-designating family.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from .base import BroadcastProtocol, NodeContext, Timing
from .designation import greedy_cover_designation

__all__ = ["MultipointRelay"]


class MultipointRelay(BroadcastProtocol):
    """OLSR-style MPR flooding."""

    name = "mpr"
    timing = Timing.FIRST_RECEIPT
    hops = 2
    piggyback_h = 1
    strict_designation = False

    def __init__(self) -> None:
        self._mpr_sets: Dict[int, FrozenSet[int]] = {}

    @property
    def mpr_sets(self) -> Dict[int, FrozenSet[int]]:
        """Each node's proactively selected multipoint relay set."""
        return dict(self._mpr_sets)

    def prepare(self, env) -> None:
        self._mpr_sets = {}
        for node in env.graph.nodes():
            view_graph = env.view_graph(node, self.hops)
            neighbors = set(view_graph.neighbors(node))
            targets = (
                set(view_graph.k_hop_neighbors(node, 2))
                - neighbors
                - {node}
            )
            self._mpr_sets[node] = greedy_cover_designation(
                view_graph, neighbors, targets
            )

    def should_forward(self, ctx: NodeContext) -> bool:
        packet = ctx.first_packet
        if packet is None:  # pragma: no cover - source is engine-forced
            return True
        return ctx.node in packet.designated_by_sender()

    def designate(self, ctx: NodeContext) -> FrozenSet[int]:
        return self._mpr_sets.get(ctx.node, frozenset())
