"""Relay over an externally computed forward set.

Useful whenever the forward set comes from outside the engine: a
conservative mobility-managed set (``repro.core.conservative``), a CDS
produced by the global greedy algorithm, or a set loaded from a file.
The protocol simply relays over the given nodes — the engine then
measures delivery, latency, and redundancy for it.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable

from .base import BroadcastProtocol, NodeContext, Timing

__all__ = ["PrecomputedForwardSet"]


class PrecomputedForwardSet(BroadcastProtocol):
    """Forward on first receipt iff the node is in the given set."""

    timing = Timing.FIRST_RECEIPT
    hops = 1
    piggyback_h = 0

    def __init__(self, forward_nodes: Iterable[int], name: str = "precomputed"):
        self.forward_set: FrozenSet[int] = frozenset(forward_nodes)
        self.name = name

    def should_forward(self, ctx: NodeContext) -> bool:
        return ctx.node in self.forward_set
