"""Shared designated-forward-neighbor selection machinery.

Neighbor-designating protocols (DP/TDP/PDP, MPR, the hybrids, and the
generic ND instance) all reduce to greedy set cover: pick 1-hop neighbors
whose neighborhoods cover a target set of 2-hop neighbors.  The paper:
"designated forward neighbors should be those covering at least one 2-hop
neighbor of the current node (otherwise, they will not contribute in
coverage)."

Targets that no candidate can reach are dropped before the greedy run.
This situation arises by construction — e.g. under DP a 2-hop neighbor of
``v`` reachable only through ``N(u) ∩ N(v)`` is excluded from ``v``'s
candidate set ``X = N(v) − N(u)`` yet still sits in the target set
``Y = N2(v) − N(u) − N(v)``; such a node lies in ``N2(u)`` and is covered
by ``u``'s own designation, so dropping it is sound (PDP makes exactly this
reduction explicit).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set

from ..graph.cds import greedy_set_cover
from ..graph.topology import Topology

__all__ = ["coverage_map", "greedy_cover_designation"]


def coverage_map(
    view_graph: Topology, candidates: Iterable[int], targets: Set[int]
) -> Dict[int, Set[int]]:
    """Per-candidate effective coverage ``N(w) ∩ targets`` in the view.

    One mask intersection per candidate against the target bitmask
    (out-of-view targets drop out of the mask, matching the old
    set-intersection semantics).
    """
    index, masks = view_graph.adjacency_masks()
    targets_mask = index.mask_of(t for t in targets if t in index)
    return {
        w: set(index.members(masks[index.position(w)] & targets_mask))
        for w in candidates
        if w in index
    }


def greedy_cover_designation(
    view_graph: Topology,
    candidates: Iterable[int],
    targets: Set[int],
) -> FrozenSet[int]:
    """Greedy minimal designation of ``candidates`` covering ``targets``.

    Uncoverable targets are removed first (see module docstring); an empty
    (post-restriction) target set yields an empty designation.
    """
    cover = coverage_map(view_graph, candidates, targets)
    reachable: Set[int] = set()
    for covered in cover.values():
        reachable |= covered
    effective_targets = targets & reachable
    if not effective_targets:
        return frozenset()
    chosen = greedy_set_cover(effective_targets, cover)
    return frozenset(chosen)
