"""Dominating-set and connected-dominating-set (CDS) toolkit.

The correctness target of every broadcast algorithm in the paper is that the
visited nodes form a CDS (Theorem 1).  This module provides:

* verification oracles (:func:`is_dominating_set`, :func:`is_cds`) used by
  the test suite and the experiment harness to check every broadcast run,
* the classic greedy set-cover routine that Dominant Pruning and MPR use to
  pick designated forward neighbors,
* a Guha–Khuller-style global greedy CDS construction, the "global
  information" baseline the paper's introduction discusses,
* an exact minimum-CDS search for small graphs, used as a test oracle and to
  measure approximation quality in ablation benchmarks.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .topology import Topology

__all__ = [
    "is_dominating_set",
    "is_cds",
    "greedy_set_cover",
    "greedy_cds",
    "minimum_cds_bruteforce",
]


def is_dominating_set(graph: Topology, candidate: Iterable[int]) -> bool:
    """Whether every node is in ``candidate`` or adjacent to a member."""
    members = set(candidate)
    missing = members - set(graph.nodes())
    if missing:
        raise KeyError(f"nodes not in graph: {sorted(missing)}")
    for node in graph.nodes():
        if node in members:
            continue
        if not (graph.neighbors(node) & members):
            return False
    return True


def is_cds(graph: Topology, candidate: Iterable[int]) -> bool:
    """Whether ``candidate`` is a *connected* dominating set of ``graph``.

    Follows the paper's conventions for degenerate cases: on a complete
    graph "there is no need of a forward node", so the empty set counts as a
    CDS there (one transmission from the source reaches everyone); on any
    other graph the empty set dominates nothing and is rejected.
    """
    members = set(candidate)
    if not members:
        return graph.is_complete()
    return is_dominating_set(graph, members) and graph.is_connected_subset(
        members
    )


def greedy_set_cover(
    universe: Iterable[int],
    candidates: Dict[int, Set[int]],
    tie_break: Optional[Sequence[int]] = None,
) -> List[int]:
    """Greedy set cover: repeatedly pick the candidate covering most.

    This is the selection loop of Dominant Pruning and MPR: each candidate
    ``w`` has an *effective* coverage ``|N(w) ∩ Y|`` over the remaining
    uncovered universe ``Y``; the candidate with the maximum effective
    coverage is selected, ties broken by smallest id (or by the order given
    in ``tie_break``).

    Returns the chosen candidate ids in selection order.  Raises
    ``ValueError`` when the union of all candidate sets does not cover the
    universe — callers constructed an impossible designation problem.
    """
    uncovered = set(universe)
    reachable = set()
    for covered in candidates.values():
        reachable |= covered
    if not uncovered <= reachable:
        raise ValueError(
            f"universe not coverable; uncovered remainder "
            f"{sorted(uncovered - reachable)}"
        )
    order: Dict[int, int] = {}
    if tie_break is not None:
        order = {node: rank for rank, node in enumerate(tie_break)}
    chosen: List[int] = []
    remaining = dict(candidates)
    while uncovered:
        best = max(
            remaining,
            key=lambda w: (
                len(remaining[w] & uncovered),
                -order.get(w, w),
            ),
        )
        gain = remaining[best] & uncovered
        if not gain:  # pragma: no cover - guarded by the coverability check
            raise ValueError("greedy set cover stalled")
        chosen.append(best)
        uncovered -= gain
        del remaining[best]
    return chosen


def greedy_cds(graph: Topology) -> Set[int]:
    """A global greedy CDS in the spirit of Guha and Khuller's algorithm.

    Grows a connected "gray/black" region from a maximum-degree seed: at
    each step the gray or black-adjacent white-covering node that whitens
    the most nodes is colored black.  Black nodes form the CDS.  This is the
    centralised, global-information baseline that local pruning schemes are
    compared against.
    """
    nodes = graph.nodes()
    if not nodes:
        return set()
    if len(nodes) == 1:
        return set(nodes)
    if not graph.is_connected():
        raise ValueError("greedy_cds requires a connected graph")
    if graph.is_complete():
        return set()

    white: Set[int] = set(nodes)
    gray: Set[int] = set()
    black: Set[int] = set()

    def whitening(node: int) -> int:
        return len((graph.closed_neighbors(node)) & white)

    seed = max(nodes, key=lambda v: (graph.degree(v), -v))
    black.add(seed)
    covered = graph.closed_neighbors(seed)
    gray |= covered - black
    white -= covered

    while white:
        # Candidates keeping the black region connected: gray nodes.  On a
        # connected graph some gray node always touches a white node (the
        # white/covered boundary edge cannot end at a black node, or its
        # white endpoint would have been gray), so progress is guaranteed.
        best = max(gray, key=lambda v: (whitening(v), -v))
        gray.discard(best)
        black.add(best)
        newly = graph.closed_neighbors(best)
        gray |= (newly - black) & (white | gray)
        white -= newly
    return black


def minimum_cds_bruteforce(
    graph: Topology, max_size: Optional[int] = None
) -> Optional[FrozenSet[int]]:
    """The smallest CDS by exhaustive search (exponential; small graphs only).

    Returns ``None`` when no CDS of size up to ``max_size`` exists (only
    possible on disconnected graphs).  On complete graphs returns the empty
    set, mirroring :func:`is_cds`.
    """
    nodes = graph.nodes()
    if graph.is_complete():
        return frozenset()
    limit = max_size if max_size is not None else len(nodes)
    for size in range(1, limit + 1):
        for candidate in combinations(nodes, size):
            if is_cds(graph, candidate):
                return frozenset(candidate)
    return None
