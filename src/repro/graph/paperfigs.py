"""Fixed topologies encoding the paper's illustrative figures.

The paper's small figures exercise the corners of the coverage condition.
Where the text pins the figure down exactly we reproduce it exactly; where
only the figure's *claims* are stated (the scanned edge sets are ambiguous)
we reconstruct a topology that satisfies every claim in the surrounding
text, and say so in the docstring.  Unit tests assert the claims.

All fixtures use node ids as 0-hop priorities, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from .topology import Topology

__all__ = [
    "PaperFigure",
    "figure1",
    "figure2",
    "figure4",
    "figure6a",
    "figure6b",
    "figure8",
]


@dataclass(frozen=True)
class PaperFigure:
    """A paper figure: topology, initially visited nodes, and notes."""

    name: str
    topology: Topology
    visited: FrozenSet[int] = frozenset()
    notes: str = ""


def figure1() -> PaperFigure:
    """Figure 1: the three-node complete network {u, v, w}.

    Encoded with u=1, v=2, w=3 so that w carries the highest id, matching
    the static-approach walkthrough ("suppose w, the highest id among the
    three, is selected").
    """
    topology = Topology(edges=[(1, 2), (2, 3), (1, 3)])
    return PaperFigure(
        name="figure1",
        topology=topology,
        notes="u=1, v=2, w=3; complete graph, one forward node suffices",
    )


def figure2() -> PaperFigure:
    """Figure 2: the maximal replacement path example.

    Exact reproduction of the text: v has id 2, its neighbors u and w must
    be connected avoiding v; node 4 is the max-min node for (u, w, v), node
    6 for (u, 4, v), and the visited node y for (u, 6, v); the resulting
    maximal replacement path is (u, y, 6, 4, w).  u and w are encoded as
    ids 10 and 11 (endpoint priorities are irrelevant to the procedure) and
    y as id 9 with visited status.
    """
    u, w, v, y = 10, 11, 2, 9
    topology = Topology(
        edges=[
            (v, u),
            (v, w),
            (u, 3),
            (3, w),
            (u, y),
            (y, 6),
            (6, 4),
            (4, w),
            (u, 7),
            (7, 5),
            (5, 4),
            (5, 6),
        ]
    )
    return PaperFigure(
        name="figure2",
        topology=topology,
        visited=frozenset({y}),
        notes="u=10, w=11, v=2, y=9 (visited); expect path (u, y, 6, 4, w)",
    )


def figure4() -> PaperFigure:
    """Figure 4: static vs dynamic forward node sets on five nodes.

    Reconstructed (the scan's edge set is ambiguous) to satisfy the text:
    with node 2 as source and node 5 visited, node 3 can become non-forward
    because two of its neighbors are connected through visited node 2.
    Topology: a five-cycle 1-2-3-4-5 plus chords 2-5 and 2-3's neighbors
    2 and 4 joined through 2-4? No —  we use edges making N(3) = {2, 4},
    with 2-4 *not* direct but connected via 5: edges 1-2, 2-3, 3-4, 4-5,
    5-2, 1-5.
    """
    topology = Topology(
        edges=[(1, 2), (2, 3), (3, 4), (4, 5), (5, 2), (1, 5)]
    )
    return PaperFigure(
        name="figure4",
        topology=topology,
        visited=frozenset({2, 5}),
        notes="source 2; with 2 and 5 visited, node 3 becomes non-forward",
    )


def figure6a() -> PaperFigure:
    """Figure 6(a): coverage condition vs strong coverage condition.

    Reconstructed to satisfy every claim in the text: node 4 is non-forward
    under the (generic) coverage condition but forward under the strong
    coverage condition, and only when the local view includes 3-hop
    information — under 2-hop information the link (7, 8) is invisible and
    the replacement path (3, 7, 8, 2) is unknown to node 4.

    Construction: N(4) = {1, 2, 3}.  Pair (1, 2) is replaced through node 5,
    pair (1, 3) through node 6, and pair (2, 3) through the path 3-7-8-2.
    The higher-priority subgraph {5}, {6}, {7, 8} splits into three
    components, none of which dominates all of N(4), so no coverage *set*
    exists and the strong condition fails.
    """
    topology = Topology(
        edges=[
            (4, 1),
            (4, 2),
            (4, 3),
            (1, 5),
            (5, 2),
            (1, 6),
            (6, 3),
            (3, 7),
            (7, 8),
            (8, 2),
        ]
    )
    return PaperFigure(
        name="figure6a",
        topology=topology,
        notes="node 4: non-forward (generic, 3-hop) / forward (strong or 2-hop)",
    )


def figure6b() -> PaperFigure:
    """Figure 6(b): strong coverage beats direct neighbor elimination.

    Reconstructed to satisfy the text: node 2 has two visited neighbors
    (encoded as ids 5 and 6), yet its neighbor 4 is not covered by either
    visited node's neighborhood, so SBA / Stojmenovic keep node 2 forward.
    Under the strong coverage condition node 2 is non-forward: its neighbor
    set {1, 4, 5, 6} is dominated by the coverage set {3, 4} ∪ {blacks},
    which is connected *because all visited nodes count as connected* in a
    local view (4-3-5~6).
    """
    topology = Topology(
        edges=[
            (2, 1),
            (2, 4),
            (2, 5),
            (2, 6),
            (3, 4),
            (3, 5),
            (1, 5),
        ]
    )
    return PaperFigure(
        name="figure6b",
        topology=topology,
        visited=frozenset({5, 6}),
        notes="node 2: forward under SBA, non-forward under strong coverage",
    )


def figure8() -> PaperFigure:
    """Figure 8: the selection-policy walkthrough network on nine nodes.

    Reconstructed (scan ambiguous) to preserve the text's relationships:
    nodes 2 and 9 are the initial forwarders; nodes 1, 3, 4, 6 are the
    contested middle; node 7 is a 2-hop neighbor of node 2 reachable only
    through nodes 3/4/6; node 1 covers no 2-hop neighbor of node 2.
    Layout follows the figure's three rows: 9 5 8 / 2 3 4 / 1 6 7.
    """
    topology = Topology(
        edges=[
            (9, 5),
            (5, 8),
            (8, 4),
            (9, 2),
            (9, 3),
            (2, 3),
            (3, 4),
            (2, 1),
            (1, 6),
            (2, 6),
            (6, 7),
            (4, 7),
        ]
    )
    return PaperFigure(
        name="figure8",
        topology=topology,
        visited=frozenset({2, 9}),
        notes="selection-policy example; 2 and 9 forward first",
    )
