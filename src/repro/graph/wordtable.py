"""uint64 word-table packing for the numpy mask kernels.

The bitset kernel stores node subsets as Python big-ints under a
:class:`~repro.graph.nodeindex.NodeIndex` bit layout.  The numpy backend
keeps the *same* layout but materialises the adjacency table as a dense
``(n, ceil(n/64))`` ``uint64`` array: bit ``p`` of the mask lands in word
``p // 64``, bit ``p % 64`` — exactly the little-endian byte string
``mask.to_bytes(..., "little")`` reinterpreted as words.  Because the bit
positions agree, a mask round-trips bigint → words → bigint losslessly,
masks from either representation describe the same node sets, and the two
kernels stay byte-identical by construction.

numpy is an *optional* dependency: this module imports with ``np = None``
when it is absent, and every helper raises a clear ``RuntimeError`` on
use.  Callers gate on :data:`HAVE_NUMPY` (the bitset and sets backends
never touch this module).

The word layout assumes a little-endian host (as does numpy's
``bitorder="little"`` unpacking) — true of every supported platform.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

try:  # pragma: no cover - exercised via both CI variants
    import numpy as np
except ImportError:  # pragma: no cover - the no-numpy CI job
    np = None  # type: ignore[assignment]

__all__ = [
    "HAVE_NUMPY",
    "require_numpy",
    "word_count",
    "pack_masks",
    "unpack_mask",
    "words_to_bool",
    "bool_to_positions",
    "or_rows",
]

HAVE_NUMPY = np is not None


def require_numpy() -> None:
    """Raise a clear error when numpy is unavailable."""
    if np is None:
        raise RuntimeError(
            "this operation requires numpy, which is not installed in this "
            "environment; use the 'bitset' or 'sets' coverage backend"
        )


def word_count(n: int) -> int:
    """Words needed for an ``n``-bit mask."""
    return (n + 63) // 64


def pack_masks(masks: Sequence[int], n: int):
    """Pack bigint masks over an ``n``-node universe into a word table.

    Returns a read-only ``(len(masks), word_count(n))`` uint64 array whose
    row ``i`` holds ``masks[i]`` in the NodeIndex bit layout.  Copy before
    mutating (``Topology.apply_delta`` row patching does).
    """
    require_numpy()
    words = word_count(n)
    if not masks:
        return np.zeros((0, words), dtype=np.uint64)
    size = words * 8
    buf = b"".join(mask.to_bytes(size, "little") for mask in masks)
    return np.frombuffer(buf, dtype=np.uint64).reshape(len(masks), words)


def unpack_mask(row) -> int:
    """The bigint mask a word-table row encodes (inverse of packing)."""
    require_numpy()
    return int.from_bytes(np.ascontiguousarray(row).tobytes(), "little")


def words_to_bool(words, n: int):
    """A length-``n`` boolean membership array for a word vector."""
    require_numpy()
    return np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8),
        bitorder="little",
        count=n,
    ).astype(bool)


def bool_to_positions(flags) -> List[int]:
    """Set positions of a boolean membership array, ascending."""
    require_numpy()
    return [int(p) for p in np.nonzero(flags)[0]]


def or_rows(table, positions: Iterable[int]):
    """OR-reduce the given rows of a word table into one word vector.

    ``positions`` must be non-empty; the word-vector result is the union
    mask of the selected rows.
    """
    require_numpy()
    return np.bitwise_or.reduce(table[list(positions)], axis=0)
