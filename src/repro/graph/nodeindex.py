"""Node-indexed bitmask primitives for the coverage hot path.

Every dense-graph kernel in the library — coverage-condition checks,
higher-priority component extraction, k-hop frontiers — reduces to set
algebra over subsets of a *fixed* node universe.  Python's arbitrary
precision integers make those operations machine-word-parallel: a subset
of an ``n``-node graph is one ``n``-bit integer, intersection is ``&``,
union is ``|``, domination is ``targets & ~cover == 0``, and a BFS
frontier expansion is a single ``|`` per frontier node instead of a
per-edge set insert.

:class:`NodeIndex` pins the node-id → bit-position mapping.  The mapping
is *stable* for the life of the index (positions follow the graph's node
insertion order), so masks produced against the same index are mutually
compatible; a change to the underlying graph's *node set* must produce a
fresh index (see ``Topology.node_index`` — the index is memoised behind
the topology's mutation epoch).  Edge-only deltas keep the index: the
node universe is unchanged, so ``Topology.apply_delta`` patches just the
affected adjacency rows of the cached mask table (:func:`patch_rows`)
and every retained mask stays comparable across the delta.

Masks are plain ``int`` values: share them freely, but treat any mask
table obtained from a :class:`~repro.graph.topology.Topology` as a
read-only snapshot — it is cached and shared between callers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Tuple

__all__ = ["NodeIndex", "flood_fill", "patch_rows", "popcount"]


if hasattr(int, "bit_count"):  # Python >= 3.10

    def popcount(mask: int) -> int:
        """Number of set bits (members) of ``mask``."""
        return mask.bit_count()

else:  # pragma: no cover - exercised only on Python 3.9

    def popcount(mask: int) -> int:
        """Number of set bits (members) of ``mask``."""
        return bin(mask).count("1")


class NodeIndex:
    """A stable node-id → bit-position mapping over a fixed universe.

    Bit positions follow the iteration order of ``nodes`` at construction
    time.  Two masks are comparable only when built against the same
    index instance (or an equal one): the index *is* the coordinate
    system.
    """

    __slots__ = ("_nodes", "_positions")

    def __init__(self, nodes: Iterable[int]) -> None:
        self._nodes: Tuple[int, ...] = tuple(nodes)
        self._positions: Dict[int, int] = {
            node: position for position, node in enumerate(self._nodes)
        }
        if len(self._positions) != len(self._nodes):
            raise ValueError("duplicate node ids in index universe")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._positions

    def __iter__(self) -> Iterator[int]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeIndex({len(self._nodes)} nodes)"

    @property
    def nodes(self) -> Tuple[int, ...]:
        """The universe, in bit-position order."""
        return self._nodes

    # ------------------------------------------------------------------

    def position(self, node: int) -> int:
        """The bit position of ``node``; raise ``KeyError`` if unknown."""
        return self._positions[node]

    def node_at(self, position: int) -> int:
        """The node occupying ``position``."""
        return self._nodes[position]

    def bit(self, node: int) -> int:
        """The singleton mask ``1 << position(node)``."""
        return 1 << self._positions[node]

    def mask_of(self, nodes: Iterable[int]) -> int:
        """The mask holding every node of ``nodes`` (all must be known)."""
        positions = self._positions
        mask = 0
        for node in nodes:
            mask |= 1 << positions[node]
        return mask

    def universe(self) -> int:
        """The full mask ``(1 << n) - 1`` over the whole universe."""
        return (1 << len(self._nodes)) - 1

    def members(self, mask: int) -> List[int]:
        """The node ids of ``mask``'s set bits, in bit-position order."""
        nodes = self._nodes
        out: List[int] = []
        while mask:
            low = mask & -mask
            out.append(nodes[low.bit_length() - 1])
            mask ^= low
        return out


def patch_rows(
    index: NodeIndex,
    masks: Tuple[int, ...],
    rows: Mapping[int, Iterable[int]],
) -> Tuple[int, ...]:
    """A copy of ``masks`` with the given adjacency rows rebuilt.

    ``rows`` maps node id → its new neighbor iterable; every other row is
    carried over untouched.  Used by ``Topology.apply_delta`` to update a
    cached mask table in place of a full O(n + m) rebuild when only the
    changed edges' endpoint rows differ — the :class:`NodeIndex` itself
    (and therefore every mask's coordinate system) is unchanged.
    """
    patched = list(masks)
    for node, adjacent in rows.items():
        patched[index.position(node)] = index.mask_of(adjacent)
    return tuple(patched)


def flood_fill(seed: int, allowed: int, masks: Tuple[int, ...]) -> int:
    """The connected component of ``seed`` within ``allowed``.

    ``masks`` is a bit-position-indexed adjacency table (``masks[p]`` is
    the neighbor mask of the node at position ``p``).  Grows the seed
    mask by OR-ing the adjacency rows of each frontier node, restricted
    to ``allowed``, until the frontier is empty — a word-parallel BFS
    that replaces a union-find pass over the same subgraph.

    ``seed`` may hold several bits; the result is then the union of the
    components touched by any of them.  ``seed`` is not required to be a
    subset of ``allowed`` — its bits are kept regardless.
    """
    component = 0
    frontier = seed
    while frontier:
        component |= frontier
        grow = 0
        while frontier:
            low = frontier & -frontier
            grow |= masks[low.bit_length() - 1]
            frontier ^= low
        frontier = grow & allowed & ~component
    return component
