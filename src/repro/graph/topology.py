"""Undirected graph substrate used throughout the library.

An ad hoc network is modelled as an undirected graph (paper assumption 3:
connected, no unidirectional links).  This module implements the graph data
structure from scratch, together with the traversals the broadcast framework
needs:

* breadth-first search and hop distances,
* connectivity and connected components,
* k-hop neighborhoods ``N_k(v)``,
* the paper's k-hop *view graph* ``G_k(v) = (N_k(v), E ∩ (N_{k-1} x N_k))``
  (Definition 2: edges between two nodes that are exactly ``k`` hops from
  ``v`` are *not* part of the k-hop information).

The structure is deliberately small and dependency-free; tests validate it
against networkx oracles.

Traversal results (:meth:`Topology.bfs_distances`,
:meth:`Topology.k_hop_view_graph`, :meth:`Topology.neighbors`, and the
degree aggregates) are memoised behind a mutation-epoch counter: every
structural change (``add_edge``, ``remove_edge``, ``add_node`` of a new
node, ``remove_node``) bumps the epoch and lazily drops the cache, so
mobility snapshots and incremental edits stay correct while repeated
queries on a static deployment — the experiment hot path — are free after
the first computation.

The subset-algebra kernels (k-hop frontiers, view-graph extraction,
induced subgraphs, connected components) run on the node-indexed bitmask
layer of :mod:`repro.graph.nodeindex`: :meth:`Topology.node_index` pins a
stable node → bit-position mapping and :meth:`Topology.adjacency_masks`
caches one ``int`` neighbor mask per node, both invalidated by the same
mutation epoch as every other memoised query.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..instrument import _STACK as _COUNTER_STACK
from .nodeindex import NodeIndex, flood_fill, patch_rows, popcount

__all__ = ["DeltaReport", "Topology"]

Edge = Tuple[int, int]


@dataclass(frozen=True)
class DeltaReport:
    """What one :meth:`Topology.apply_delta` call invalidated.

    ``dirty_nodes`` is the union dirty set over every radius the delta
    had to consider (sorted, so downstream consumers can iterate it
    deterministically).  ``dirty_by_radius`` maps each considered radius
    to its own dirty ball; it is ``None`` when the delta fell back to the
    full-rebuild path, in which case *every* node is dirty at *every*
    radius.  ``entries_retained``/``entries_evicted`` count query-cache
    entries that survived/died (the patched mask table counts as
    retained).
    """

    fast_path: bool
    dirty_nodes: Tuple[int, ...]
    entries_retained: int
    entries_evicted: int
    dirty_by_radius: Optional[Mapping[int, FrozenSet[int]]]

    def dirty_at(self, radius: int) -> FrozenSet[int]:
        """The dirty set at ``radius`` — nodes whose cached radius-
        ``radius`` queries (k-hop masks, truncated BFS, view graphs) may
        have changed.

        On the fallback path everything is dirty.  On the fast path the
        radius must have been considered by the delta (it was either
        present in the query cache or requested through ``extra_radii``);
        asking for an uncomputed radius raises ``KeyError`` rather than
        guessing.
        """
        if self.dirty_by_radius is None:
            return frozenset(self.dirty_nodes)
        try:
            return self.dirty_by_radius[radius]
        except KeyError as exc:
            raise KeyError(
                f"radius {radius} was not considered by this delta; "
                f"pass extra_radii=({radius},) to apply_delta"
            ) from exc


class Topology:
    """A simple undirected graph over integer node ids.

    Self-loops and parallel edges are rejected: neither occurs in a unit-disk
    graph and both would break the broadcast semantics (a node never
    "transmits to itself").
    """

    def __init__(
        self,
        nodes: Iterable[int] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._adj: Dict[int, Set[int]] = {}
        #: Mutation epoch: bumped by every structural change so memoised
        #: query results can be dropped lazily (see :meth:`_cached`).
        self._epoch: int = 0
        self._cache_epoch: int = 0
        self._query_cache: Dict[Tuple, object] = {}
        #: Monotone version stamp: bumped by every structural change
        #: *including* :meth:`apply_delta` (which leaves ``_epoch``
        #: untouched on the fast path so retained cache entries survive).
        #: External caches record :meth:`version_stamp` and consult
        #: :meth:`dirtied_since` to decide what to drop.
        self._version: int = 0
        #: Version at which *every* node was last dirtied (epoch bumps).
        self._all_dirty_version: int = 0
        #: Per-node version of the last delta whose dirty set contained
        #: the node; pruned on epoch bumps (``_all_dirty_version``
        #: dominates everything recorded before them).
        self._node_stamps: Dict[int, int] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _bump_epoch(self) -> None:
        """Record a wholesale structural change (every node dirty).

        The single chokepoint for epoch bumps: it advances the version
        stamp in lockstep so external dirty-aware caches (views, the
        simulation environment) observe full mutations exactly like
        delta applications — just with an all-dirty node set.
        """
        self._epoch += 1
        self._version += 1
        self._all_dirty_version = self._version
        if self._node_stamps:
            self._node_stamps.clear()

    def add_node(self, node: int) -> None:
        """Add ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = set()
            self._bump_epoch()

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed."""
        if u == v:
            raise ValueError(f"self-loop on node {u} is not allowed")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._bump_epoch()

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``{u, v}``; raise if absent."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise KeyError(f"edge ({u}, {v}) not in graph") from exc
        self._bump_epoch()

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and all incident edges; raise if absent."""
        if node not in self._adj:
            raise KeyError(f"node {node} not in graph")
        for neighbor in self._adj[node]:
            self._adj[neighbor].discard(node)
        del self._adj[node]
        self._bump_epoch()

    def copy(self) -> "Topology":
        """An independent copy of the graph (caches are not shared)."""
        clone = Topology()
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        return clone

    @classmethod
    def _from_adjacency(cls, adj: Dict[int, Set[int]]) -> "Topology":
        """Wrap a ready-made adjacency dict (ownership transfers).

        Internal fast path for the mask-based extractors: the dict must
        be symmetric, self-loop-free, and exclusively owned by the new
        graph.
        """
        graph = cls()
        graph._adj = adj
        return graph

    # ------------------------------------------------------------------
    # Query memoisation
    # ------------------------------------------------------------------

    def _cached(self, key: Tuple, compute):
        """Return ``compute()`` memoised under ``key`` for the current epoch.

        The cache is cleared lazily on first access after any mutation, so
        mutators stay O(1) and a burst of edits costs one invalidation.
        """
        if self._cache_epoch != self._epoch:
            self._query_cache.clear()
            self._cache_epoch = self._epoch
        cache = self._query_cache
        if key not in cache:
            if _COUNTER_STACK:
                _COUNTER_STACK[-1].topology_cache_misses += 1
            cache[key] = compute()
        elif _COUNTER_STACK:
            _COUNTER_STACK[-1].topology_cache_hits += 1
        return cache[key]

    # ------------------------------------------------------------------
    # Incremental deltas (dirty-scoped invalidation)
    # ------------------------------------------------------------------

    def version_stamp(self) -> int:
        """A monotone stamp advanced by every structural change.

        Unlike ``_epoch`` (which :meth:`apply_delta` deliberately leaves
        untouched so the query cache survives), the version stamp moves
        on *every* mutation.  External caches record it and later ask
        :meth:`dirtied_since` which of their entries to drop.
        """
        return self._version

    def node_stamp(self, node: int) -> int:
        """The version at which ``node`` was last in a dirty set."""
        stamp = self._node_stamps.get(node, 0)
        if stamp < self._all_dirty_version:
            return self._all_dirty_version
        return stamp

    def dirtied_since(self, node: int, version: int) -> bool:
        """Whether ``node``'s neighborhood may have changed after
        ``version`` (as returned by :meth:`version_stamp`).

        Conservative: a node absent from the graph, or dirtied at *any*
        radius the intervening deltas considered, reports ``True``.
        """
        if node not in self._adj:
            return True
        return self.node_stamp(node) > version

    def _dirty_ball(self, seeds: Iterable[int], radius: int) -> Set[int]:
        """All nodes within ``radius`` hops of any seed, on the current
        adjacency (seeds not currently in the graph are skipped)."""
        seen = {node for node in seeds if node in self._adj}
        frontier = list(seen)
        for _ in range(radius):
            grown: List[int] = []
            for node in frontier:
                for neighbor in self._adj[node]:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        grown.append(neighbor)
            if not grown:
                break
            frontier = grown
        return seen

    def _patched_mask_table(
        self,
        table: Tuple[NodeIndex, Tuple[int, ...]],
        endpoints: Iterable[int],
    ) -> Tuple[NodeIndex, Tuple[int, ...]]:
        """A copy of the cached mask table with the endpoints' adjacency
        rows rebuilt from the (already mutated) adjacency dict.

        Only endpoint rows can change under an edge-only delta, and the
        node set is unchanged, so the :class:`NodeIndex` itself is
        reused verbatim — masks built before and after the delta stay
        comparable.
        """
        index, masks = table
        patched = patch_rows(
            index, masks, {node: self._adj[node] for node in endpoints}
        )
        return index, patched

    def _patched_word_table(self, table, endpoints: Iterable[int]):
        """Like :meth:`_patched_mask_table`, for the numpy word table.

        Only the endpoints' rows are re-packed; the rest of the array is
        carried over in one copy, and the :class:`NodeIndex` coordinate
        system is reused verbatim.
        """
        from .wordtable import pack_masks

        index, words = table
        patched = words.copy()
        n = len(index)
        for node in endpoints:
            patched[index.position(node)] = pack_masks(
                [index.mask_of(self._adj[node])], n
            )[0]
        return index, patched

    def apply_delta(
        self,
        added_edges: Iterable[Edge] = (),
        removed_edges: Iterable[Edge] = (),
        added_nodes: Iterable[int] = (),
        removed_nodes: Iterable[int] = (),
        extra_radii: Iterable[int] = (),
    ) -> DeltaReport:
        """Apply a structural delta, evicting only dirty cache entries.

        The locality argument (paper Definition 2): a cached radius-``r``
        query for ``v`` — k-hop mask, truncated BFS, view graph — can
        only change if some changed-edge endpoint lies within ``r`` hops
        of ``v`` in the old *or* new graph, because a path of length
        ``<= r`` from ``v`` through a changed edge reaches one of its
        endpoints in ``< r`` hops, and an edge whose endpoints are both
        on the exactly-``r`` ring is invisible in ``G_r(v)`` anyway.  So
        the **fast path** (edge-only deltas between existing nodes)
        computes, per radius present in the query cache (plus any
        ``extra_radii`` the caller's own caches care about), the dirty
        ball around the changed endpoints on the old and the new
        adjacency, evicts exactly those entries, and patches the
        endpoints' :meth:`adjacency_masks` rows in place under the
        stable :class:`~repro.graph.nodeindex.NodeIndex`.

        Node additions/removals (and edges naming unknown endpoints)
        change the index capacity, so they **fall back** to the ordinary
        mutators — a full epoch bump — and the report marks every node
        dirty.  Correctness never depends on the fast path.

        Deltas are validated before anything mutates: removed edges must
        exist, added edges between existing nodes must be absent, added
        nodes must be new, removed nodes must exist, and no edge may be
        both added and removed.
        """
        adds = list(dict.fromkeys(self._normalised(added_edges)))
        drops = list(dict.fromkeys(self._normalised(removed_edges)))
        new_nodes = list(dict.fromkeys(added_nodes))
        dead_nodes = list(dict.fromkeys(removed_nodes))
        radii = sorted(dict.fromkeys(extra_radii))
        for radius in radii:
            if radius < 0:
                raise ValueError(f"radii must be non-negative, got {radius}")
        self._validate_delta(adds, drops, new_nodes, dead_nodes)

        fast = not new_nodes and not dead_nodes and all(
            u in self._adj and v in self._adj for u, v in adds
        )
        if not fast:
            return self._apply_delta_slow(adds, drops, new_nodes, dead_nodes)
        if not adds and not drops:
            # Nothing changed: no version bump, nothing to evict.
            if self._cache_epoch != self._epoch:
                self._query_cache.clear()
                self._cache_epoch = self._epoch
            if _COUNTER_STACK:
                counters = _COUNTER_STACK[-1]
                counters.delta_applies += 1
                counters.cache_entries_retained += len(self._query_cache)
            return DeltaReport(
                fast_path=True,
                dirty_nodes=(),
                entries_retained=len(self._query_cache),
                entries_evicted=0,
                dirty_by_radius={radius: frozenset() for radius in radii},
            )
        return self._apply_delta_fast(adds, drops, radii)

    @staticmethod
    def _normalised(edges: Iterable[Edge]) -> List[Edge]:
        """Edges as ``(min, max)`` tuples; self-loops rejected."""
        result: List[Edge] = []
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop on node {u} is not allowed")
            result.append((u, v) if u < v else (v, u))
        return result

    def _validate_delta(
        self,
        adds: List[Edge],
        drops: List[Edge],
        new_nodes: List[int],
        dead_nodes: List[int],
    ) -> None:
        overlap = set(adds) & set(drops)
        if overlap:
            raise ValueError(
                f"edges both added and removed: {sorted(overlap)}"
            )
        for u, v in drops:
            if not self.has_edge(u, v):
                raise KeyError(f"edge ({u}, {v}) not in graph")
        dead = set(dead_nodes)
        for node in dead_nodes:
            if node not in self._adj:
                raise KeyError(f"node {node} not in graph")
        for node in new_nodes:
            if node in self._adj:
                raise ValueError(f"node {node} already in graph")
        for u, v in adds:
            if u in dead or v in dead:
                raise ValueError(
                    f"added edge ({u}, {v}) touches a removed node"
                )
            if u in self._adj and v in self._adj and self.has_edge(u, v):
                raise ValueError(f"edge ({u}, {v}) already in graph")

    def _apply_delta_slow(
        self,
        adds: List[Edge],
        drops: List[Edge],
        new_nodes: List[int],
        dead_nodes: List[int],
    ) -> DeltaReport:
        """Fallback: node-set changes go through the ordinary mutators
        (full epoch bump; nothing is retained, everything is dirty)."""
        for u, v in drops:
            self.remove_edge(u, v)
        for node in dead_nodes:
            self.remove_node(node)
        for node in new_nodes:
            self.add_node(node)
        for u, v in adds:
            self.add_edge(u, v)
        dirty = tuple(sorted(self._adj))
        if _COUNTER_STACK:
            counters = _COUNTER_STACK[-1]
            counters.delta_applies += 1
            counters.dirty_nodes_invalidated += len(dirty)
        return DeltaReport(
            fast_path=False,
            dirty_nodes=dirty,
            entries_retained=0,
            entries_evicted=len(self._query_cache),
            dirty_by_radius=None,
        )

    def _apply_delta_fast(
        self,
        adds: List[Edge],
        drops: List[Edge],
        extra_radii: List[int],
    ) -> DeltaReport:
        # Flush a pending lazy clear first so the eviction scan only ever
        # sees entries that are live for the current epoch.
        if self._cache_epoch != self._epoch:
            self._query_cache.clear()
            self._cache_epoch = self._epoch

        endpoints = sorted({node for edge in adds + drops for node in edge})
        endpoint_set = set(endpoints)

        # Every radius with cached entries must get a dirty ball, plus
        # any radius the caller's own caches are keyed on.
        radii = set(extra_radii)
        for key in self._query_cache:
            tag = key[0]
            if tag in ("k_hop_mask", "view_graph"):
                radii.add(key[2])
            elif tag == "bfs" and key[2] is not None:
                radii.add(key[2])

        dirty: Dict[int, Set[int]] = {
            radius: self._dirty_ball(endpoints, radius) for radius in radii
        }
        for u, v in drops:
            self._adj[u].discard(v)
            self._adj[v].discard(u)
        for u, v in adds:
            self._adj[u].add(v)
            self._adj[v].add(u)
        for radius in radii:
            dirty[radius] |= self._dirty_ball(endpoints, radius)

        keep: Dict[Tuple, object] = {}
        evicted = 0
        for key, value in self._query_cache.items():
            tag = key[0]
            if tag == "node_index":
                keep[key] = value
            elif tag == "mask_table":
                keep[key] = self._patched_mask_table(value, endpoints)  # type: ignore[arg-type]
            elif tag == "word_table":
                keep[key] = self._patched_word_table(value, endpoints)
            elif tag == "neighbors":
                if key[1] in endpoint_set:
                    evicted += 1
                else:
                    keep[key] = value
            elif tag in ("k_hop_mask", "view_graph"):
                if key[1] in dirty[key[2]]:
                    evicted += 1
                else:
                    keep[key] = value
            elif tag == "bfs":
                if key[2] is None or key[1] in dirty[key[2]]:
                    evicted += 1
                else:
                    keep[key] = value
            else:
                # max_degree and any future aggregate: evict, stay safe.
                evicted += 1
        self._query_cache = keep

        self._version += 1
        dirty_union: Set[int] = set(endpoint_set)
        for ball in dirty.values():
            dirty_union |= ball
        for node in dirty_union:
            self._node_stamps[node] = self._version

        if _COUNTER_STACK:
            counters = _COUNTER_STACK[-1]
            counters.delta_applies += 1
            counters.dirty_nodes_invalidated += len(dirty_union)
            counters.cache_entries_retained += len(keep)
        return DeltaReport(
            fast_path=True,
            dirty_nodes=tuple(sorted(dirty_union)),
            entries_retained=len(keep),
            entries_evicted=evicted,
            dirty_by_radius={
                radius: frozenset(dirty[radius]) for radius in sorted(radii)
            },
        )

    # ------------------------------------------------------------------
    # Node-indexed bitmask layer
    # ------------------------------------------------------------------

    def node_index(self) -> NodeIndex:
        """The node-id → bit-position mapping for the current epoch.

        Positions follow node insertion order.  The index (like every
        mask built against it) is memoised behind the mutation epoch: a
        structural change produces a fresh index, so stale masks can
        never be combined with fresh ones through this accessor.
        """
        return self._cached(("node_index",), lambda: NodeIndex(self._adj))

    def adjacency_masks(self) -> Tuple[NodeIndex, Tuple[int, ...]]:
        """``(index, masks)``: the per-node adjacency bitmask table.

        ``masks[index.position(v)]`` is the neighbor mask ``N(v)``.  The
        table is memoised per epoch and shared between callers — treat
        it as a read-only snapshot.
        """
        return self._cached(("mask_table",), self._mask_table_compute)

    def _mask_table_compute(self) -> Tuple[NodeIndex, Tuple[int, ...]]:
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].mask_table_builds += 1
        index = self.node_index()
        position = index.position
        masks: List[int] = []
        for node in index:
            row = 0
            for neighbor in self._adj[node]:
                row |= 1 << position(neighbor)
            masks.append(row)
        return index, tuple(masks)

    def word_table(self):
        """``(index, words)``: the adjacency table as numpy uint64 words.

        ``words[index.position(v)]`` packs the same bigint row as
        :meth:`adjacency_masks` into ``ceil(n/64)`` little-endian words —
        the dense layout the numpy coverage backend batches over (see
        :mod:`repro.graph.wordtable`; requires numpy).  Memoised per
        epoch and, like the bigint table, row-patched rather than rebuilt
        by :meth:`apply_delta`.  Treat the array as a read-only snapshot.
        """
        return self._cached(("word_table",), self._word_table_compute)

    def _word_table_compute(self):
        from .wordtable import pack_masks

        index, masks = self.adjacency_masks()
        return index, pack_masks(masks, len(index))

    def adjacency_mask(self, node: int) -> int:
        """The neighbor mask ``N(node)`` under :meth:`node_index`."""
        index, masks = self.adjacency_masks()
        try:
            return masks[index.position(node)]
        except KeyError as exc:
            raise KeyError(f"node {node} not in graph") from exc

    def k_hop_mask(self, node: int, k: int) -> int:
        """``N_k(node)`` as a bitmask (includes ``node``; memoised).

        Each BFS level is one OR-sweep over the frontier's adjacency
        rows — the word-parallel form of the recurrence
        ``N_{k+1}(v) = ∪_{u ∈ N_k(v)} N(u) ∪ N_k(v)``.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if node not in self._adj:
            raise KeyError(f"node {node} not in graph")
        return self._cached(
            ("k_hop_mask", node, k),
            lambda: self._k_hop_mask_compute(node, k),
        )

    def _k_hop_mask_compute(self, node: int, k: int) -> int:
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].mask_khop_runs += 1
        index, masks = self.adjacency_masks()
        seen = frontier = index.bit(node)
        for _ in range(k):
            grow = 0
            while frontier:
                low = frontier & -frontier
                grow |= masks[low.bit_length() - 1]
                frontier ^= low
            frontier = grow & ~seen
            if not frontier:
                break
            seen |= frontier
        return seen

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(nodes={self.node_count()}, edges={self.edge_count()})"
        )

    def nodes(self) -> List[int]:
        """All node ids, in insertion order."""
        return list(self._adj)

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    def edges(self) -> List[Edge]:
        """All edges, each reported once as ``(min, max)``."""
        return [
            (u, v)
            for u in self._adj
            for v in self._adj[u]
            if u < v
        ]

    def edge_count(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return v in self._adj.get(u, ())

    def neighbors(self, node: int) -> FrozenSet[int]:
        """The open neighbor set ``N(node)`` (memoised per epoch)."""
        if node not in self._adj:
            raise KeyError(f"node {node} not in graph")
        return self._cached(
            ("neighbors", node), lambda: frozenset(self._adj[node])
        )

    def closed_neighbors(self, node: int) -> FrozenSet[int]:
        """The closed neighbor set ``N[node] = N(node) ∪ {node}``."""
        return self.neighbors(node) | {node}

    def degree(self, node: int) -> int:
        """``deg(node) = |N(node)|``."""
        try:
            return len(self._adj[node])
        except KeyError as exc:
            raise KeyError(f"node {node} not in graph") from exc

    def average_degree(self) -> float:
        """Mean degree; 0.0 on an empty graph."""
        if not self._adj:
            return 0.0
        return 2.0 * self.edge_count() / self.node_count()

    def max_degree(self) -> int:
        """Largest degree; 0 on an empty graph (memoised per epoch)."""
        if not self._adj:
            return 0
        return self._cached(
            ("max_degree",),
            lambda: max(len(nbrs) for nbrs in self._adj.values()),
        )

    def is_complete(self) -> bool:
        """Whether every pair of distinct nodes is adjacent."""
        n = self.node_count()
        return self.edge_count() == n * (n - 1) // 2

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def bfs_distances(
        self, source: int, max_hops: Optional[int] = None
    ) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable node.

        With ``max_hops`` the search is truncated at that radius, which is
        how k-hop neighborhoods are computed.  Memoised per epoch; the
        returned dict is a private copy the caller may mutate.
        """
        return dict(self._bfs_distances_cached(source, max_hops))

    def _bfs_distances_cached(
        self, source: int, max_hops: Optional[int]
    ) -> Dict[int, int]:
        """The shared memoised BFS result — callers must not mutate it."""
        if source not in self._adj:
            raise KeyError(f"node {source} not in graph")
        return self._cached(
            ("bfs", source, max_hops),
            lambda: self._bfs_distances_compute(source, max_hops),
        )

    def _bfs_distances_compute(
        self, source: int, max_hops: Optional[int]
    ) -> Dict[int, int]:
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].bfs_runs += 1
        distances: Dict[int, int] = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            hops = distances[node]
            if max_hops is not None and hops >= max_hops:
                continue
            for neighbor in self._adj[node]:
                if neighbor not in distances:
                    distances[neighbor] = hops + 1
                    frontier.append(neighbor)
        return distances

    def bfs_tree_parents(self, source: int) -> Dict[int, Optional[int]]:
        """Parent pointers of a BFS tree rooted at ``source``.

        The source maps to ``None``.  Useful for extracting shortest paths.
        """
        if source not in self._adj:
            raise KeyError(f"node {source} not in graph")
        parents: Dict[int, Optional[int]] = {source: None}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for neighbor in sorted(self._adj[node]):
                if neighbor not in parents:
                    parents[neighbor] = node
                    frontier.append(neighbor)
        return parents

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """A shortest path from ``source`` to ``target`` or ``None``.

        The path includes both endpoints; ``[source]`` when they coincide.
        """
        if target not in self._adj:
            raise KeyError(f"node {target} not in graph")
        parents = self.bfs_tree_parents(source)
        if target not in parents:
            return None
        path = [target]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def eccentricity(self, node: int) -> int:
        """Largest hop distance from ``node`` to any reachable node."""
        return max(self._bfs_distances_cached(node, None).values())

    def diameter(self) -> int:
        """Largest eccentricity over all nodes (graph must be connected)."""
        if not self.is_connected():
            raise ValueError("diameter of a disconnected graph is undefined")
        return max(self.eccentricity(node) for node in self._adj)

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph is connected)."""
        if not self._adj:
            return True
        first = next(iter(self._adj))
        return len(self._bfs_distances_cached(first, None)) == len(self._adj)

    def connected_components(self) -> List[Set[int]]:
        """All connected components as node sets (mask flood-fill)."""
        index, masks = self.adjacency_masks()
        remaining = index.universe()
        components: List[Set[int]] = []
        for node in self._adj:
            bit = index.bit(node)
            if not remaining & bit:
                continue
            component = flood_fill(bit, remaining, masks)
            remaining &= ~component
            components.append(set(index.members(component)))
        return components

    def is_connected_subset(self, subset: Iterable[int]) -> bool:
        """Whether ``subset`` induces a connected subgraph.

        The empty set and singletons count as connected.  One mask
        flood-fill restricted to the subset.
        """
        members = set(subset)
        missing = members - set(self._adj)
        if missing:
            raise KeyError(f"nodes not in graph: {sorted(missing)}")
        if len(members) <= 1:
            return True
        index, masks = self.adjacency_masks()
        subset_mask = index.mask_of(members)
        seed = subset_mask & -subset_mask
        return flood_fill(seed, subset_mask, masks) == subset_mask

    def articulation_points(self) -> Set[int]:
        """All cut vertices (nodes whose removal disconnects a component).

        Iterative Tarjan low-link computation.  Articulation points are
        the nodes no broadcast protocol can ever prune: some pair of
        their neighbors has no connecting path avoiding them at all.
        """
        discovery: Dict[int, int] = {}
        low: Dict[int, int] = {}
        parent: Dict[int, Optional[int]] = {}
        points: Set[int] = set()
        counter = 0
        for root in self._adj:
            if root in discovery:
                continue
            parent[root] = None
            root_children = 0
            # Each stack frame: (node, iterator over neighbors).
            stack = [(root, iter(sorted(self._adj[root])))]
            discovery[root] = low[root] = counter
            counter += 1
            while stack:
                node, neighbors = stack[-1]
                advanced = False
                for neighbor in neighbors:
                    if neighbor not in discovery:
                        parent[neighbor] = node
                        if node == root:
                            root_children += 1
                        discovery[neighbor] = low[neighbor] = counter
                        counter += 1
                        stack.append(
                            (neighbor, iter(sorted(self._adj[neighbor])))
                        )
                        advanced = True
                        break
                    if neighbor != parent[node]:
                        low[node] = min(low[node], discovery[neighbor])
                if advanced:
                    continue
                stack.pop()
                if stack:
                    above = stack[-1][0]
                    low[above] = min(low[above], low[node])
                    if above != root and low[node] >= discovery[above]:
                        points.add(above)
            if root_children >= 2:
                points.add(root)
        return points

    def bridges(self) -> Set[Edge]:
        """All bridge edges, each as ``(min, max)``.

        An edge is a bridge when removing it disconnects its endpoints —
        computed by removal-and-reachability (O(E^2), fine at library
        scale; the tests cross-check against networkx).
        """
        result: Set[Edge] = set()
        for u, v in self.edges():
            self.remove_edge(u, v)
            try:
                connected = v in self.bfs_distances(u)
            finally:
                self.add_edge(u, v)
            if not connected:
                result.add((u, v))
        return result

    # ------------------------------------------------------------------
    # k-hop neighborhoods and view graphs (paper Definition 2)
    # ------------------------------------------------------------------

    def k_hop_neighbors(self, node: int, k: int) -> Set[int]:
        """``N_k(node)``: all nodes within ``k`` hops, including ``node``.

        ``N_0(v) = {v}`` and ``N_{k+1}(v) = ∪_{u ∈ N_k(v)} N(u) ∪ N_k(v)``
        — computed as :meth:`k_hop_mask` and materialised.
        """
        index = self.node_index()
        return set(index.members(self.k_hop_mask(node, k)))

    def k_hop_view_graph(self, node: int, k: int) -> "Topology":
        """The maximum subgraph derivable from k-hop information.

        ``G_k(v) = (N_k(v), E_k(v))`` with
        ``E_k(v) = E ∩ (N_{k-1}(v) x N_k(v))``: links between two nodes that
        are both exactly ``k`` hops away from ``v`` are invisible, because
        they were never reported in only ``k`` rounds of "hello" exchanges.

        Memoised per epoch; the returned view graph is shared between
        callers and must be treated as a read-only snapshot.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self._cached(
            ("view_graph", node, k),
            lambda: self._k_hop_view_graph_compute(node, k),
        )

    def _k_hop_view_graph_compute(self, node: int, k: int) -> "Topology":
        distances = self._bfs_distances_cached(node, k)
        index, masks = self.adjacency_masks()
        position = index.position
        members = index.members
        visible = 0
        inner = 0  # nodes strictly inside the outermost ring (< k hops)
        for u, hops_u in distances.items():
            bit = 1 << position(u)
            visible |= bit
            if hops_u < k:
                inner |= bit
        # Outermost-ring nodes only keep their inward edges (Definition 2:
        # links between two exactly-k-hop nodes were never reported).
        adj: Dict[int, Set[int]] = {}
        for u, hops_u in distances.items():
            row = masks[position(u)] & (visible if hops_u < k else inner)
            adj[u] = set(members(row))
        return Topology._from_adjacency(adj)

    def subgraph(self, nodes: Iterable[int]) -> "Topology":
        """The subgraph induced by ``nodes`` (all must be present)."""
        members = set(nodes)
        missing = members - set(self._adj)
        if missing:
            raise KeyError(f"nodes not in graph: {sorted(missing)}")
        index, masks = self.adjacency_masks()
        subset_mask = index.mask_of(members)
        adj: Dict[int, Set[int]] = {}
        for u in members:
            adj[u] = set(index.members(masks[index.position(u)] & subset_mask))
        return Topology._from_adjacency(adj)

    def is_subgraph_of(self, other: "Topology") -> bool:
        """Whether every node and edge of ``self`` also appears in ``other``."""
        for node in self._adj:
            if node not in other:
                return False
        return all(other.has_edge(u, v) for u, v in self.edges())

    # ------------------------------------------------------------------
    # Priority metrics (paper Section 4.4)
    # ------------------------------------------------------------------

    def neighborhood_connectivity_ratio(self, node: int) -> float:
        """``ncr(v)``: the fraction of neighbor pairs *not* directly connected.

        ``ncr(v) = 1 - Σ_{u ∈ N(v)} |N(u) ∩ N(v)| / (deg(v) (deg(v) - 1))``.
        A node whose neighbors are all pairwise adjacent has ncr 0 (it is
        useless as a relay); a node whose neighbors are pairwise disconnected
        has ncr 1 (it sits in a critical position).  Degree-0 and degree-1
        nodes have no neighbor pairs; their ncr is defined as 0.0.
        """
        if node not in self._adj:
            raise KeyError(f"node {node} not in graph")
        index, masks = self.adjacency_masks()
        nbrs_mask = masks[index.position(node)]
        deg = popcount(nbrs_mask)
        if deg < 2:
            return 0.0
        connected_pairs = 0
        remaining = nbrs_mask
        while remaining:
            low = remaining & -remaining
            connected_pairs += popcount(masks[low.bit_length() - 1] & nbrs_mask)
            remaining ^= low
        return 1.0 - connected_pairs / (deg * (deg - 1))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_edge_list(edges: Sequence[Edge]) -> "Topology":
        """A graph holding exactly the endpoints of ``edges``."""
        return Topology(edges=edges)

    @staticmethod
    def complete(n: int) -> "Topology":
        """The complete graph ``K_n`` on nodes ``0 .. n - 1``."""
        graph = Topology(nodes=range(n))
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph

    @staticmethod
    def path(n: int) -> "Topology":
        """The path graph ``P_n`` on nodes ``0 .. n - 1``."""
        graph = Topology(nodes=range(n))
        for u in range(n - 1):
            graph.add_edge(u, u + 1)
        return graph

    @staticmethod
    def cycle(n: int) -> "Topology":
        """The cycle ``C_n`` on nodes ``0 .. n - 1`` (n >= 3)."""
        if n < 3:
            raise ValueError(f"a cycle needs at least 3 nodes, got {n}")
        graph = Topology.path(n)
        graph.add_edge(n - 1, 0)
        return graph

    @staticmethod
    def star(n: int) -> "Topology":
        """A star with hub 0 and ``n - 1`` leaves."""
        if n < 1:
            raise ValueError(f"a star needs at least 1 node, got {n}")
        graph = Topology(nodes=range(n))
        for leaf in range(1, n):
            graph.add_edge(0, leaf)
        return graph
