"""Undirected graph substrate used throughout the library.

An ad hoc network is modelled as an undirected graph (paper assumption 3:
connected, no unidirectional links).  This module implements the graph data
structure from scratch, together with the traversals the broadcast framework
needs:

* breadth-first search and hop distances,
* connectivity and connected components,
* k-hop neighborhoods ``N_k(v)``,
* the paper's k-hop *view graph* ``G_k(v) = (N_k(v), E ∩ (N_{k-1} x N_k))``
  (Definition 2: edges between two nodes that are exactly ``k`` hops from
  ``v`` are *not* part of the k-hop information).

The structure is deliberately small and dependency-free; tests validate it
against networkx oracles.

Traversal results (:meth:`Topology.bfs_distances`,
:meth:`Topology.k_hop_view_graph`, :meth:`Topology.neighbors`, and the
degree aggregates) are memoised behind a mutation-epoch counter: every
structural change (``add_edge``, ``remove_edge``, ``add_node`` of a new
node, ``remove_node``) bumps the epoch and lazily drops the cache, so
mobility snapshots and incremental edits stay correct while repeated
queries on a static deployment — the experiment hot path — are free after
the first computation.

The subset-algebra kernels (k-hop frontiers, view-graph extraction,
induced subgraphs, connected components) run on the node-indexed bitmask
layer of :mod:`repro.graph.nodeindex`: :meth:`Topology.node_index` pins a
stable node → bit-position mapping and :meth:`Topology.adjacency_masks`
caches one ``int`` neighbor mask per node, both invalidated by the same
mutation epoch as every other memoised query.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..instrument import _STACK as _COUNTER_STACK
from .nodeindex import NodeIndex, flood_fill, popcount

__all__ = ["Topology"]

Edge = Tuple[int, int]


class Topology:
    """A simple undirected graph over integer node ids.

    Self-loops and parallel edges are rejected: neither occurs in a unit-disk
    graph and both would break the broadcast semantics (a node never
    "transmits to itself").
    """

    def __init__(
        self,
        nodes: Iterable[int] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self._adj: Dict[int, Set[int]] = {}
        #: Mutation epoch: bumped by every structural change so memoised
        #: query results can be dropped lazily (see :meth:`_cached`).
        self._epoch: int = 0
        self._cache_epoch: int = 0
        self._query_cache: Dict[Tuple, object] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: int) -> None:
        """Add ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = set()
            self._epoch += 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed."""
        if u == v:
            raise ValueError(f"self-loop on node {u} is not allowed")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._epoch += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``{u, v}``; raise if absent."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise KeyError(f"edge ({u}, {v}) not in graph") from exc
        self._epoch += 1

    def remove_node(self, node: int) -> None:
        """Remove ``node`` and all incident edges; raise if absent."""
        if node not in self._adj:
            raise KeyError(f"node {node} not in graph")
        for neighbor in self._adj[node]:
            self._adj[neighbor].discard(node)
        del self._adj[node]
        self._epoch += 1

    def copy(self) -> "Topology":
        """An independent copy of the graph (caches are not shared)."""
        clone = Topology()
        clone._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        return clone

    @classmethod
    def _from_adjacency(cls, adj: Dict[int, Set[int]]) -> "Topology":
        """Wrap a ready-made adjacency dict (ownership transfers).

        Internal fast path for the mask-based extractors: the dict must
        be symmetric, self-loop-free, and exclusively owned by the new
        graph.
        """
        graph = cls()
        graph._adj = adj
        return graph

    # ------------------------------------------------------------------
    # Query memoisation
    # ------------------------------------------------------------------

    def _cached(self, key: Tuple, compute):
        """Return ``compute()`` memoised under ``key`` for the current epoch.

        The cache is cleared lazily on first access after any mutation, so
        mutators stay O(1) and a burst of edits costs one invalidation.
        """
        if self._cache_epoch != self._epoch:
            self._query_cache.clear()
            self._cache_epoch = self._epoch
        cache = self._query_cache
        if key not in cache:
            if _COUNTER_STACK:
                _COUNTER_STACK[-1].topology_cache_misses += 1
            cache[key] = compute()
        elif _COUNTER_STACK:
            _COUNTER_STACK[-1].topology_cache_hits += 1
        return cache[key]

    # ------------------------------------------------------------------
    # Node-indexed bitmask layer
    # ------------------------------------------------------------------

    def node_index(self) -> NodeIndex:
        """The node-id → bit-position mapping for the current epoch.

        Positions follow node insertion order.  The index (like every
        mask built against it) is memoised behind the mutation epoch: a
        structural change produces a fresh index, so stale masks can
        never be combined with fresh ones through this accessor.
        """
        return self._cached(("node_index",), lambda: NodeIndex(self._adj))

    def adjacency_masks(self) -> Tuple[NodeIndex, Tuple[int, ...]]:
        """``(index, masks)``: the per-node adjacency bitmask table.

        ``masks[index.position(v)]`` is the neighbor mask ``N(v)``.  The
        table is memoised per epoch and shared between callers — treat
        it as a read-only snapshot.
        """
        return self._cached(("mask_table",), self._mask_table_compute)

    def _mask_table_compute(self) -> Tuple[NodeIndex, Tuple[int, ...]]:
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].mask_table_builds += 1
        index = self.node_index()
        position = index.position
        masks: List[int] = []
        for node in index:
            row = 0
            for neighbor in self._adj[node]:
                row |= 1 << position(neighbor)
            masks.append(row)
        return index, tuple(masks)

    def adjacency_mask(self, node: int) -> int:
        """The neighbor mask ``N(node)`` under :meth:`node_index`."""
        index, masks = self.adjacency_masks()
        try:
            return masks[index.position(node)]
        except KeyError as exc:
            raise KeyError(f"node {node} not in graph") from exc

    def k_hop_mask(self, node: int, k: int) -> int:
        """``N_k(node)`` as a bitmask (includes ``node``; memoised).

        Each BFS level is one OR-sweep over the frontier's adjacency
        rows — the word-parallel form of the recurrence
        ``N_{k+1}(v) = ∪_{u ∈ N_k(v)} N(u) ∪ N_k(v)``.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if node not in self._adj:
            raise KeyError(f"node {node} not in graph")
        return self._cached(
            ("k_hop_mask", node, k),
            lambda: self._k_hop_mask_compute(node, k),
        )

    def _k_hop_mask_compute(self, node: int, k: int) -> int:
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].mask_khop_runs += 1
        index, masks = self.adjacency_masks()
        seen = frontier = index.bit(node)
        for _ in range(k):
            grow = 0
            while frontier:
                low = frontier & -frontier
                grow |= masks[low.bit_length() - 1]
                frontier ^= low
            frontier = grow & ~seen
            if not frontier:
                break
            seen |= frontier
        return seen

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[int]:
        return iter(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(nodes={self.node_count()}, edges={self.edge_count()})"
        )

    def nodes(self) -> List[int]:
        """All node ids, in insertion order."""
        return list(self._adj)

    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    def edges(self) -> List[Edge]:
        """All edges, each reported once as ``(min, max)``."""
        return [
            (u, v)
            for u in self._adj
            for v in self._adj[u]
            if u < v
        ]

    def edge_count(self) -> int:
        """Number of (undirected) edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return v in self._adj.get(u, ())

    def neighbors(self, node: int) -> FrozenSet[int]:
        """The open neighbor set ``N(node)`` (memoised per epoch)."""
        if node not in self._adj:
            raise KeyError(f"node {node} not in graph")
        return self._cached(
            ("neighbors", node), lambda: frozenset(self._adj[node])
        )

    def closed_neighbors(self, node: int) -> FrozenSet[int]:
        """The closed neighbor set ``N[node] = N(node) ∪ {node}``."""
        return self.neighbors(node) | {node}

    def degree(self, node: int) -> int:
        """``deg(node) = |N(node)|``."""
        try:
            return len(self._adj[node])
        except KeyError as exc:
            raise KeyError(f"node {node} not in graph") from exc

    def average_degree(self) -> float:
        """Mean degree; 0.0 on an empty graph."""
        if not self._adj:
            return 0.0
        return 2.0 * self.edge_count() / self.node_count()

    def max_degree(self) -> int:
        """Largest degree; 0 on an empty graph (memoised per epoch)."""
        if not self._adj:
            return 0
        return self._cached(
            ("max_degree",),
            lambda: max(len(nbrs) for nbrs in self._adj.values()),
        )

    def is_complete(self) -> bool:
        """Whether every pair of distinct nodes is adjacent."""
        n = self.node_count()
        return self.edge_count() == n * (n - 1) // 2

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------

    def bfs_distances(
        self, source: int, max_hops: Optional[int] = None
    ) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable node.

        With ``max_hops`` the search is truncated at that radius, which is
        how k-hop neighborhoods are computed.  Memoised per epoch; the
        returned dict is a private copy the caller may mutate.
        """
        return dict(self._bfs_distances_cached(source, max_hops))

    def _bfs_distances_cached(
        self, source: int, max_hops: Optional[int]
    ) -> Dict[int, int]:
        """The shared memoised BFS result — callers must not mutate it."""
        if source not in self._adj:
            raise KeyError(f"node {source} not in graph")
        return self._cached(
            ("bfs", source, max_hops),
            lambda: self._bfs_distances_compute(source, max_hops),
        )

    def _bfs_distances_compute(
        self, source: int, max_hops: Optional[int]
    ) -> Dict[int, int]:
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].bfs_runs += 1
        distances: Dict[int, int] = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            hops = distances[node]
            if max_hops is not None and hops >= max_hops:
                continue
            for neighbor in self._adj[node]:
                if neighbor not in distances:
                    distances[neighbor] = hops + 1
                    frontier.append(neighbor)
        return distances

    def bfs_tree_parents(self, source: int) -> Dict[int, Optional[int]]:
        """Parent pointers of a BFS tree rooted at ``source``.

        The source maps to ``None``.  Useful for extracting shortest paths.
        """
        if source not in self._adj:
            raise KeyError(f"node {source} not in graph")
        parents: Dict[int, Optional[int]] = {source: None}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for neighbor in sorted(self._adj[node]):
                if neighbor not in parents:
                    parents[neighbor] = node
                    frontier.append(neighbor)
        return parents

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """A shortest path from ``source`` to ``target`` or ``None``.

        The path includes both endpoints; ``[source]`` when they coincide.
        """
        if target not in self._adj:
            raise KeyError(f"node {target} not in graph")
        parents = self.bfs_tree_parents(source)
        if target not in parents:
            return None
        path = [target]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return path

    def eccentricity(self, node: int) -> int:
        """Largest hop distance from ``node`` to any reachable node."""
        return max(self._bfs_distances_cached(node, None).values())

    def diameter(self) -> int:
        """Largest eccentricity over all nodes (graph must be connected)."""
        if not self.is_connected():
            raise ValueError("diameter of a disconnected graph is undefined")
        return max(self.eccentricity(node) for node in self._adj)

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph is connected)."""
        if not self._adj:
            return True
        first = next(iter(self._adj))
        return len(self._bfs_distances_cached(first, None)) == len(self._adj)

    def connected_components(self) -> List[Set[int]]:
        """All connected components as node sets (mask flood-fill)."""
        index, masks = self.adjacency_masks()
        remaining = index.universe()
        components: List[Set[int]] = []
        for node in self._adj:
            bit = index.bit(node)
            if not remaining & bit:
                continue
            component = flood_fill(bit, remaining, masks)
            remaining &= ~component
            components.append(set(index.members(component)))
        return components

    def is_connected_subset(self, subset: Iterable[int]) -> bool:
        """Whether ``subset`` induces a connected subgraph.

        The empty set and singletons count as connected.  One mask
        flood-fill restricted to the subset.
        """
        members = set(subset)
        missing = members - set(self._adj)
        if missing:
            raise KeyError(f"nodes not in graph: {sorted(missing)}")
        if len(members) <= 1:
            return True
        index, masks = self.adjacency_masks()
        subset_mask = index.mask_of(members)
        seed = subset_mask & -subset_mask
        return flood_fill(seed, subset_mask, masks) == subset_mask

    def articulation_points(self) -> Set[int]:
        """All cut vertices (nodes whose removal disconnects a component).

        Iterative Tarjan low-link computation.  Articulation points are
        the nodes no broadcast protocol can ever prune: some pair of
        their neighbors has no connecting path avoiding them at all.
        """
        discovery: Dict[int, int] = {}
        low: Dict[int, int] = {}
        parent: Dict[int, Optional[int]] = {}
        points: Set[int] = set()
        counter = 0
        for root in self._adj:
            if root in discovery:
                continue
            parent[root] = None
            root_children = 0
            # Each stack frame: (node, iterator over neighbors).
            stack = [(root, iter(sorted(self._adj[root])))]
            discovery[root] = low[root] = counter
            counter += 1
            while stack:
                node, neighbors = stack[-1]
                advanced = False
                for neighbor in neighbors:
                    if neighbor not in discovery:
                        parent[neighbor] = node
                        if node == root:
                            root_children += 1
                        discovery[neighbor] = low[neighbor] = counter
                        counter += 1
                        stack.append(
                            (neighbor, iter(sorted(self._adj[neighbor])))
                        )
                        advanced = True
                        break
                    if neighbor != parent[node]:
                        low[node] = min(low[node], discovery[neighbor])
                if advanced:
                    continue
                stack.pop()
                if stack:
                    above = stack[-1][0]
                    low[above] = min(low[above], low[node])
                    if above != root and low[node] >= discovery[above]:
                        points.add(above)
            if root_children >= 2:
                points.add(root)
        return points

    def bridges(self) -> Set[Edge]:
        """All bridge edges, each as ``(min, max)``.

        An edge is a bridge when removing it disconnects its endpoints —
        computed by removal-and-reachability (O(E^2), fine at library
        scale; the tests cross-check against networkx).
        """
        result: Set[Edge] = set()
        for u, v in self.edges():
            self.remove_edge(u, v)
            try:
                connected = v in self.bfs_distances(u)
            finally:
                self.add_edge(u, v)
            if not connected:
                result.add((u, v))
        return result

    # ------------------------------------------------------------------
    # k-hop neighborhoods and view graphs (paper Definition 2)
    # ------------------------------------------------------------------

    def k_hop_neighbors(self, node: int, k: int) -> Set[int]:
        """``N_k(node)``: all nodes within ``k`` hops, including ``node``.

        ``N_0(v) = {v}`` and ``N_{k+1}(v) = ∪_{u ∈ N_k(v)} N(u) ∪ N_k(v)``
        — computed as :meth:`k_hop_mask` and materialised.
        """
        index = self.node_index()
        return set(index.members(self.k_hop_mask(node, k)))

    def k_hop_view_graph(self, node: int, k: int) -> "Topology":
        """The maximum subgraph derivable from k-hop information.

        ``G_k(v) = (N_k(v), E_k(v))`` with
        ``E_k(v) = E ∩ (N_{k-1}(v) x N_k(v))``: links between two nodes that
        are both exactly ``k`` hops away from ``v`` are invisible, because
        they were never reported in only ``k`` rounds of "hello" exchanges.

        Memoised per epoch; the returned view graph is shared between
        callers and must be treated as a read-only snapshot.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self._cached(
            ("view_graph", node, k),
            lambda: self._k_hop_view_graph_compute(node, k),
        )

    def _k_hop_view_graph_compute(self, node: int, k: int) -> "Topology":
        distances = self._bfs_distances_cached(node, k)
        index, masks = self.adjacency_masks()
        position = index.position
        members = index.members
        visible = 0
        inner = 0  # nodes strictly inside the outermost ring (< k hops)
        for u, hops_u in distances.items():
            bit = 1 << position(u)
            visible |= bit
            if hops_u < k:
                inner |= bit
        # Outermost-ring nodes only keep their inward edges (Definition 2:
        # links between two exactly-k-hop nodes were never reported).
        adj: Dict[int, Set[int]] = {}
        for u, hops_u in distances.items():
            row = masks[position(u)] & (visible if hops_u < k else inner)
            adj[u] = set(members(row))
        return Topology._from_adjacency(adj)

    def subgraph(self, nodes: Iterable[int]) -> "Topology":
        """The subgraph induced by ``nodes`` (all must be present)."""
        members = set(nodes)
        missing = members - set(self._adj)
        if missing:
            raise KeyError(f"nodes not in graph: {sorted(missing)}")
        index, masks = self.adjacency_masks()
        subset_mask = index.mask_of(members)
        adj: Dict[int, Set[int]] = {}
        for u in members:
            adj[u] = set(index.members(masks[index.position(u)] & subset_mask))
        return Topology._from_adjacency(adj)

    def is_subgraph_of(self, other: "Topology") -> bool:
        """Whether every node and edge of ``self`` also appears in ``other``."""
        for node in self._adj:
            if node not in other:
                return False
        return all(other.has_edge(u, v) for u, v in self.edges())

    # ------------------------------------------------------------------
    # Priority metrics (paper Section 4.4)
    # ------------------------------------------------------------------

    def neighborhood_connectivity_ratio(self, node: int) -> float:
        """``ncr(v)``: the fraction of neighbor pairs *not* directly connected.

        ``ncr(v) = 1 - Σ_{u ∈ N(v)} |N(u) ∩ N(v)| / (deg(v) (deg(v) - 1))``.
        A node whose neighbors are all pairwise adjacent has ncr 0 (it is
        useless as a relay); a node whose neighbors are pairwise disconnected
        has ncr 1 (it sits in a critical position).  Degree-0 and degree-1
        nodes have no neighbor pairs; their ncr is defined as 0.0.
        """
        if node not in self._adj:
            raise KeyError(f"node {node} not in graph")
        index, masks = self.adjacency_masks()
        nbrs_mask = masks[index.position(node)]
        deg = popcount(nbrs_mask)
        if deg < 2:
            return 0.0
        connected_pairs = 0
        remaining = nbrs_mask
        while remaining:
            low = remaining & -remaining
            connected_pairs += popcount(masks[low.bit_length() - 1] & nbrs_mask)
            remaining ^= low
        return 1.0 - connected_pairs / (deg * (deg - 1))

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    @staticmethod
    def from_edge_list(edges: Sequence[Edge]) -> "Topology":
        """A graph holding exactly the endpoints of ``edges``."""
        return Topology(edges=edges)

    @staticmethod
    def complete(n: int) -> "Topology":
        """The complete graph ``K_n`` on nodes ``0 .. n - 1``."""
        graph = Topology(nodes=range(n))
        for u in range(n):
            for v in range(u + 1, n):
                graph.add_edge(u, v)
        return graph

    @staticmethod
    def path(n: int) -> "Topology":
        """The path graph ``P_n`` on nodes ``0 .. n - 1``."""
        graph = Topology(nodes=range(n))
        for u in range(n - 1):
            graph.add_edge(u, u + 1)
        return graph

    @staticmethod
    def cycle(n: int) -> "Topology":
        """The cycle ``C_n`` on nodes ``0 .. n - 1`` (n >= 3)."""
        if n < 3:
            raise ValueError(f"a cycle needs at least 3 nodes, got {n}")
        graph = Topology.path(n)
        graph.add_edge(n - 1, 0)
        return graph

    @staticmethod
    def star(n: int) -> "Topology":
        """A star with hub 0 and ``n - 1`` leaves."""
        if n < 1:
            raise ValueError(f"a star needs at least 1 node, got {n}")
        graph = Topology(nodes=range(n))
        for leaf in range(1, n):
            graph.add_edge(0, leaf)
        return graph
