"""Spatial-hash cell grid for unit-disk neighbor queries.

Pairwise unit-disk construction compares all ``n(n-1)/2`` point pairs, which
caps every fixture near a hundred nodes.  A cell grid with cell size equal
to the transmission radius restores locality: a point's within-radius
partners can only live in its own cell or the eight surrounding ones, so
construction, link diffing, and link counting all become
O(n · local density) instead of O(n²).

The grid is a plain dict keyed by integer cell coordinates — only occupied
cells exist, so memory is O(n) regardless of how sparse the deployment is.
Iteration order everywhere follows the insertion order of ``positions``
(Python dicts preserve it), which keeps every derived artifact — node
order, candidate order, flip lists — deterministic and byte-identical to
the pairwise reference: the actual link decision is the *same*
``distance_squared_to(...) <= radius²`` float comparison in both paths,
the grid only prunes pairs that are provably out of range.

Exactness
---------
Cell indices come from a float division, so the grid is trusted only where
that division provably cannot misplace a within-radius pair beyond the
adjacent-cell window:

* for ``radius > 0`` the cell size is ``radius * (1 + 2**-20)`` and
  :func:`grid_is_exact` requires every ``|coordinate| / cell`` quotient to
  stay below 2**30 — then the quotient error (< 2**-22 relatively) is
  smaller than the cell inflation, and two points within ``radius`` land
  at cell indices differing by at most 1;
* ``radius == 0`` uses a tiny positive cell size (:data:`MIN_CELL_SIZE`)
  and is always exact for finite coordinates below 1e158: coordinates that
  differ at all while their squared distance still underflows to ``0.0``
  (which the pairwise comparison links at radius 0) are themselves tiny,
  so their quotients are small; exactly-equal coordinates hash to the
  same cell whatever their magnitude.

When :func:`grid_is_exact` returns ``False`` (astronomical coordinates,
non-finite geometry), callers fall back to the pairwise scan — the
builders in :mod:`repro.graph.unit_disk` do this automatically, so
correctness never depends on the grid.
"""

from __future__ import annotations

import math

from typing import Dict, Iterator, List, Tuple

from .geometry import Point

__all__ = [
    "CellGrid",
    "MIN_CELL_SIZE",
    "grid_is_exact",
    "grid_pairs_within",
    "count_pairs_within",
    "distances_within",
]

#: Cell size used for ``radius == 0``.  Any two *distinct* points whose
#: squared distance underflows to 0.0 are closer than ~1.6e-162, which
#: forces their own coordinates below ~1.5e-146 (distinct floats differ by
#: at least one ulp), so their cell quotients stay microscopic.
MIN_CELL_SIZE = 1e-150

#: Relative cell inflation over the radius.  Strictly larger than the
#: worst-case relative error of the index division under the quotient
#: bound below, which is what guarantees the adjacent-cell invariant.
_CELL_INFLATION = 1.0 + 2.0 ** -20

#: Largest |coordinate| / cell_size quotient the grid trusts for positive
#: radii: 2**30 keeps the division's absolute error below 2**-22 cells.
_MAX_CELL_QUOTIENT = float(1 << 30)

#: Coordinate bound for the ``radius == 0`` grid: keeps x / MIN_CELL_SIZE
#: finite so the index floor cannot overflow.
_MAX_ZERO_RADIUS_COORD = 1e158

_NEIGHBOR_OFFSETS: Tuple[Tuple[int, int], ...] = tuple(
    (dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
)


def _cell_size_for(radius: float) -> float:
    """The grid cell size used for ``radius`` (always positive)."""
    return max(radius * _CELL_INFLATION, MIN_CELL_SIZE)


def grid_is_exact(positions: Dict[int, Point], radius: float) -> bool:
    """Whether the cell grid is guaranteed exact for this geometry.

    True when cell indexing provably lands every within-``radius`` pair in
    the same or adjacent cells (see the module docstring for the float
    analysis).  When False, callers must take the pairwise path; the
    builders in :mod:`repro.graph.unit_disk` do this automatically.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if not math.isfinite(radius):
        return False
    if radius == 0:
        bound = _MAX_ZERO_RADIUS_COORD
    else:
        bound = _MAX_CELL_QUOTIENT * _cell_size_for(radius)
        if not math.isfinite(bound):
            return False
    for p in positions.values():
        # NaN coordinates fail both comparisons and force the fallback.
        if not (abs(p.x) < bound and abs(p.y) < bound):
            return False
    return True


class CellGrid:
    """A spatial hash of points with cell size >= the query radius.

    Supports two usage patterns:

    * **incremental** (:meth:`candidates_then_insert`): scan candidates
      among already-inserted points, then insert — each unordered pair is
      produced exactly once, in insertion order of the second endpoint,
      which is how the unit-disk builders enumerate pairs;
    * **static** (:meth:`insert` everything, then :meth:`near`): query
      arbitrary probe points against the full population.
    """

    __slots__ = ("cell_size", "_cells")

    def __init__(self, radius: float) -> None:
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.cell_size = _cell_size_for(radius)
        self._cells: Dict[Tuple[int, int], List[int]] = {}

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (
            math.floor(p.x / self.cell_size),
            math.floor(p.y / self.cell_size),
        )

    def insert(self, node: int, p: Point) -> None:
        """Insert ``node`` at position ``p``."""
        cell = self._cell_of(p)
        bucket = self._cells.get(cell)
        if bucket is None:
            self._cells[cell] = [node]
        else:
            bucket.append(node)

    def near(self, p: Point) -> Iterator[int]:
        """All inserted nodes in the 9 cells around ``p``, in cell-scan
        order (insertion order within each cell)."""
        cx, cy = self._cell_of(p)
        cells = self._cells
        for dx, dy in _NEIGHBOR_OFFSETS:
            bucket = cells.get((cx + dx, cy + dy))
            if bucket is not None:
                yield from bucket

    def candidates_then_insert(self, node: int, p: Point) -> List[int]:
        """Candidates already inserted near ``p``, then insert ``node``.

        The returned list holds every previously-inserted node whose
        position could possibly be within the grid radius of ``p`` (it
        may include farther ones — callers apply the exact distance
        check).  Inserting after scanning yields each unordered pair
        exactly once over a full pass.
        """
        found = list(self.near(p))
        self.insert(node, p)
        return found


def grid_pairs_within(
    positions: Dict[int, Point], radius: float
) -> Iterator[Tuple[int, int]]:
    """All unordered pairs with distance <= ``radius``, via the grid.

    Pairs are yielded as ``(earlier, later)`` in the insertion order of
    ``positions`` — the same enumeration order as the pairwise reference
    scan, with the same exact float comparison deciding membership.  The
    caller is responsible for checking :func:`grid_is_exact` first.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    grid = CellGrid(radius)
    radius_sq = radius * radius
    for node, p in positions.items():
        for other in grid.candidates_then_insert(node, p):
            if p.distance_squared_to(positions[other]) <= radius_sq:
                yield other, node


def count_pairs_within(positions: Dict[int, Point], radius: float) -> int:
    """Number of unordered pairs with distance <= ``radius``.

    The grid-based link counter behind transmitter-range calibration:
    O(n · local density) time and O(n) memory, versus the O(n²) memory of
    materialising every pairwise distance.
    """
    count = 0
    grid = CellGrid(radius)
    radius_sq = radius * radius
    for node, p in positions.items():
        for other in grid.candidates_then_insert(node, p):
            if p.distance_squared_to(positions[other]) <= radius_sq:
                count += 1
    return count


def distances_within(positions: Dict[int, Point], radius: float) -> List[float]:
    """Squared distances of all pairs within ``radius``, unsorted.

    Used by range calibration to materialise only the candidate pairs
    around the link-count threshold instead of all n(n-1)/2 distances.
    """
    out: List[float] = []
    grid = CellGrid(radius)
    radius_sq = radius * radius
    for node, p in positions.items():
        for other in grid.candidates_then_insert(node, p):
            d = p.distance_squared_to(positions[other])
            if d <= radius_sq:
                out.append(d)
    return out
