"""Random-waypoint mobility model.

The paper evaluates static networks ("the network topology does not change
during the broadcast period") and defers mobility to follow-up work, noting
that "the effect of moderate mobility can be balanced by a slight increase in
the broadcast redundancy".  This module supplies that follow-up substrate: a
random-waypoint walker whose sampled snapshots feed the same broadcast
algorithms, used by the mobility example and ablation benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from .geometry import Area, Point
from .topology import DeltaReport
from .unit_disk import UnitDiskGraph, build_unit_disk_graph, edge_flips

__all__ = ["SnapshotDelta", "Waypoint", "RandomWaypointModel"]


@dataclass
class Waypoint:
    """Current motion state of one node."""

    position: Point
    target: Point
    speed: float
    pause_remaining: float = 0.0


@dataclass(frozen=True)
class SnapshotDelta:
    """One mobility step expressed as a delta over a shared topology.

    ``graph.topology`` is the *same mutable* :class:`Topology` object
    across every step of one :meth:`RandomWaypointModel.snapshot_deltas`
    iteration — mutated in place through ``apply_delta`` so per-epoch
    caches survive for every node outside the dirty set.  ``report`` is
    ``None`` on steps where no link flipped (the topology is untouched,
    caches survive verbatim).  ``flip_count`` is the total number of
    links that crossed the radius threshold this step
    (``len(added_edges) + len(removed_edges)``) — a cheap pre-computed
    field so routers and trace statistics never re-derive it.
    """

    step: int
    time: float
    graph: UnitDiskGraph
    added_edges: Tuple[Tuple[int, int], ...]
    removed_edges: Tuple[Tuple[int, int], ...]
    report: Optional[DeltaReport]
    flip_count: int


class RandomWaypointModel:
    """Random waypoint mobility over a rectangular area.

    Each node repeatedly: picks a uniform random destination, moves toward
    it in a straight line at a uniform random speed from
    ``[min_speed, max_speed]``, then pauses for ``pause_time``.

    The model advances in discrete time steps and can emit unit-disk graph
    snapshots at any instant with :meth:`snapshot`.
    """

    def __init__(
        self,
        initial_positions: Dict[int, Point],
        radius: float,
        rng: random.Random,
        area: Optional[Area] = None,
        min_speed: float = 0.5,
        max_speed: float = 2.0,
        pause_time: float = 0.0,
    ) -> None:
        if not 0 < min_speed <= max_speed:
            raise ValueError(
                f"need 0 < min_speed <= max_speed, got [{min_speed}, {max_speed}]"
            )
        if pause_time < 0:
            raise ValueError(f"pause_time must be non-negative, got {pause_time}")
        self.area = area or Area()
        self.radius = radius
        self.rng = rng
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time
        self.time = 0.0
        self._states: Dict[int, Waypoint] = {
            node: self._fresh_waypoint(position)
            for node, position in initial_positions.items()
        }

    def _fresh_waypoint(self, position: Point) -> Waypoint:
        return Waypoint(
            position=position,
            target=self.area.random_point(self.rng),
            speed=self.rng.uniform(self.min_speed, self.max_speed),
        )

    def positions(self) -> Dict[int, Point]:
        """Current node positions."""
        return {node: state.position for node, state in self._states.items()}

    def advance(self, dt: float) -> None:
        """Advance every node by ``dt`` time units."""
        if dt < 0:
            raise ValueError(f"dt must be non-negative, got {dt}")
        self.time += dt
        for node, state in self._states.items():
            self._advance_one(node, state, dt)

    def _advance_one(self, node: int, state: Waypoint, dt: float) -> None:
        remaining = dt
        while remaining > 1e-12:
            if state.pause_remaining > 0:
                pause = min(state.pause_remaining, remaining)
                state.pause_remaining -= pause
                remaining -= pause
                if state.pause_remaining <= 0:
                    fresh = self._fresh_waypoint(state.position)
                    state.target = fresh.target
                    state.speed = fresh.speed
                continue
            gap = state.position.distance_to(state.target)
            step = state.speed * remaining
            if step < gap:
                frac = step / gap
                state.position = Point(
                    state.position.x + (state.target.x - state.position.x) * frac,
                    state.position.y + (state.target.y - state.position.y) * frac,
                )
                remaining = 0.0
            else:
                state.position = state.target
                remaining -= gap / state.speed if state.speed > 0 else remaining
                state.pause_remaining = self.pause_time
                if self.pause_time == 0:
                    fresh = self._fresh_waypoint(state.position)
                    state.target = fresh.target
                    state.speed = fresh.speed

    def snapshot(self) -> UnitDiskGraph:
        """The unit-disk graph induced by current positions."""
        return build_unit_disk_graph(self.positions(), self.radius)

    def snapshots(self, dt: float, count: int) -> Iterator[UnitDiskGraph]:
        """Yield ``count`` snapshots, advancing ``dt`` before each.

        Steps where no link crosses the radius threshold reuse the
        previous snapshot's :class:`Topology` object unchanged (only the
        positions differ), so downstream epoch caches survive verbatim
        instead of being rebuilt for an identical adjacency.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        previous: Optional[UnitDiskGraph] = None
        for _ in range(count):
            self.advance(dt)
            current = self.positions()
            if previous is not None:
                added, removed = edge_flips(
                    current, self.radius, previous.topology
                )
                if not added and not removed:
                    previous = UnitDiskGraph(
                        topology=previous.topology,
                        positions=current,
                        radius=self.radius,
                    )
                    yield previous
                    continue
            previous = build_unit_disk_graph(current, self.radius)
            yield previous

    def snapshot_deltas(
        self,
        dt: float,
        count: int,
        extra_radii: Iterable[int] = (),
    ) -> Iterator[SnapshotDelta]:
        """Yield ``count`` steps as deltas over one shared topology.

        The delta-emitting variant of :meth:`snapshots`: the unit-disk
        graph is built once from the pre-advance positions, then each
        step diffs the new positions against the shared topology
        (:func:`~repro.graph.unit_disk.edge_flips`) and applies the flip
        set through :meth:`Topology.apply_delta`, so every cached query
        outside the dirty ball survives the step.  ``extra_radii`` is
        forwarded to ``apply_delta`` for callers that keep their own
        radius-keyed caches (e.g. k-hop decision caches) and need
        :meth:`DeltaReport.dirty_at` at those radii.

        Step ``i``'s adjacency is identical to the ``i``-th graph from
        :meth:`snapshots` on an equally-seeded model — only the cache
        behaviour differs.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        base = self.snapshot()
        topology = base.topology
        radii = tuple(sorted(dict.fromkeys(extra_radii)))
        for step in range(count):
            self.advance(dt)
            current = self.positions()
            added, removed = edge_flips(current, self.radius, topology)
            report = None
            if added or removed:
                report = topology.apply_delta(
                    added_edges=added,
                    removed_edges=removed,
                    extra_radii=radii,
                )
            yield SnapshotDelta(
                step=step,
                time=self.time,
                graph=UnitDiskGraph(
                    topology=topology,
                    positions=current,
                    radius=self.radius,
                ),
                added_edges=tuple(added),
                removed_edges=tuple(removed),
                report=report,
                flip_count=len(added) + len(removed),
            )
