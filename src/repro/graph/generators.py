"""Network generators for simulations, examples, and tests.

The central generator is :func:`random_connected_network`, which reproduces
the paper's deployment recipe exactly:

* place ``n`` nodes uniformly at random in a restricted 100 x 100 area,
* adjust the transmission range so the unit-disk graph has exactly ``nd/2``
  links for the requested average degree ``d``,
* discard deployments whose graph is not connected and retry.

Deterministic fixtures (grids, rings, stars) complement it for tests.
"""

from __future__ import annotations

import random
from typing import Optional

from .geometry import Area, grid_points, random_points
from .topology import Topology
from .unit_disk import UnitDiskGraph, build_unit_disk_graph, range_for_average_degree

__all__ = [
    "GenerationError",
    "random_network",
    "random_connected_network",
    "grid_network",
    "random_grid_network",
]

#: How many disconnected deployments to tolerate before giving up.  Sparse
#: configurations (n = 100, d = 6) connect a few percent of the time, so the
#: bound is generous; it exists only to turn an impossible request (e.g.
#: d = 1) into an error instead of an infinite loop.
DEFAULT_MAX_ATTEMPTS = 20_000


class GenerationError(RuntimeError):
    """Raised when no connected deployment is found within the attempt budget."""


def random_network(
    n: int,
    average_degree: float,
    rng: random.Random,
    area: Optional[Area] = None,
) -> UnitDiskGraph:
    """One random deployment with a degree-calibrated range.

    The result may be disconnected; use :func:`random_connected_network` for
    the paper's discard-and-retry behaviour.
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    area = area or Area()
    positions = random_points(n, area, rng)
    radius, _links = range_for_average_degree(positions, average_degree)
    return build_unit_disk_graph(positions, radius)


def random_connected_network(
    n: int,
    average_degree: float,
    rng: random.Random,
    area: Optional[Area] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> UnitDiskGraph:
    """The paper's generator: retry random deployments until connected.

    Raises :class:`GenerationError` after ``max_attempts`` failures, which
    signals a configuration whose connectivity probability is essentially
    zero rather than bad luck.
    """
    for _attempt in range(max_attempts):
        network = random_network(n, average_degree, rng, area)
        if network.topology.is_connected():
            return network
    raise GenerationError(
        f"no connected deployment found in {max_attempts} attempts "
        f"(n={n}, d={average_degree})"
    )


def grid_network(rows: int, cols: int, radius: float = 1.5) -> UnitDiskGraph:
    """A deterministic grid deployment (unit spacing).

    The default radius 1.5 connects horizontal, vertical, and diagonal
    neighbors — a connected, moderately dense fixture.
    """
    positions = grid_points(rows, cols)
    return build_unit_disk_graph(positions, radius)


def random_grid_network(
    side: int,
    occupancy: float,
    rng: random.Random,
    radius: float = 1.5,
) -> UnitDiskGraph:
    """A random-grid deployment (Calamoneri & Clementi's model).

    Each point of a ``side × side`` unit-spacing lattice holds a node
    independently with probability ``occupancy``; the lattice is scanned
    row-major and occupied points get sequential ids, so the layout is
    fully determined by the ``rng`` stream.  The natural large-``n``
    fixture: node count concentrates around ``occupancy · side²`` with
    bounded local density, so unit-disk construction through the cell
    grid stays O(n) however large the side grows.

    The default radius 1.5 links the (occupied) horizontal, vertical, and
    diagonal lattice neighbors, matching :func:`grid_network`.
    """
    if side < 1:
        raise ValueError(f"side must be positive, got {side}")
    if not 0.0 <= occupancy <= 1.0:
        raise ValueError(
            f"occupancy must be a probability, got {occupancy}"
        )
    lattice = grid_points(side, side)
    positions = {}
    node = 0
    for point in lattice.values():
        if rng.random() < occupancy:
            positions[node] = point
            node += 1
    return build_unit_disk_graph(positions, radius)
