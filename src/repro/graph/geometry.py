"""Planar geometry primitives for the unit-disk network model.

The paper deploys nodes uniformly at random in a restricted 100 x 100 area
and connects two nodes when their Euclidean distance is within the
transmission range ``r``.  This module provides the small amount of geometry
that the unit-disk substrate needs: points, distances, and the deployment
area abstraction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

__all__ = [
    "Point",
    "Area",
    "distance",
    "distance_squared",
    "random_points",
    "grid_points",
    "bounding_box",
]


@dataclass(frozen=True)
class Point:
    """An immutable point in the plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance_squared_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (avoids the sqrt)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def distance_squared(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points."""
    return a.distance_squared_to(b)


@dataclass(frozen=True)
class Area:
    """A rectangular deployment area.

    The paper uses a restricted 100 x 100 area; ``Area(100, 100)`` is the
    default everywhere in this library.
    """

    width: float = 100.0
    height: float = 100.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"area dimensions must be positive, got {self.width} x {self.height}"
            )

    @property
    def diagonal(self) -> float:
        """Length of the area's diagonal (an upper bound on any distance)."""
        return math.hypot(self.width, self.height)

    def contains(self, p: Point) -> bool:
        """Whether ``p`` lies inside the area (boundary inclusive)."""
        return 0.0 <= p.x <= self.width and 0.0 <= p.y <= self.height

    def clamp(self, p: Point) -> Point:
        """``p`` clamped to the area's boundary."""
        return Point(
            min(max(p.x, 0.0), self.width),
            min(max(p.y, 0.0), self.height),
        )

    def random_point(self, rng: random.Random) -> Point:
        """A point drawn uniformly at random from the area."""
        return Point(rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))


def random_points(
    count: int, area: Area, rng: random.Random
) -> Dict[int, Point]:
    """Place ``count`` nodes uniformly at random in ``area``.

    Returns a mapping from node id (``0 .. count - 1``) to position, which is
    the placement model of the paper's simulator.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return {node: area.random_point(rng) for node in range(count)}


def grid_points(rows: int, cols: int, spacing: float = 1.0) -> Dict[int, Point]:
    """Place ``rows * cols`` nodes on a regular grid.

    Useful for deterministic fixtures in tests and examples.  Node ids are
    assigned in row-major order.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"grid dimensions must be positive, got {rows} x {cols}")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    points: Dict[int, Point] = {}
    node = 0
    for row in range(rows):
        for col in range(cols):
            points[node] = Point(col * spacing, row * spacing)
            node += 1
    return points


def bounding_box(points: Iterable[Point]) -> Tuple[Point, Point]:
    """The (lower-left, upper-right) corners bounding ``points``.

    Raises ``ValueError`` on an empty iterable.
    """
    xs: List[float] = []
    ys: List[float] = []
    for p in points:
        xs.append(p.x)
        ys.append(p.y)
    if not xs:
        raise ValueError("bounding_box of an empty point set")
    return Point(min(xs), min(ys)), Point(max(xs), max(ys))
