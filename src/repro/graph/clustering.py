"""Lowest-ID clustering (Lin & Gerla style).

Paper assumption 5 keeps networks relatively sparse and points at clustering
as the standard densification escape hatch: "for a dense ad hoc network, the
clustering approach can be used to convert the dense graph to a sparse one."
This module implements the classic lowest-ID cluster formation and the
derived sparse backbone graph, so the library covers that substrate too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .topology import Topology

__all__ = ["Clustering", "lowest_id_clustering", "cluster_backbone"]


@dataclass
class Clustering:
    """The outcome of a cluster formation pass.

    Attributes
    ----------
    heads:
        Clusterhead node ids.
    membership:
        Every node id mapped to its clusterhead (heads map to themselves).
    gateways:
        Selected border nodes — one connecting edge per pair of
        neighboring clusters — that glue the backbone together.
    """

    heads: Set[int]
    membership: Dict[int, int]
    gateways: Set[int]

    def members_of(self, head: int) -> Set[int]:
        """All nodes (including the head) assigned to ``head``'s cluster."""
        if head not in self.heads:
            raise KeyError(f"{head} is not a clusterhead")
        return {node for node, h in self.membership.items() if h == head}


def lowest_id_clustering(graph: Topology) -> Clustering:
    """Classic lowest-ID clustering.

    Processing nodes in increasing id order, a node becomes a clusterhead
    when no smaller-id neighbor has already been assigned head status; every
    other node joins the smallest-id head in its neighborhood.  The result
    is a maximal independent set of heads plus a membership map.
    """
    heads: Set[int] = set()
    membership: Dict[int, int] = {}
    for node in sorted(graph.nodes()):
        head_neighbors = graph.neighbors(node) & heads
        if head_neighbors:
            membership[node] = min(head_neighbors)
        else:
            heads.add(node)
            membership[node] = node

    # Gateway selection: for every pair of neighboring clusters keep only
    # the lexicographically smallest connecting edge — one (distributed)
    # gateway pair per cluster border, not every border node.  This keeps
    # the backbone sparse even in dense deployments while preserving
    # inter-cluster connectivity.
    border_edges: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for u, v in graph.edges():
        cu, cv = membership[u], membership[v]
        if cu == cv:
            continue
        pair = (min(cu, cv), max(cu, cv))
        edge = (min(u, v), max(u, v))
        if pair not in border_edges or edge < border_edges[pair]:
            border_edges[pair] = edge
    gateways: Set[int] = set()
    for u, v in border_edges.values():
        gateways.add(u)
        gateways.add(v)
    gateways -= heads
    return Clustering(heads=heads, membership=membership, gateways=gateways)


def cluster_backbone(graph: Topology, clustering: Clustering) -> Topology:
    """The sparse backbone induced by clusterheads and gateways.

    Contains every clusterhead and gateway, with the edges of ``graph``
    restricted to those nodes.  Broadcasting over the backbone instead of
    the full dense graph is the paper's recipe for high-density deployments.
    """
    backbone_nodes = clustering.heads | clustering.gateways
    return graph.subgraph(backbone_nodes)
