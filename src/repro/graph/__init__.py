"""Graph and geometry substrates: unit-disk networks, CDS tools, mobility."""

from .cellgrid import CellGrid, grid_is_exact
from .geometry import Area, Point, distance, grid_points, random_points
from .nodeindex import NodeIndex, flood_fill, popcount
from .topology import DeltaReport, Topology
from .unit_disk import (
    UnitDiskGraph,
    build_unit_disk_graph,
    edge_flips,
    range_for_average_degree,
    range_for_link_count,
    udg_builder,
)
from .generators import (
    GenerationError,
    grid_network,
    random_connected_network,
    random_grid_network,
    random_network,
)
from .bidirectional import (
    DirectedLinks,
    bidirectional_abstraction,
    links_from_ranges,
)
from .cds import greedy_cds, greedy_set_cover, is_cds, is_dominating_set
from .clustering import Clustering, cluster_backbone, lowest_id_clustering
from .io import (
    from_networkx,
    network_from_json,
    network_to_json,
    to_networkx,
)
from .mobility import RandomWaypointModel, SnapshotDelta
from .fliptrace import FlipStep, FlipTrace, record_flip_trace
from .sharding import ShardAssignment, ShardGrid, ShardSubgraph

__all__ = [
    "Area",
    "CellGrid",
    "grid_is_exact",
    "Point",
    "distance",
    "grid_points",
    "random_points",
    "NodeIndex",
    "flood_fill",
    "popcount",
    "DeltaReport",
    "Topology",
    "UnitDiskGraph",
    "build_unit_disk_graph",
    "edge_flips",
    "range_for_average_degree",
    "range_for_link_count",
    "udg_builder",
    "GenerationError",
    "grid_network",
    "random_connected_network",
    "random_grid_network",
    "random_network",
    "DirectedLinks",
    "bidirectional_abstraction",
    "links_from_ranges",
    "greedy_cds",
    "greedy_set_cover",
    "is_cds",
    "is_dominating_set",
    "from_networkx",
    "network_from_json",
    "network_to_json",
    "to_networkx",
    "Clustering",
    "cluster_backbone",
    "lowest_id_clustering",
    "RandomWaypointModel",
    "SnapshotDelta",
    "FlipStep",
    "FlipTrace",
    "record_flip_trace",
    "ShardAssignment",
    "ShardGrid",
    "ShardSubgraph",
]
