"""Recorded ``edge_flips`` streams: JSONL round-trip and delta replay.

A mobility sweep is fully determined by its base deployment and the
per-step link-flip lists — positions along the way only matter through
the flips they cause.  :class:`FlipTrace` captures exactly that:
the base positions and radius plus one :class:`FlipStep` per step.
A trace can be

* **recorded** from a live model (:func:`record_flip_trace`),
* serialised to/from JSONL byte-identically (``to_jsonl_lines`` /
  ``from_jsonl_lines`` and the file variants), and
* **replayed** as a :meth:`~repro.graph.mobility.RandomWaypointModel.
  snapshot_deltas`-compatible stream (:meth:`FlipTrace.replay`), so the
  serial incremental sweep and the sharded driver can A/B schemes,
  shard grids, and worker counts on the *identical* workload without
  re-running the mobility model.

Replayed :class:`~repro.graph.mobility.SnapshotDelta` entries carry the
**base** positions throughout (adjacency is authoritative; per-step
positions are not recorded).  Byte identity of the JSONL round-trip
rests on ``json`` float serialisation using ``repr``, which round-trips
every finite float exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from .geometry import Point
from .mobility import RandomWaypointModel, SnapshotDelta
from .unit_disk import UnitDiskGraph, build_unit_disk_graph

__all__ = ["FlipStep", "FlipTrace", "record_flip_trace"]

_FORMAT = "repro-fliptrace"
_VERSION = 1

Edge = Tuple[int, int]


@dataclass(frozen=True)
class FlipStep:
    """One recorded step: the links that crossed the radius threshold."""

    step: int
    time: float
    added: Tuple[Edge, ...]
    removed: Tuple[Edge, ...]

    @property
    def flip_count(self) -> int:
        """Total links flipped this step."""
        return len(self.added) + len(self.removed)


@dataclass(frozen=True)
class FlipTrace:
    """A base deployment plus its recorded per-step link flips."""

    positions: Dict[int, Point]
    radius: float
    steps: Tuple[FlipStep, ...]

    def replay(self, extra_radii: Iterable[int] = ()) -> Iterator[SnapshotDelta]:
        """Re-drive the trace through one mutable :class:`Topology`.

        Builds the base unit-disk graph, then applies each step's flips
        through :meth:`Topology.apply_delta` and yields the same
        :class:`~repro.graph.mobility.SnapshotDelta` stream a live
        model would produce — ``report`` is ``None`` on flip-free steps
        and ``extra_radii`` is forwarded for callers that need
        :meth:`DeltaReport.dirty_at` at their own radii.
        """
        base = build_unit_disk_graph(self.positions, self.radius)
        topology = base.topology
        radii = tuple(sorted(dict.fromkeys(extra_radii)))
        for entry in self.steps:
            report = None
            if entry.added or entry.removed:
                report = topology.apply_delta(
                    added_edges=list(entry.added),
                    removed_edges=list(entry.removed),
                    extra_radii=radii,
                )
            yield SnapshotDelta(
                step=entry.step,
                time=entry.time,
                graph=UnitDiskGraph(
                    topology=topology,
                    positions=self.positions,
                    radius=self.radius,
                ),
                added_edges=tuple(entry.added),
                removed_edges=tuple(entry.removed),
                report=report,
                flip_count=entry.flip_count,
            )

    def to_jsonl_lines(self) -> List[str]:
        """The trace as JSONL lines: one header, then one line per step.

        Node and step order follow the trace's own ordering, keys
        serialise sorted, and floats serialise via ``repr``, so
        ``from_jsonl_lines`` followed by ``to_jsonl_lines`` reproduces
        the exact same bytes.
        """
        header = {
            "format": _FORMAT,
            "version": _VERSION,
            "radius": self.radius,
            "positions": {
                str(node): [p.x, p.y] for node, p in self.positions.items()
            },
        }
        lines = [json.dumps(header, separators=(",", ":"), sort_keys=True)]
        for entry in self.steps:
            lines.append(
                json.dumps(
                    {
                        "step": entry.step,
                        "time": entry.time,
                        "added": [list(edge) for edge in entry.added],
                        "removed": [list(edge) for edge in entry.removed],
                    },
                    separators=(",", ":"),
                    sort_keys=True,
                )
            )
        return lines

    @staticmethod
    def from_jsonl_lines(lines: Iterable[str]) -> "FlipTrace":
        """Rebuild a trace from :meth:`to_jsonl_lines` output."""
        iterator = iter(lines)
        try:
            header = json.loads(next(iterator))
        except StopIteration:
            raise ValueError("empty flip trace: missing header line") from None
        if header.get("format") != _FORMAT:
            raise ValueError(
                f"not a {_FORMAT} stream: format={header.get('format')!r}"
            )
        if header.get("version") != _VERSION:
            raise ValueError(
                f"unsupported {_FORMAT} version {header.get('version')!r}"
            )
        positions = {
            int(node): Point(xy[0], xy[1])
            for node, xy in header["positions"].items()
        }
        steps = []
        for line in iterator:
            if not line.strip():
                continue
            payload = json.loads(line)
            steps.append(
                FlipStep(
                    step=payload["step"],
                    time=payload["time"],
                    added=tuple(
                        (edge[0], edge[1]) for edge in payload["added"]
                    ),
                    removed=tuple(
                        (edge[0], edge[1]) for edge in payload["removed"]
                    ),
                )
            )
        return FlipTrace(
            positions=positions,
            radius=header["radius"],
            steps=tuple(steps),
        )

    def to_jsonl(self, path: str) -> None:
        """Write the trace to ``path`` as JSONL (one object per line)."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.to_jsonl_lines():
                handle.write(line)
                handle.write("\n")

    @staticmethod
    def from_jsonl(path: str) -> "FlipTrace":
        """Load a trace written by :meth:`to_jsonl`."""
        with open(path, "r", encoding="utf-8") as handle:
            return FlipTrace.from_jsonl_lines(handle)


def record_flip_trace(
    model: RandomWaypointModel, steps: int, dt: float
) -> FlipTrace:
    """Record ``steps`` steps of ``model`` as a replayable trace.

    Consumes the model (its RNG advances exactly as a live sweep's
    would), capturing the base positions before the first step so
    :meth:`FlipTrace.replay` rebuilds the identical base topology.
    """
    if steps < 0:
        raise ValueError(f"steps must be non-negative, got {steps}")
    base_positions = dict(model.positions())
    recorded = []
    for snap in model.snapshot_deltas(dt, steps):
        recorded.append(
            FlipStep(
                step=snap.step,
                time=snap.time,
                added=tuple(snap.added_edges),
                removed=tuple(snap.removed_edges),
            )
        )
    return FlipTrace(
        positions=base_positions,
        radius=model.radius,
        steps=tuple(recorded),
    )
