"""Serialisation and interop: save/load deployments, networkx bridges.

Reproducibility plumbing a downstream user expects: dump a sampled
deployment (topology + positions + radius) to JSON, reload it bit-exact,
and move graphs in and out of networkx when richer graph algorithms are
wanted.  networkx is imported lazily so the core library stays
dependency-free.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .geometry import Point
from .topology import Topology
from .unit_disk import UnitDiskGraph

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "network_to_json",
    "network_from_json",
    "to_networkx",
    "from_networkx",
]


def topology_to_dict(graph: Topology) -> Dict[str, Any]:
    """A JSON-ready dict: sorted node list and edge list."""
    return {
        "nodes": sorted(graph.nodes()),
        "edges": sorted(graph.edges()),
    }


def topology_from_dict(payload: Dict[str, Any]) -> Topology:
    """Inverse of :func:`topology_to_dict`."""
    try:
        nodes = payload["nodes"]
        edges = payload["edges"]
    except KeyError as exc:
        raise ValueError(f"missing key in topology payload: {exc}") from exc
    return Topology(nodes=nodes, edges=[tuple(edge) for edge in edges])


def network_to_json(network: UnitDiskGraph, indent: int = 2) -> str:
    """A full deployment — topology, positions, radius — as JSON."""
    payload = {
        "radius": network.radius,
        "positions": {
            str(node): [position.x, position.y]
            for node, position in sorted(network.positions.items())
        },
        "topology": topology_to_dict(network.topology),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def network_from_json(text: str) -> UnitDiskGraph:
    """Inverse of :func:`network_to_json` (bit-exact round trip)."""
    payload = json.loads(text)
    try:
        positions = {
            int(node): Point(x, y)
            for node, (x, y) in payload["positions"].items()
        }
        topology = topology_from_dict(payload["topology"])
        radius = float(payload["radius"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed deployment payload: {exc}") from exc
    return UnitDiskGraph(
        topology=topology, positions=positions, radius=radius
    )


def to_networkx(graph: Topology):
    """The graph as a ``networkx.Graph`` (networkx required)."""
    import networkx as nx

    mirror = nx.Graph()
    mirror.add_nodes_from(graph.nodes())
    mirror.add_edges_from(graph.edges())
    return mirror


def from_networkx(mirror) -> Topology:
    """A :class:`Topology` from any undirected ``networkx`` graph.

    Node labels must be integers (the priority machinery breaks ties by
    id); anything else raises ``ValueError``.
    """
    nodes = list(mirror.nodes())
    if any(not isinstance(node, int) for node in nodes):
        raise ValueError("node labels must be integers")
    return Topology(nodes=nodes, edges=list(mirror.edges()))
