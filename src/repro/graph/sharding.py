"""Spatial shards over the cell grid: the routing geometry of the
sharded mobility engine.

The incremental engine (:meth:`Topology.apply_delta`) already confines a
link flip's effect to the dirty ball of radius ``k + metric_locality``
around its endpoints (Definition 2 locality).  To parallelise *within*
one mobile trace, the deployment area is partitioned into **shards** —
contiguous blocks of :class:`~repro.graph.cellgrid.CellGrid` cells — and
each shard re-decides the dirty nodes that fall inside its block.

Because the cell side is at least the transmission radius, one hop moves
a node by at most one cell in Chebyshev distance, so a dirty ball of
hop-radius ``r`` seeded at a flip endpoint stays within ``r`` cells of
that endpoint.  Giving every shard a **halo** of ``halo_cells = k +
metric_locality`` cells around its core block therefore guarantees that
a flip whose endpoint lies in a shard's core has its *entire* dirty ball
inside that shard's core + halo.  Conversely, a dirty node near a shard
boundary lies in the halo of every adjacent shard — those shards all
re-decide it (cross-shard handoff), and the driver's owner rule (lowest
shard id wins) picks the canonical forward-set entry deterministically.

The geometry here governs **work routing and the determinism contract
only** — never correctness: every worker in
:mod:`repro.experiments.sharded` holds a full topology replica, so each
re-decision sees the true global graph whichever shard computed it.

Shard assignment is pinned from one set of positions (the trace's base
snapshot): node movement within a trace does not re-home nodes, which
keeps routing byte-stable, independent of replay order, and free of any
per-step position traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .cellgrid import CellGrid
from .geometry import Point

__all__ = ["ShardAssignment", "ShardGrid"]


@dataclass(frozen=True)
class ShardAssignment:
    """A pinned node-to-shard routing table.

    ``owner`` maps every node to the single shard whose core block
    contains its (clamped) cell; ``routed`` maps every node to the
    sorted tuple of all shards whose core + halo contains it — the
    shards that re-decide the node when it turns dirty.  ``owner[v]`` is
    always a member of ``routed[v]``.
    """

    owner: Dict[int, int]
    routed: Dict[int, Tuple[int, ...]]

    def handoff_width(self, node: int) -> int:
        """How many shards beyond the first re-decide ``node``."""
        return len(self.routed[node]) - 1


class ShardGrid:
    """A ``(sx, sy)`` grid of contiguous cell blocks over a deployment.

    The bounding box of ``positions`` (in cell coordinates, cell side
    from :class:`~repro.graph.cellgrid.CellGrid` for ``radius``) is
    split into ``sx`` runs of columns times ``sy`` runs of rows, as
    evenly as integer division allows; shard ids are row-major
    (``sid = by * sx + bx``).  Points outside the bounding box clamp
    into it, so every position maps to exactly one owning shard even
    after nodes wander past the box the grid was built from.
    """

    def __init__(
        self,
        positions: Dict[int, Point],
        radius: float,
        shape: Tuple[int, int] = (2, 2),
        halo_cells: int = 2,
    ) -> None:
        sx, sy = shape
        if sx < 1 or sy < 1:
            raise ValueError(f"shard shape must be >= 1x1, got {sx}x{sy}")
        if halo_cells < 0:
            raise ValueError(f"halo_cells must be >= 0, got {halo_cells}")
        self.shape = (int(sx), int(sy))
        self.halo_cells = int(halo_cells)
        self.cell_size = CellGrid(radius).cell_size
        cells = [self._cell_of(p) for p in positions.values()]
        if cells:
            self._min_cx = min(cx for cx, _cy in cells)
            self._max_cx = max(cx for cx, _cy in cells)
            self._min_cy = min(cy for _cx, cy in cells)
            self._max_cy = max(cy for _cx, cy in cells)
        else:
            self._min_cx = self._max_cx = 0
            self._min_cy = self._max_cy = 0
        self._x_starts = self._splits(self._max_cx - self._min_cx + 1, sx)
        self._y_starts = self._splits(self._max_cy - self._min_cy + 1, sy)

    @staticmethod
    def _splits(extent: int, blocks: int) -> List[int]:
        """Start offsets of ``blocks`` balanced runs over ``extent`` cells.

        Returns ``blocks + 1`` offsets (the last equals ``extent``); run
        ``i`` covers offsets ``[starts[i], starts[i+1])``.  The first
        ``extent % blocks`` runs get the extra cell, so the partition is
        deterministic and independent of the data.
        """
        base, extra = divmod(extent, blocks)
        starts = [0]
        for index in range(blocks):
            starts.append(starts[-1] + base + (1 if index < extra else 0))
        return starts

    @property
    def shard_count(self) -> int:
        """Total number of shards (``sx * sy``)."""
        return self.shape[0] * self.shape[1]

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (
            math.floor(p.x / self.cell_size),
            math.floor(p.y / self.cell_size),
        )

    def _clamped_offsets(self, p: Point) -> Tuple[int, int]:
        """``p``'s cell as offsets into the bounding box, clamped."""
        cx, cy = self._cell_of(p)
        cx = min(max(cx, self._min_cx), self._max_cx)
        cy = min(max(cy, self._min_cy), self._max_cy)
        return cx - self._min_cx, cy - self._min_cy

    @staticmethod
    def _block_of(offset: int, starts: List[int]) -> int:
        """The run index whose ``[start, next_start)`` holds ``offset``.

        Zero-width runs (more blocks than cells) are skipped in favour of
        the first run that actually covers the offset.
        """
        for index in range(len(starts) - 1):
            if starts[index] <= offset < starts[index + 1]:
                return index
        return len(starts) - 2

    def owner_of(self, p: Point) -> int:
        """The shard whose core block contains ``p`` (clamped)."""
        ox, oy = self._clamped_offsets(p)
        bx = self._block_of(ox, self._x_starts)
        by = self._block_of(oy, self._y_starts)
        return by * self.shape[0] + bx

    def touching(self, p: Point) -> Tuple[int, ...]:
        """All shards whose core + halo contains ``p``, sorted by id.

        Always includes :meth:`owner_of`; additional entries are the
        neighbouring shards whose halo reaches ``p``'s cell — the shards
        that must also re-decide ``p``'s node when a nearby flip dirties
        it (cross-shard handoff).
        """
        ox, oy = self._clamped_offsets(p)
        halo = self.halo_cells
        sx, sy = self.shape
        xs = self._x_starts
        ys = self._y_starts
        hit: List[int] = []
        for by in range(sy):
            if ys[by] == ys[by + 1]:
                continue  # zero-width block: owns no cells, gets no work
            if not (ys[by] - halo <= oy <= ys[by + 1] - 1 + halo):
                continue
            for bx in range(sx):
                if xs[bx] == xs[bx + 1]:
                    continue
                if xs[bx] - halo <= ox <= xs[bx + 1] - 1 + halo:
                    hit.append(by * sx + bx)
        return tuple(hit)

    def core_bounds(self, sid: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Inclusive absolute cell bounds ``((cx0, cy0), (cx1, cy1))`` of
        shard ``sid``'s core block (``cx1 < cx0`` for zero-width blocks).
        """
        if not 0 <= sid < self.shard_count:
            raise ValueError(f"shard id out of range: {sid}")
        by, bx = divmod(sid, self.shape[0])
        return (
            (
                self._min_cx + self._x_starts[bx],
                self._min_cy + self._y_starts[by],
            ),
            (
                self._min_cx + self._x_starts[bx + 1] - 1,
                self._min_cy + self._y_starts[by + 1] - 1,
            ),
        )

    def assign(self, positions: Dict[int, Point]) -> ShardAssignment:
        """Pin every node's owner and routed-shard tuple from ``positions``.

        Iterates ``positions`` in insertion order, so the resulting
        tables are byte-stable for a given deployment.
        """
        owner: Dict[int, int] = {}
        routed: Dict[int, Tuple[int, ...]] = {}
        for node, p in positions.items():
            owner[node] = self.owner_of(p)
            routed[node] = self.touching(p)
        return ShardAssignment(owner=owner, routed=routed)
