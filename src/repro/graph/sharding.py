"""Spatial shards over the cell grid: the routing geometry of the
sharded mobility engine.

The incremental engine (:meth:`Topology.apply_delta`) already confines a
link flip's effect to the dirty ball of radius ``k + metric_locality``
around its endpoints (Definition 2 locality).  To parallelise *within*
one mobile trace, the deployment area is partitioned into **shards** —
contiguous blocks of :class:`~repro.graph.cellgrid.CellGrid` cells — and
each shard re-decides the dirty nodes that fall inside its block.

Because the cell side is at least the transmission radius, one hop moves
a node by at most one cell in Chebyshev distance, so a dirty ball of
hop-radius ``r`` seeded at a flip endpoint stays within ``r`` cells of
that endpoint.  Giving every shard a **halo** of ``halo_cells = k +
metric_locality`` cells around its core block therefore guarantees that
a flip whose endpoint lies in a shard's core has its *entire* dirty ball
inside that shard's core + halo.  Conversely, a dirty node near a shard
boundary lies in the halo of every adjacent shard — those shards all
re-decide it (cross-shard handoff), and the driver's owner rule (lowest
shard id wins) picks the canonical forward-set entry deterministically.

The same geometry also bounds **memory**: a shard's re-decisions only
read the ``k + max(metric_locality, metric_value_radius)`` ball of each
node it answers for, and that ball stays within a fixed cell distance of
the node.  :class:`ShardSubgraph` materialises exactly that slice — a
partial :class:`~repro.graph.topology.Topology` over a shard's
core + halo **universe**, under its own stable
:class:`~repro.graph.nodeindex.NodeIndex` whose insertion-order bit
positions are the shard's *local* ids, with an explicit local↔global
mapping.  Workers in :mod:`repro.experiments.sharded` hold these
O(core + halo) replicas instead of full copies; the parent routes each
link flip only to the shards whose universe contains *both* endpoints
(an edge with an endpoint outside the universe is not part of the
induced subgraph), so every replica equals the induced global graph on
its universe at every step, and a re-decision whose decision ball lies
inside the universe is exact.

Shard assignment is pinned from one set of positions (the trace's base
snapshot) and stays byte-stable between re-homes: the driver may
re-partition at a step boundary when mobility skews per-shard load (a
*re-home*, counted and deterministic because it depends only on the
trace), but node movement alone never re-routes a node mid-epoch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..instrument import _STACK as _COUNTER_STACK
from .cellgrid import CellGrid
from .geometry import Point
from .topology import Edge, Topology

__all__ = ["ShardAssignment", "ShardGrid", "ShardSubgraph"]


@dataclass(frozen=True)
class ShardAssignment:
    """A pinned node-to-shard routing table.

    ``owner`` maps every node to the single shard whose core block
    contains its (clamped) cell; ``routed`` maps every node to the
    sorted tuple of all shards whose core + halo contains it — the
    shards that re-decide the node when it turns dirty.  ``owner[v]`` is
    always a member of ``routed[v]``.
    """

    owner: Dict[int, int]
    routed: Dict[int, Tuple[int, ...]]

    def handoff_width(self, node: int) -> int:
        """How many shards beyond the first re-decide ``node``."""
        return len(self.routed[node]) - 1


class ShardGrid:
    """A ``(sx, sy)`` grid of contiguous cell blocks over a deployment.

    The bounding box of ``positions`` (in cell coordinates, cell side
    from :class:`~repro.graph.cellgrid.CellGrid` for ``radius``) is
    split into ``sx`` runs of columns times ``sy`` runs of rows, as
    evenly as integer division allows; shard ids are row-major
    (``sid = by * sx + bx``).  Points outside the bounding box clamp
    into it, so every position maps to exactly one owning shard even
    after nodes wander past the box the grid was built from.
    """

    def __init__(
        self,
        positions: Dict[int, Point],
        radius: float,
        shape: Tuple[int, int] = (2, 2),
        halo_cells: int = 2,
        x_weights: Optional[Sequence[float]] = None,
        y_weights: Optional[Sequence[float]] = None,
    ) -> None:
        sx, sy = shape
        if sx < 1 or sy < 1:
            raise ValueError(f"shard shape must be >= 1x1, got {sx}x{sy}")
        if halo_cells < 0:
            raise ValueError(f"halo_cells must be >= 0, got {halo_cells}")
        self.shape = (int(sx), int(sy))
        self.halo_cells = int(halo_cells)
        self.cell_size = CellGrid(radius).cell_size
        cells = [self._cell_of(p) for p in positions.values()]
        if cells:
            self._min_cx = min(cx for cx, _cy in cells)
            self._max_cx = max(cx for cx, _cy in cells)
            self._min_cy = min(cy for _cx, cy in cells)
            self._max_cy = max(cy for _cx, cy in cells)
        else:
            self._min_cx = self._max_cx = 0
            self._min_cy = self._max_cy = 0
        x_extent = self._max_cx - self._min_cx + 1
        y_extent = self._max_cy - self._min_cy + 1
        if x_weights is None:
            self._x_starts = self._splits(x_extent, sx)
        else:
            if len(x_weights) != x_extent:
                raise ValueError(
                    f"x_weights must cover {x_extent} cells, got {len(x_weights)}"
                )
            self._x_starts = self._weighted_splits(x_weights, sx)
        if y_weights is None:
            self._y_starts = self._splits(y_extent, sy)
        else:
            if len(y_weights) != y_extent:
                raise ValueError(
                    f"y_weights must cover {y_extent} cells, got {len(y_weights)}"
                )
            self._y_starts = self._weighted_splits(y_weights, sy)

    @staticmethod
    def _splits(extent: int, blocks: int) -> List[int]:
        """Start offsets of ``blocks`` balanced runs over ``extent`` cells.

        Returns ``blocks + 1`` offsets (the last equals ``extent``); run
        ``i`` covers offsets ``[starts[i], starts[i+1])``.  The first
        ``extent % blocks`` runs get the extra cell, so the partition is
        deterministic and independent of the data.
        """
        base, extra = divmod(extent, blocks)
        starts = [0]
        for index in range(blocks):
            starts.append(starts[-1] + base + (1 if index < extra else 0))
        return starts

    @staticmethod
    def _weighted_splits(weights: Sequence[float], blocks: int) -> List[int]:
        """Start offsets of ``blocks`` runs balancing per-cell ``weights``.

        A prefix-greedy split: run boundary ``i`` is placed at the first
        cell whose weight prefix reaches ``total * i / blocks``.  The
        offsets are non-decreasing (zero-width runs are allowed — the
        routing methods already skip them) and depend only on the weight
        vector, so the split is deterministic.  An all-zero weight
        vector degenerates to the uniform :meth:`_splits`.
        """
        extent = len(weights)
        total = float(sum(weights))
        if total <= 0:
            return ShardGrid._splits(extent, blocks)
        starts = [0]
        prefix = 0.0
        cell = 0
        for block in range(1, blocks):
            target = total * block / blocks
            while cell < extent and prefix < target:
                prefix += weights[cell]
                cell += 1
            starts.append(cell)
        starts.append(extent)
        return starts

    @property
    def shard_count(self) -> int:
        """Total number of shards (``sx * sy``)."""
        return self.shape[0] * self.shape[1]

    def _cell_of(self, p: Point) -> Tuple[int, int]:
        return (
            math.floor(p.x / self.cell_size),
            math.floor(p.y / self.cell_size),
        )

    def _clamped_offsets(self, p: Point) -> Tuple[int, int]:
        """``p``'s cell as offsets into the bounding box, clamped."""
        cx, cy = self._cell_of(p)
        cx = min(max(cx, self._min_cx), self._max_cx)
        cy = min(max(cy, self._min_cy), self._max_cy)
        return cx - self._min_cx, cy - self._min_cy

    def offsets_of(self, p: Point) -> Tuple[int, int]:
        """``p``'s cell as ``(ox, oy)`` bounding-box offsets, clamped.

        The public handle for load accounting: the driver projects
        per-node work onto these offsets to build the weight vectors a
        re-home feeds back through ``x_weights``/``y_weights``.
        """
        return self._clamped_offsets(p)

    @property
    def extents(self) -> Tuple[int, int]:
        """Bounding-box size in cells, ``(x_cells, y_cells)``."""
        return (self._x_starts[-1], self._y_starts[-1])

    @property
    def splits(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """The ``(x_starts, y_starts)`` run offsets — the full split.

        Two grids over the same bounding box route identically iff
        their splits are equal; the sharded driver compares these to
        skip a re-home that would not actually move any boundary.
        """
        return (tuple(self._x_starts), tuple(self._y_starts))

    @staticmethod
    def _block_of(offset: int, starts: List[int]) -> int:
        """The run index whose ``[start, next_start)`` holds ``offset``.

        Zero-width runs (more blocks than cells) are skipped in favour of
        the first run that actually covers the offset.
        """
        for index in range(len(starts) - 1):
            if starts[index] <= offset < starts[index + 1]:
                return index
        return len(starts) - 2

    def owner_of(self, p: Point) -> int:
        """The shard whose core block contains ``p`` (clamped)."""
        ox, oy = self._clamped_offsets(p)
        bx = self._block_of(ox, self._x_starts)
        by = self._block_of(oy, self._y_starts)
        return by * self.shape[0] + bx

    def touching(
        self, p: Point, halo_cells: Optional[int] = None
    ) -> Tuple[int, ...]:
        """All shards whose core + halo contains ``p``, sorted by id.

        Always includes :meth:`owner_of`; additional entries are the
        neighbouring shards whose halo reaches ``p``'s cell — the shards
        that must also re-decide ``p``'s node when a nearby flip dirties
        it (cross-shard handoff).  ``halo_cells`` overrides the grid's
        default halo for this query: the sharded driver routes with the
        dirty-ball halo but extracts replica *universes* with a wider
        one (routing halo + decision radius), so a routed node's whole
        decision ball usually sits inside its shard's universe.
        """
        ox, oy = self._clamped_offsets(p)
        halo = self.halo_cells if halo_cells is None else int(halo_cells)
        if halo < 0:
            raise ValueError(f"halo_cells must be >= 0, got {halo}")
        sx, sy = self.shape
        xs = self._x_starts
        ys = self._y_starts
        hit: List[int] = []
        for by in range(sy):
            if ys[by] == ys[by + 1]:
                continue  # zero-width block: owns no cells, gets no work
            if not (ys[by] - halo <= oy <= ys[by + 1] - 1 + halo):
                continue
            for bx in range(sx):
                if xs[bx] == xs[bx + 1]:
                    continue
                if xs[bx] - halo <= ox <= xs[bx + 1] - 1 + halo:
                    hit.append(by * sx + bx)
        return tuple(hit)

    def core_bounds(self, sid: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Inclusive absolute cell bounds ``((cx0, cy0), (cx1, cy1))`` of
        shard ``sid``'s core block (``cx1 < cx0`` for zero-width blocks).
        """
        if not 0 <= sid < self.shard_count:
            raise ValueError(f"shard id out of range: {sid}")
        by, bx = divmod(sid, self.shape[0])
        return (
            (
                self._min_cx + self._x_starts[bx],
                self._min_cy + self._y_starts[by],
            ),
            (
                self._min_cx + self._x_starts[bx + 1] - 1,
                self._min_cy + self._y_starts[by + 1] - 1,
            ),
        )

    def assign(self, positions: Dict[int, Point]) -> ShardAssignment:
        """Pin every node's owner and routed-shard tuple from ``positions``.

        Iterates ``positions`` in insertion order, so the resulting
        tables are byte-stable for a given deployment.
        """
        owner: Dict[int, int] = {}
        routed: Dict[int, Tuple[int, ...]] = {}
        for node, p in positions.items():
            owner[node] = self.owner_of(p)
            routed[node] = self.touching(p)
        return ShardAssignment(owner=owner, routed=routed)


class ShardSubgraph:
    """A shard's partial topology replica over its core + halo universe.

    Holds the induced subgraph of the global topology on the shard's
    **universe** (the member nodes, in the parent's insertion order) as
    a fully independent :class:`~repro.graph.topology.Topology`: the
    replica's own :meth:`~repro.graph.topology.Topology.node_index`
    assigns bit positions in that same order, and those positions are
    the shard's *local* ids.  ``to_local``/``to_global`` translate
    between the worker protocol's compact local indices and the global
    ids the merge step speaks.

    The replica is kept current by :meth:`apply_flips`: the parent
    routes a link flip to every shard whose universe contains **both**
    endpoints, so after each step the replica equals the induced global
    graph on its universe — an edge with an endpoint outside the
    universe is not part of the induced subgraph and is never shipped.
    The membership filter inside :meth:`apply_flips` re-derives that
    rule locally, so the replica stays consistent even if a caller
    passes the unrouted flip list.

    State (``_global_nodes``, ``_local_of``, ``_subgraph``) is owned by
    this class alone; detlint DET010 flags foreign writes to any of it.
    Pickling ships only the compact ``(shard_id, nodes, edges,
    positions)`` state — never the replica's memoised mask tables.
    """

    def __init__(
        self,
        shard_id: int,
        nodes: Iterable[int],
        edges: Iterable[Edge],
        positions: Optional[Dict[int, Point]] = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self._global_nodes: Tuple[int, ...] = tuple(nodes)
        self._local_of: Dict[int, int] = {
            node: position
            for position, node in enumerate(self._global_nodes)
        }
        if len(self._local_of) != len(self._global_nodes):
            raise ValueError("duplicate node ids in shard universe")
        self._subgraph = Topology(nodes=self._global_nodes, edges=edges)
        self._positions: Dict[int, Point] = dict(positions or {})

    @classmethod
    def extract(
        cls,
        shard_id: int,
        topology: Topology,
        members: Iterable[int],
        positions: Optional[Dict[int, Point]] = None,
    ) -> "ShardSubgraph":
        """Materialise the induced subgraph of ``topology`` on ``members``.

        Membership is resolved through the parent's node index, so the
        universe tuple (and with it every local id) follows the parent's
        insertion order regardless of the order ``members`` arrives in —
        the property that keeps local ids byte-stable across jobs
        counts.  Edges are read off the parent's adjacency-mask rows
        restricted to the member mask.
        """
        index = topology.node_index()
        member_mask = index.mask_of(members)
        ordered = index.members(member_mask)
        mask_index, rows = topology.adjacency_masks()
        edges: List[Edge] = []
        for u in ordered:
            row = rows[mask_index.position(u)] & member_mask
            for v in mask_index.members(row):
                if u < v:
                    edges.append((u, v))
        kept: Dict[int, Point] = {}
        if positions:
            kept = {
                node: positions[node] for node in ordered if node in positions
            }
        return cls(shard_id, ordered, edges, kept)

    @property
    def graph(self) -> Topology:
        """The partial replica itself (induced subgraph, global ids)."""
        return self._subgraph

    @property
    def global_nodes(self) -> Tuple[int, ...]:
        """The universe in local-id order (``global_nodes[local] = gid``)."""
        return self._global_nodes

    @property
    def positions(self) -> Dict[int, Point]:
        """Universe node positions at extraction time (may be empty)."""
        return self._positions

    def __len__(self) -> int:
        return len(self._global_nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._local_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardSubgraph(shard_id={self.shard_id}, "
            f"nodes={len(self._global_nodes)}, "
            f"edges={self._subgraph.edge_count()})"
        )

    def to_local(self, node: int) -> int:
        """The local id (bit position) of global ``node``."""
        return self._local_of[node]

    def to_global(self, position: int) -> int:
        """The global id at local ``position``."""
        return self._global_nodes[position]

    def apply_flips(
        self,
        added: Iterable[Edge],
        removed: Iterable[Edge],
        extra_radii: Iterable[int] = (),
    ) -> int:
        """Apply one step's link flips to the replica; count applied.

        Flips with an endpoint outside the universe are dropped (they do
        not exist in the induced subgraph), so passing the full global
        flip list is safe — the parent's routing merely avoids shipping
        flips this filter would discard anyway.  Applied flips go
        through :meth:`~repro.graph.topology.Topology.apply_delta`, so
        the replica's mask/word-table rows are patched in place under
        its stable local index.
        """
        local_of = self._local_of
        local_added = [
            (u, v) for u, v in added if u in local_of and v in local_of
        ]
        local_removed = [
            (u, v) for u, v in removed if u in local_of and v in local_of
        ]
        self._subgraph.apply_delta(
            added_edges=local_added,
            removed_edges=local_removed,
            extra_radii=extra_radii,
        )
        applied = len(local_added) + len(local_removed)
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].shard_flips_applied += applied
        return applied

    def __getstate__(self) -> Dict[str, object]:
        # Compact wire state: rebuilding from (nodes, edges) on the far
        # side is cheaper than pickling the replica's memoised mask and
        # word tables.
        return {
            "shard_id": self.shard_id,
            "nodes": self._global_nodes,
            "edges": tuple(self._subgraph.edges()),
            "positions": self._positions,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__(  # type: ignore[misc]
            state["shard_id"],
            state["nodes"],
            state["edges"],
            state["positions"],
        )
