"""Unit-disk graph construction and transmitter-range calibration.

The paper represents an ad hoc network as a unit disk graph: two nodes are
connected when their geographical distance is within the transmission range
``r``.  Its simulator additionally *calibrates* the range per deployment: "the
transmitter range is adjusted according to a given average node degree d to
produce exactly nd/2 links in the corresponding unit disk graph."  Both
operations live here.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .geometry import Point
from .topology import Topology

__all__ = [
    "UnitDiskGraph",
    "build_unit_disk_graph",
    "edge_flips",
    "range_for_link_count",
    "range_for_average_degree",
]


@dataclass
class UnitDiskGraph:
    """A unit-disk graph: topology plus the geometry that produced it.

    Attributes
    ----------
    topology:
        The induced undirected graph.
    positions:
        Node id to planar position.
    radius:
        The transmission range used to connect nodes.
    """

    topology: Topology
    positions: Dict[int, Point]
    radius: float

    def __post_init__(self) -> None:
        if set(self.positions) != set(self.topology.nodes()):
            raise ValueError("positions and topology disagree on the node set")

    @property
    def node_count(self) -> int:
        return self.topology.node_count()

    @property
    def link_count(self) -> int:
        return self.topology.edge_count()

    def average_degree(self) -> float:
        """Mean node degree of the induced topology."""
        return self.topology.average_degree()

    def with_radius(self, radius: float) -> "UnitDiskGraph":
        """Rebuild the graph with a different transmission range."""
        return build_unit_disk_graph(self.positions, radius)


def build_unit_disk_graph(
    positions: Dict[int, Point], radius: float
) -> UnitDiskGraph:
    """Connect every pair of nodes within ``radius`` of each other.

    The check is done on squared distances so no square roots are taken in
    the O(n^2) pair loop.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    topology = Topology(nodes=positions)
    nodes = list(positions)
    radius_sq = radius * radius
    for i, u in enumerate(nodes):
        pu = positions[u]
        for v in nodes[i + 1:]:
            if pu.distance_squared_to(positions[v]) <= radius_sq:
                topology.add_edge(u, v)
    return UnitDiskGraph(topology=topology, positions=positions, radius=radius)


def edge_flips(
    positions: Dict[int, Point],
    radius: float,
    topology: Topology,
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """``(added, removed)``: links that flip between ``topology`` and the
    unit-disk graph induced by ``positions``/``radius``.

    The diff that drives :meth:`Topology.apply_delta` across mobility
    steps: one O(n^2) squared-distance scan (the same cost as the pair
    loop in :func:`build_unit_disk_graph`, but with no graph
    construction or cache loss when nothing flips).  Both lists hold
    ``(min, max)`` pairs in sorted order.  The node sets must match —
    mobility moves nodes, it does not add or remove them.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if set(positions) != set(topology.nodes()):
        raise ValueError("positions and topology disagree on the node set")
    added: List[Tuple[int, int]] = []
    removed: List[Tuple[int, int]] = []
    nodes = list(positions)
    radius_sq = radius * radius
    for i, u in enumerate(nodes):
        pu = positions[u]
        for v in nodes[i + 1:]:
            linked = pu.distance_squared_to(positions[v]) <= radius_sq
            if linked != topology.has_edge(u, v):
                pair = (u, v) if u < v else (v, u)
                (added if linked else removed).append(pair)
    added.sort()
    removed.sort()
    return added, removed


def _sorted_pair_distances_squared(positions: Dict[int, Point]) -> List[float]:
    """All pairwise squared distances, ascending."""
    nodes = list(positions)
    distances = [
        positions[u].distance_squared_to(positions[v])
        for i, u in enumerate(nodes)
        for v in nodes[i + 1:]
    ]
    distances.sort()
    return distances


def range_for_link_count(
    positions: Dict[int, Point], links: int
) -> float:
    """The smallest transmission range producing at least ``links`` links.

    The returned radius lies strictly between the ``links``-th smallest
    pair distance and the next larger distinct one, so floating-point
    rounding cannot drop the threshold pair.  With nodes in general
    position (distinct pairwise distances — almost surely true for random
    placement) the range therefore produces *exactly* ``links`` links;
    tied distances at the threshold are all included ("at least"
    semantics).  With ``links == 0`` a range smaller than the closest pair
    is returned, so the graph is empty.
    """
    n = len(positions)
    max_links = n * (n - 1) // 2
    if links < 0 or links > max_links:
        raise ValueError(
            f"cannot realise {links} links with {n} nodes (max {max_links})"
        )
    distances_sq = _sorted_pair_distances_squared(positions)
    if links == 0:
        return math.sqrt(distances_sq[0]) / 2.0 if distances_sq else 0.0
    threshold_sq = distances_sq[links - 1]
    larger = [d for d in distances_sq[links:] if d > threshold_sq]
    if larger:
        radius_sq = (threshold_sq + larger[0]) / 2.0
    else:
        radius_sq = threshold_sq * 1.0000001 + 1e-12
    return math.sqrt(radius_sq)


def range_for_average_degree(
    positions: Dict[int, Point], average_degree: float
) -> Tuple[float, int]:
    """Calibrate the range for a target average degree (paper's recipe).

    Produces exactly ``round(n * d / 2)`` links.  Returns the range and the
    realised link count.
    """
    if average_degree < 0:
        raise ValueError(
            f"average degree must be non-negative, got {average_degree}"
        )
    n = len(positions)
    links = round(n * average_degree / 2.0)
    links = min(links, n * (n - 1) // 2)
    return range_for_link_count(positions, links), links
