"""Unit-disk graph construction and transmitter-range calibration.

The paper represents an ad hoc network as a unit disk graph: two nodes are
connected when their geographical distance is within the transmission range
``r``.  Its simulator additionally *calibrates* the range per deployment: "the
transmitter range is adjusted according to a given average node degree d to
produce exactly nd/2 links in the corresponding unit disk graph."  Both
operations live here.

Builders
--------
Two interchangeable construction methods compute every operation:

* ``grid`` (the default) — neighbor candidates come from a spatial-hash
  cell grid (:mod:`repro.graph.cellgrid`, cell size = radius), so
  construction, :func:`edge_flips`, and range calibration cost
  O(n · local density) instead of O(n²) time (and calibration O(n) instead
  of O(n²) memory).  Whenever :func:`~repro.graph.cellgrid.grid_is_exact`
  cannot certify the geometry (non-finite or astronomical coordinates) the
  grid transparently falls back to the pairwise scan.
* ``pairwise`` — the original all-pairs scan, kept as the executable
  reference.

Select with ``REPRO_UDG_BUILDER=pairwise`` (or ``grid``), or pass
``method=`` explicitly.  Both methods apply the identical
``distance² <= radius²`` float comparison to decide each link, so
topologies, flip lists, and calibrated radii are byte-identical — the test
suite cross-checks this on randomized and degenerate layouts.
"""

from __future__ import annotations

import math
import os

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cellgrid import (
    count_pairs_within,
    distances_within,
    grid_is_exact,
    grid_pairs_within,
)
from .geometry import Point
from .topology import Topology

__all__ = [
    "UnitDiskGraph",
    "build_unit_disk_graph",
    "edge_flips",
    "range_for_link_count",
    "range_for_average_degree",
    "udg_builder",
]

_UDG_METHODS = ("grid", "pairwise")


def udg_builder() -> str:
    """The active construction method, from ``REPRO_UDG_BUILDER``.

    ``grid`` (default) or ``pairwise``.  Read per call so tests and A/B
    benchmarks can flip the environment variable between evaluations; the
    two methods produce byte-identical topologies, flip lists, and radii,
    so flipping mid-run is safe.
    """
    method = os.environ.get("REPRO_UDG_BUILDER", "grid")
    if method not in _UDG_METHODS:
        raise ValueError(
            f"REPRO_UDG_BUILDER must be one of {_UDG_METHODS}, "
            f"got {method!r}"
        )
    return method


def _resolve_method(method: Optional[str]) -> str:
    if method is None:
        return udg_builder()
    if method not in _UDG_METHODS:
        raise ValueError(
            f"method must be one of {_UDG_METHODS}, got {method!r}"
        )
    return method


def _use_grid(
    method: Optional[str], positions: Dict[int, Point], radius: float
) -> bool:
    """Whether to take the grid path (resolving env + exactness fallback)."""
    return _resolve_method(method) == "grid" and grid_is_exact(
        positions, radius
    )


@dataclass
class UnitDiskGraph:
    """A unit-disk graph: topology plus the geometry that produced it.

    Attributes
    ----------
    topology:
        The induced undirected graph.
    positions:
        Node id to planar position.
    radius:
        The transmission range used to connect nodes.
    """

    topology: Topology
    positions: Dict[int, Point]
    radius: float

    def __post_init__(self) -> None:
        if set(self.positions) != set(self.topology.nodes()):
            raise ValueError("positions and topology disagree on the node set")

    @property
    def node_count(self) -> int:
        return self.topology.node_count()

    @property
    def link_count(self) -> int:
        return self.topology.edge_count()

    def average_degree(self) -> float:
        """Mean node degree of the induced topology."""
        return self.topology.average_degree()

    def with_radius(
        self, radius: float, method: Optional[str] = None
    ) -> "UnitDiskGraph":
        """Rebuild the graph with a different transmission range."""
        return build_unit_disk_graph(self.positions, radius, method=method)


def build_unit_disk_graph(
    positions: Dict[int, Point], radius: float, method: Optional[str] = None
) -> UnitDiskGraph:
    """Connect every pair of nodes within ``radius`` of each other.

    The check is done on squared distances so no square roots are taken.
    Under the default ``grid`` method candidates come from the 9-cell
    neighborhood of a spatial hash; ``pairwise`` scans all O(n²) pairs.
    Node order, edge set, and every link decision are identical either
    way.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    topology = Topology(nodes=positions)
    if _use_grid(method, positions, radius):
        for u, v in grid_pairs_within(positions, radius):
            topology.add_edge(u, v)
        return UnitDiskGraph(
            topology=topology, positions=positions, radius=radius
        )
    nodes = list(positions)
    radius_sq = radius * radius
    for i, u in enumerate(nodes):
        pu = positions[u]
        for v in nodes[i + 1:]:
            if pu.distance_squared_to(positions[v]) <= radius_sq:
                topology.add_edge(u, v)
    return UnitDiskGraph(topology=topology, positions=positions, radius=radius)


def edge_flips(
    positions: Dict[int, Point],
    radius: float,
    topology: Topology,
    method: Optional[str] = None,
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """``(added, removed)``: links that flip between ``topology`` and the
    unit-disk graph induced by ``positions``/``radius``.

    The diff that drives :meth:`Topology.apply_delta` across mobility
    steps.  Under the ``grid`` method, additions come from a cell-grid
    scan of within-radius pairs and removals from re-checking only the
    edges ``topology`` already has — O(n · local density + m) instead of
    the O(n²) pairwise scan.  Both lists hold ``(min, max)`` pairs in
    sorted order (the ordering :meth:`Topology.apply_delta` replays), and
    both methods produce identical lists.  The node sets must match —
    mobility moves nodes, it does not add or remove them.
    """
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if set(positions) != set(topology.nodes()):
        raise ValueError("positions and topology disagree on the node set")
    added: List[Tuple[int, int]] = []
    removed: List[Tuple[int, int]] = []
    radius_sq = radius * radius
    if _use_grid(method, positions, radius):
        for u, v in grid_pairs_within(positions, radius):
            if not topology.has_edge(u, v):
                added.append((u, v) if u < v else (v, u))
        for u, v in topology.edges():
            if positions[u].distance_squared_to(positions[v]) > radius_sq:
                removed.append((u, v))
        added.sort()
        removed.sort()
        return added, removed
    nodes = list(positions)
    for i, u in enumerate(nodes):
        pu = positions[u]
        for v in nodes[i + 1:]:
            linked = pu.distance_squared_to(positions[v]) <= radius_sq
            if linked != topology.has_edge(u, v):
                pair = (u, v) if u < v else (v, u)
                (added if linked else removed).append(pair)
    added.sort()
    removed.sort()
    return added, removed


def _sorted_pair_distances_squared(positions: Dict[int, Point]) -> List[float]:
    """All pairwise squared distances, ascending (pairwise reference)."""
    nodes = list(positions)
    distances = [
        positions[u].distance_squared_to(positions[v])
        for i, u in enumerate(nodes)
        for v in nodes[i + 1:]
    ]
    distances.sort()
    return distances


def _diameter_bound(positions: Dict[int, Point]) -> float:
    """An upper bound on the largest pairwise distance (0 if degenerate)."""
    xs = [p.x for p in positions.values()]
    ys = [p.y for p in positions.values()]
    dx = max(xs) - min(xs)
    dy = max(ys) - min(ys)
    # The factor 2 absorbs every rounding in sqrt and in re-squaring the
    # radius during counting: pairs at the true diameter must count.
    return 2.0 * math.sqrt(dx * dx + dy * dy)


def _grid_threshold_distances(
    positions: Dict[int, Point], links: int
) -> Tuple[float, Optional[float]]:
    """``(threshold, next_larger)`` squared distances via the cell grid.

    ``threshold`` is the ``links``-th smallest pairwise squared distance
    and ``next_larger`` the smallest strictly greater one (None when the
    threshold is the maximum) — the two quantities range calibration
    needs, found by doubling the search radius until enough pairs fall
    inside and materialising only those O(links) candidates instead of
    all n(n-1)/2 distances.
    """
    diameter = _diameter_bound(positions)
    if diameter == 0.0:
        # Every position coincides: all pair distances are exactly 0.
        return 0.0, None
    n = len(positions)
    max_links = n * (n - 1) // 2
    # Density-scaled first guess: for uniform deployments the number of
    # pairs within r grows like r², so this lands near the target count.
    radius = diameter * math.sqrt(links / max_links)
    radius = max(radius, diameter / 4294967296.0)
    while count_pairs_within(positions, radius) < links:
        radius = min(radius * 2.0, diameter)
    distances = sorted(distances_within(positions, radius))
    threshold = distances[links - 1]
    while True:
        for d in distances[links:]:
            if d > threshold:
                # Everything outside the search radius is farther still,
                # so the first in-radius exceedance is the global next.
                return threshold, d
        if radius >= diameter:
            return threshold, None
        radius = min(radius * 2.0, diameter)
        distances = sorted(distances_within(positions, radius))


def _grid_min_distance(positions: Dict[int, Point]) -> float:
    """The smallest pairwise squared distance, via the cell grid."""
    diameter = _diameter_bound(positions)
    if diameter == 0.0:
        return 0.0
    radius = diameter / len(positions)
    while count_pairs_within(positions, radius) == 0:
        radius = min(radius * 2.0, diameter)
    # Any pair beyond the search radius is farther than everything found.
    return min(distances_within(positions, radius))


def range_for_link_count(
    positions: Dict[int, Point], links: int, method: Optional[str] = None
) -> float:
    """The smallest transmission range producing at least ``links`` links.

    The returned radius lies strictly between the ``links``-th smallest
    pair distance and the next larger distinct one, so floating-point
    rounding cannot drop the threshold pair.  With nodes in general
    position (distinct pairwise distances — almost surely true for random
    placement) the range therefore produces *exactly* ``links`` links;
    tied distances at the threshold are all included ("at least"
    semantics).  With ``links == 0`` a range smaller than the closest pair
    is returned, so the graph is empty; if two nodes share a position no
    such range exists (any radius, including 0, links the coincident
    pair) and a :class:`ValueError` is raised.

    Under the default ``grid`` method the threshold is located by a
    doubling radius search over a grid-based link counter — O(n + links)
    memory instead of materialising all n(n-1)/2 distances — and the
    result is byte-identical to the ``pairwise`` reference.
    """
    n = len(positions)
    max_links = n * (n - 1) // 2
    if links < 0 or links > max_links:
        raise ValueError(
            f"cannot realise {links} links with {n} nodes (max {max_links})"
        )
    if max_links == 0:
        return 0.0
    # The grid search probes radii up to the deployment diameter, so
    # exactness must hold at that scale, not just at the final radius.
    use_grid = _resolve_method(method) == "grid" and grid_is_exact(
        positions, _diameter_bound(positions)
    )
    if links == 0:
        if use_grid:
            closest_sq = _grid_min_distance(positions)
        else:
            nodes = list(positions)
            closest_sq = min(
                positions[u].distance_squared_to(positions[v])
                for i, u in enumerate(nodes)
                for v in nodes[i + 1:]
            )
        if closest_sq == 0.0:
            raise ValueError(
                "cannot realise 0 links: two nodes share a position "
                "(every radius, including 0, links the coincident pair)"
            )
        return math.sqrt(closest_sq) / 2.0
    if use_grid:
        threshold_sq, larger = _grid_threshold_distances(positions, links)
    else:
        distances_sq = _sorted_pair_distances_squared(positions)
        threshold_sq = distances_sq[links - 1]
        larger = next(
            (d for d in distances_sq[links:] if d > threshold_sq), None
        )
    if larger is not None:
        radius_sq = (threshold_sq + larger) / 2.0
    else:
        radius_sq = threshold_sq * 1.0000001 + 1e-12
    return math.sqrt(radius_sq)


def range_for_average_degree(
    positions: Dict[int, Point],
    average_degree: float,
    method: Optional[str] = None,
) -> Tuple[float, int]:
    """Calibrate the range for a target average degree (paper's recipe).

    Produces exactly ``round(n * d / 2)`` links.  Returns the range and the
    realised link count.
    """
    if average_degree < 0:
        raise ValueError(
            f"average degree must be non-negative, got {average_degree}"
        )
    n = len(positions)
    links = round(n * average_degree / 2.0)
    links = min(links, n * (n - 1) // 2)
    return range_for_link_count(positions, links, method=method), links
