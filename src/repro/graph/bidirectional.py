"""Bidirectional abstraction over unidirectional ad hoc links.

Paper assumption 3 requires a "connected graph without unidirectional
links" and points at sublayers that "provide a bidirectional abstraction
for unidirectional ad hoc networks."  This module supplies that substrate:
a minimal directed-link model (as produced, e.g., by heterogeneous
transmit powers) and the abstraction that keeps only mutually reachable
1-hop links — the symmetric core every protocol in this library runs on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .geometry import Point
from .topology import Topology

__all__ = [
    "DirectedLinks",
    "bidirectional_abstraction",
    "links_from_ranges",
]

Edge = Tuple[int, int]


class DirectedLinks:
    """A directed link set over integer node ids."""

    def __init__(self, nodes: Iterable[int] = (), links: Iterable[Edge] = ()):
        self._out: Dict[int, Set[int]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in links:
            self.add_link(u, v)

    def add_node(self, node: int) -> None:
        """Register ``node`` with no outgoing links (idempotent)."""
        self._out.setdefault(node, set())

    def add_link(self, sender: int, receiver: int) -> None:
        """Add the directed link ``sender -> receiver``."""
        if sender == receiver:
            raise ValueError(f"self-link on node {sender} is not allowed")
        self.add_node(sender)
        self.add_node(receiver)
        self._out[sender].add(receiver)

    def has_link(self, sender: int, receiver: int) -> bool:
        """Whether the directed link ``sender -> receiver`` exists."""
        return receiver in self._out.get(sender, ())

    def nodes(self) -> List[int]:
        """All registered node ids."""
        return list(self._out)

    def links(self) -> List[Edge]:
        """All directed links as ``(sender, receiver)`` pairs."""
        return [
            (sender, receiver)
            for sender, receivers in self._out.items()
            for receiver in receivers
        ]

    def out_neighbors(self, node: int) -> Set[int]:
        """Receivers of ``node``'s transmissions."""
        try:
            return set(self._out[node])
        except KeyError as exc:
            raise KeyError(f"node {node} not in link set") from exc


def bidirectional_abstraction(links: DirectedLinks) -> Topology:
    """The symmetric core: keep ``{u, v}`` iff both directions exist.

    This is the sublayer the paper cites — unidirectional links are
    filtered out before any neighborhood information is exchanged, so
    "hello" acknowledgements and replacement paths stay two-way.
    """
    graph = Topology(nodes=links.nodes())
    for u, v in links.links():
        if u < v and links.has_link(v, u):
            graph.add_edge(u, v)
    return graph


def links_from_ranges(
    positions: Dict[int, Point], ranges: Dict[int, float]
) -> DirectedLinks:
    """Directed links induced by per-node transmission ranges.

    Heterogeneous ranges are the canonical source of unidirectional
    links: a strong sender reaches a weak one that cannot answer.
    """
    if set(positions) != set(ranges):
        raise ValueError("positions and ranges disagree on the node set")
    links = DirectedLinks(nodes=positions)
    for u, pu in positions.items():
        reach_sq = ranges[u] * ranges[u]
        if ranges[u] < 0:
            raise ValueError(f"range of node {u} is negative")
        for v, pv in positions.items():
            if u != v and pu.distance_squared_to(pv) <= reach_sq:
                links.add_link(u, v)
    return links
