"""The generic coverage condition and its special cases (Sections 3 and 6).

**Coverage condition** — node ``v`` may take non-forward status if every
pair of its neighbors is connected by a *replacement path* whose
intermediate nodes (if any) all have priority strictly higher than
``Pr(v)``.

**Strong coverage condition** — node ``v`` may take non-forward status if
some *coverage set* ``C(v)`` dominates ``N(v)`` and lies inside one
connected component of the subgraph induced by nodes with priority higher
than ``Pr(v)``.  Strong implies generic (a connected dominating coverage
set yields a replacement path for every pair), and is cheaper to check:
O(D^2) versus O(D^3) in the local density D.

**Span condition** — the coverage condition with two restrictions (the
paper's "enhanced Span"): no visited intermediates, and replacement paths of
at most three hops (at most two intermediates).

All three operate on a :class:`~repro.core.views.View` and honour the
"visited nodes are mutually connected" convention when
``view.visited_connected`` is set.

Backends
--------
Three interchangeable implementations compute every predicate:

* ``bitset`` (the default) — the node-indexed bitmask kernel: the
  higher-priority eligible set is a priority-threshold mask read off a
  per-view suffix table, components come from word-parallel flood-fills
  (:func:`repro.graph.nodeindex.flood_fill` replaces the union-find
  pass), each neighbor's component reach is a bitmap so a pair check is
  one ``&``, and domination is ``targets & ~cover == 0``.
* ``sets`` — the original frozenset/union-find implementation, kept as
  the executable reference.
* ``numpy`` — the batched word-table kernel
  (:mod:`repro.core.coverage_numpy`): one decreasing-priority sweep per
  view computes *every* node's uncovered pairs and strong verdict at
  once, and component/span queries run vectorised frontier reductions
  over the ``uint64`` word table.  Optional: requires numpy, with a
  clear error (and the other backends untouched) when it is absent.

Select with ``REPRO_COVERAGE_BACKEND=sets`` (or ``bitset`` / ``numpy``);
the test suite cross-checks that all backends produce identical results —
forward sets are byte-identical across them.
"""

from __future__ import annotations

import os
from typing import Dict, FrozenSet, List, Set, Tuple

from ..graph.nodeindex import flood_fill
from ..instrument import _STACK as _COUNTER_STACK
from . import status as st
from .unionfind import DisjointSet
from .views import View, view_cache

__all__ = [
    "coverage_condition",
    "strong_coverage_condition",
    "span_condition",
    "uncovered_pairs",
    "higher_priority_components",
    "coverage_backend",
]

_BACKENDS = ("bitset", "sets", "numpy")


def coverage_backend() -> str:
    """The active backend name, from ``REPRO_COVERAGE_BACKEND``.

    ``bitset`` (default), ``sets``, or ``numpy``.  Read per call so tests
    and A/B benchmarks can flip the environment variable between
    evaluations; memoised results are keyed by backend, so flipping
    mid-view is safe.
    """
    backend = os.environ.get("REPRO_COVERAGE_BACKEND", "bitset")
    if backend not in _BACKENDS:
        raise ValueError(
            f"REPRO_COVERAGE_BACKEND must be one of {_BACKENDS}, "
            f"got {backend!r}"
        )
    return backend


def _memo(view: View, key, compute):
    """Per-view memoisation for the coverage hot path.

    Views are immutable value objects, so any derived quantity — the
    higher-priority decomposition, component membership, neighbor reach —
    is stable for the view's lifetime and can be shared between
    :func:`uncovered_pairs`, :func:`coverage_condition`, and
    :func:`strong_coverage_condition` instead of being recomputed per
    call.  The cache rides on the view instance itself (see
    :func:`repro.core.views.view_cache`); keys carry the backend name
    wherever the computation differs per backend.

    Dirty-awareness comes from ``view_cache`` itself: it stamps the
    cache with the view graph's ``version_stamp()`` and resets it when
    the graph is mutated underneath the view (e.g. by
    ``Topology.apply_delta`` during a mobility sweep), so every memo
    here — components, reach bitmaps, span paths — is invalidated as a
    unit the moment its topology input changes, and survives verbatim
    while the retained view graph stays untouched.
    """
    cache = view_cache(view)
    if key not in cache:
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].coverage_memo_misses += 1
        cache[key] = compute()
    elif _COUNTER_STACK:
        _COUNTER_STACK[-1].coverage_memo_hits += 1
    return cache[key]


# ----------------------------------------------------------------------
# Bitset backend: per-view base tables
# ----------------------------------------------------------------------


class _MaskBase:
    """Per-view bitmask tables shared by every predicate.

    ``index``/``masks`` come straight from the view graph's epoch-cached
    adjacency table; ``keys`` holds each node's full priority key in
    bit-position order; ``higher[v]`` is the priority-threshold mask —
    all nodes whose key ranks strictly above ``v``'s — precomputed as a
    suffix scan over the priority order, so one O(n log n) sort serves
    every ``v`` evaluated under the same view.
    """

    __slots__ = ("index", "masks", "keys", "higher", "visited_mask")

    def __init__(self, view: View) -> None:
        index, masks = view.graph.adjacency_masks()
        self.index = index
        self.masks = masks
        # Inlined View.priority for the visible universe: every indexed
        # node is in the graph by construction, so the invisible-node
        # branch and the per-call function overhead drop out.
        status = view.status
        metrics = view.metrics
        padding = view.metric_padding
        unvisited = st.UNVISITED
        self.keys = [
            (status.get(node, unvisited), *metrics.get(node, padding),
             float(node))
            for node in index.nodes
        ]
        nodes = index.nodes
        keys = self.keys
        order = sorted(range(len(nodes)), key=keys.__getitem__)
        higher: Dict[int, int] = {}
        above = 0
        for position in reversed(order):
            higher[nodes[position]] = above
            above |= 1 << position
        self.higher = higher
        self.visited_mask = view.visited_mask

    def eligible_mask(self, view: View, v: int) -> int:
        """Nodes (other than ``v``) ranking strictly above ``Pr(v)``.

        For a visible ``v`` this is one suffix-table lookup; for an
        invisible ``v`` (possible through
        :func:`higher_priority_components`) the threshold mask is built
        by a linear key scan against ``v``'s invisible-rank key.
        """
        mask = self.higher.get(v)
        if mask is None:
            threshold = view.priority(v)
            mask = 0
            for position, key in enumerate(self.keys):
                if key > threshold:
                    mask |= 1 << position
        return mask


def _mask_base(view: View) -> _MaskBase:
    return _memo(view, ("mask-base",), lambda: _MaskBase(view))


def _component_masks(view: View, v: int) -> List[int]:
    """Higher-priority components of ``v`` as masks (memoised)."""
    return _memo(
        view,
        ("component-masks", v),
        lambda: _component_masks_compute(view, v),
    )


def _component_masks_compute(view: View, v: int) -> List[int]:
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].component_decompositions += 1
    base = _mask_base(view)
    eligible = base.eligible_mask(view, v)
    masks = base.masks
    components: List[int] = []
    remaining = eligible
    while remaining:
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].mask_floodfills += 1
        component = flood_fill(remaining & -remaining, eligible, masks)
        remaining &= ~component
        components.append(component)
    if view.visited_connected:
        visited = base.visited_mask & eligible
        if visited:
            # All visited nodes are connected through the source even when
            # the view cannot see how: fuse their components into one.
            merged = 0
            separate: List[int] = []
            for component in components:
                if component & visited:
                    merged |= component
                else:
                    separate.append(component)
            if merged:
                components = [merged] + separate
    return components


def _reach_bitmaps(view: View, v: int) -> Dict[int, int]:
    """Per-neighbor component-reach bitmaps (memoised).

    ``reach[u]`` has bit ``i`` set when neighbor ``u`` of ``v`` belongs
    to or touches component ``i`` of the higher-priority decomposition.
    A replacement path for the pair ``(u, w)`` exists exactly when its
    intermediates lie inside one component adjacent to both ends, so the
    pair is replaceable iff ``reach[u] & reach[w]`` is non-zero (or the
    direct edge exists).
    """
    return _memo(
        view, ("reach-bitmaps", v), lambda: _reach_bitmaps_compute(view, v)
    )


def _reach_bitmaps_compute(view: View, v: int) -> Dict[int, int]:
    base = _mask_base(view)
    index, masks = base.index, base.masks
    components = _component_masks(view, v)
    node_at = index.node_at
    reach: Dict[int, int] = {}
    remaining = masks[index.position(v)]
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        position = low.bit_length() - 1
        closed = low | masks[position]
        bitmap = 0
        for i, component in enumerate(components):
            if closed & component:
                bitmap |= 1 << i
        reach[node_at(position)] = bitmap
    return reach


# ----------------------------------------------------------------------
# Numpy backend: lazy import and per-view batched tables
# ----------------------------------------------------------------------


def _np_kernel():
    """The :mod:`repro.core.coverage_numpy` module, or a clear error.

    Imported lazily so the numpy dependency stays optional: the bitset
    and sets backends never trigger this import.
    """
    from . import coverage_numpy

    if coverage_numpy.np is None:
        raise RuntimeError(
            "REPRO_COVERAGE_BACKEND=numpy requires numpy, which is not "
            "installed in this environment; use 'bitset' or 'sets'"
        )
    return coverage_numpy


def _np_base(view: View):
    """The per-view word-table context (memoised)."""
    return _memo(
        view, ("np-base",), lambda: _np_kernel().np_base(view)
    )


def _np_sweep(view: View):
    """Every node's (uncovered pairs, strong verdict), in one sweep.

    The whole batch is one memo entry: the first predicate evaluated on a
    view pays the sweep, every later node reads its slot for free.
    """
    return _memo(
        view,
        ("np-sweep",),
        lambda: _np_kernel().sweep_compute(view, _np_base(view)),
    )


# ----------------------------------------------------------------------
# Sets backend: the original frozenset/union-find reference
# ----------------------------------------------------------------------


def _higher_priority_nodes(view: View, v: int) -> Set[int]:
    """Visible nodes other than ``v`` with priority above ``Pr(v)``."""
    threshold = view.priority(v)
    return {
        node
        for node in view.graph
        if node != v and view.priority(node) > threshold
    }


def _components_compute_sets(view: View, v: int) -> List[Set[int]]:
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].component_decompositions += 1
    eligible = _higher_priority_nodes(view, v)
    dsu = DisjointSet(eligible)
    for node in eligible:
        for neighbor in view.graph.neighbors(node):
            if neighbor in eligible:
                dsu.union(node, neighbor)
    if view.visited_connected:
        visited = [node for node in eligible if view.is_visited(node)]
        for node in visited[1:]:
            dsu.union(visited[0], node)
    return dsu.groups()


def _component_reach_sets(
    view: View, v: int
) -> Tuple[List[Set[int]], Dict[int, Set[int]]]:
    """Components and neighbor reach under the sets backend (memoised)."""
    return _memo(
        view,
        ("reach", v, "sets"),
        lambda: _component_reach_compute_sets(view, v),
    )


def _component_reach_compute_sets(
    view: View, v: int
) -> Tuple[List[Set[int]], Dict[int, Set[int]]]:
    components = higher_priority_components(view, v)
    membership: Dict[int, int] = {}
    for index, component in enumerate(components):
        for node in component:
            membership[node] = index
    reach: Dict[int, Set[int]] = {}
    for u in view.graph.neighbors(v):
        touched: Set[int] = set()
        if u in membership:
            touched.add(membership[u])
        for x in view.graph.neighbors(u):
            if x in membership:
                touched.add(membership[x])
        reach[u] = touched
    return components, reach


# ----------------------------------------------------------------------
# Public predicates (backend-dispatching)
# ----------------------------------------------------------------------


def higher_priority_components(view: View, v: int) -> List[Set[int]]:
    """Connected components of the higher-priority subgraph for ``v``.

    Components are taken in ``view.graph`` minus ``v`` restricted to nodes
    with priority above ``Pr(v)``; when ``view.visited_connected`` holds,
    all visited nodes are additionally fused into one component (they are
    all connected through the source even if the view cannot see how).

    The result is memoised per ``(view, v)`` and shared by every coverage
    predicate; treat the returned sets as read-only.  Component order is
    backend-dependent (their set of sets is not).
    """
    backend = coverage_backend()
    if backend == "sets":
        return _memo(
            view,
            ("components", v, "sets"),
            lambda: _components_compute_sets(view, v),
        )
    if backend == "numpy":
        return _memo(
            view,
            ("components", v, "numpy"),
            lambda: _np_kernel().components_compute(view, _np_base(view), v),
        )
    return _memo(
        view,
        ("components", v, "bitset"),
        lambda: [
            set(view.index.members(mask))
            for mask in _component_masks(view, v)
        ],
    )


def uncovered_pairs(view: View, v: int) -> List[Tuple[int, int]]:
    """Neighbor pairs of ``v`` lacking a replacement path.

    The coverage condition holds exactly when this list is empty.  Exposed
    for diagnostics, tests, and the example walkthroughs.  Memoised per
    ``(view, v)``; both backends produce the identical (sorted-pair) list.
    """
    if v not in view.graph:
        raise KeyError(f"node {v} not visible in the view")
    backend = coverage_backend()
    if backend == "sets":
        return _memo(
            view,
            ("uncovered", v, "sets"),
            lambda: _uncovered_pairs_compute_sets(view, v),
        )
    if backend == "numpy":
        # The sweep result is itself the memo; per-node reads are free.
        return _np_sweep(view)[v][0]
    return _memo(
        view,
        ("uncovered", v, "bitset"),
        lambda: _uncovered_pairs_compute_bitset(view, v),
    )


def _uncovered_pairs_compute_sets(view: View, v: int) -> List[Tuple[int, int]]:
    neighbors = sorted(view.graph.neighbors(v))
    _components, reach = _component_reach_sets(view, v)
    failing: List[Tuple[int, int]] = []
    for i, u in enumerate(neighbors):
        for w in neighbors[i + 1:]:
            if view.graph.has_edge(u, w):
                continue
            if reach[u] & reach[w]:
                continue
            if (
                view.visited_connected
                and view.is_visited(u)
                and view.is_visited(w)
            ):
                # Visited endpoints are mutually connected by convention.
                continue
            failing.append((u, w))
    return failing


def _uncovered_pairs_compute_bitset(
    view: View, v: int
) -> List[Tuple[int, int]]:
    base = _mask_base(view)
    index, masks = base.index, base.masks
    position = index.position
    reach = _reach_bitmaps(view, v)
    visited = base.visited_mask if view.visited_connected else 0
    neighbors = sorted(index.members(masks[position(v)]))
    # Hoist every per-node lookup out of the O(deg^2) pair loop.
    positions = [position(u) for u in neighbors]
    bits = [1 << p for p in positions]
    adjacency = [masks[p] for p in positions]
    reaches = [reach[u] for u in neighbors]
    count = len(neighbors)
    failing: List[Tuple[int, int]] = []
    for i in range(count):
        adjacency_u = adjacency[i]
        reach_u = reaches[i]
        u_visited = visited & bits[i]
        for j in range(i + 1, count):
            if adjacency_u & bits[j]:
                continue
            if reach_u & reaches[j]:
                continue
            if u_visited and visited & bits[j]:
                # Visited endpoints are mutually connected by convention.
                continue
            failing.append((neighbors[i], neighbors[j]))
    return failing


def coverage_condition(view: View, v: int) -> bool:
    """Whether ``v`` may take non-forward status under the generic condition.

    True when **every pair** of ``v``'s neighbors has a replacement path —
    a direct edge, or a path whose intermediates all rank above ``Pr(v)``.
    A node with zero or one neighbor satisfies the condition vacuously (it
    is never needed to connect anything); the source still forwards
    unconditionally, so coverage is unaffected.
    """
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].coverage_evaluations += 1
    return not uncovered_pairs(view, v)


def strong_coverage_condition(view: View, v: int) -> bool:
    """Whether some connected higher-priority component dominates ``N(v)``.

    The maximal candidate coverage set is an entire component of the
    higher-priority subgraph, so it suffices to test each component.
    """
    if v not in view.graph:
        raise KeyError(f"node {v} not visible in the view")
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].coverage_evaluations += 1
    backend = coverage_backend()
    if backend == "sets":
        neighbors = view.graph.neighbors(v)
        if not neighbors:
            return True
        for component in higher_priority_components(view, v):
            if _dominates(view, component, neighbors):
                return True
        return False
    if backend == "numpy":
        return _np_sweep(view)[v][1]
    return _memo(
        view,
        ("strong", v, "bitset"),
        lambda: _strong_coverage_compute_bitset(view, v),
    )


def _strong_coverage_compute_bitset(view: View, v: int) -> bool:
    base = _mask_base(view)
    index, masks = base.index, base.masks
    targets = masks[index.position(v)]
    if not targets:
        return True
    for component in _component_masks(view, v):
        # cover = component ∪ N(component); domination is a single test.
        cover = component
        remaining = component
        while remaining:
            low = remaining & -remaining
            cover |= masks[low.bit_length() - 1]
            remaining ^= low
        if targets & ~cover == 0:
            return True
    return False


def _dominates(view: View, component: Set[int], targets: FrozenSet[int]) -> bool:
    return all(
        u in component or (view.graph.neighbors(u) & component)
        for u in targets
    )


def span_condition(view: View, v: int, max_intermediates: int = 2) -> bool:
    """The enhanced-Span restriction of the coverage condition.

    Every pair of neighbors must be connected directly or via at most
    ``max_intermediates`` higher-priority, *un-visited* intermediate nodes
    (Span predates broadcast-state piggybacking).  With the default of two
    intermediates this is exactly the paper's "replacement path no more
    than three hops".

    The eligible intermediate set and every pair's path verdict are
    memoised per view, so re-evaluations (and the pair overlap between
    nodes sharing a view) stop re-running the bounded BFS.
    """
    if max_intermediates < 0:
        raise ValueError(
            f"max_intermediates must be non-negative, got {max_intermediates}"
        )
    if v not in view.graph:
        raise KeyError(f"node {v} not visible in the view")
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].coverage_evaluations += 1
    backend = coverage_backend()
    return _memo(
        view,
        ("span", v, max_intermediates, backend),
        lambda: _span_compute(view, v, max_intermediates, backend),
    )


def _span_compute(
    view: View, v: int, max_intermediates: int, backend: str
) -> bool:
    if backend == "sets":
        eligible = _memo(
            view,
            ("span-eligible", v, "sets"),
            lambda: frozenset(
                node
                for node in _higher_priority_nodes(view, v)
                if not view.is_visited(node)
            ),
        )
        neighbors = sorted(view.graph.neighbors(v))
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1:]:
                if not _memo(
                    view,
                    ("span-pair", v, u, w, max_intermediates, "sets"),
                    lambda u=u, w=w: _bounded_replacement_path_sets(
                        view, u, w, eligible, max_intermediates
                    ),
                ):
                    return False
        return True
    if backend == "numpy":
        kernel = _np_kernel()
        np_base = _np_base(view)
        eligible = _memo(
            view,
            ("span-eligible", v, "numpy"),
            lambda: kernel.span_eligible(view, np_base, v),
        )
        neighbors = sorted(view.graph.neighbors(v))
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1:]:
                if not _memo(
                    view,
                    ("span-pair", v, u, w, max_intermediates, "numpy"),
                    lambda u=u, w=w: kernel.bounded_replacement_path(
                        np_base, u, w, eligible, max_intermediates
                    ),
                ):
                    return False
        return True
    base = _mask_base(view)
    index, masks = base.index, base.masks
    eligible = _memo(
        view,
        ("span-eligible", v, "bitset"),
        lambda: base.eligible_mask(view, v) & ~base.visited_mask,
    )
    neighbors = sorted(index.members(masks[index.position(v)]))
    for i, u in enumerate(neighbors):
        for w in neighbors[i + 1:]:
            if not _memo(
                view,
                ("span-pair", v, u, w, max_intermediates, "bitset"),
                lambda u=u, w=w: _bounded_replacement_path_bitset(
                    index, masks, u, w, eligible, max_intermediates
                ),
            ):
                return False
    return True


def _bounded_replacement_path_sets(
    view: View, u: int, w: int, eligible: FrozenSet[int], max_intermediates: int
) -> bool:
    """BFS through ``eligible`` from ``u`` to ``w`` with bounded length."""
    if view.graph.has_edge(u, w):
        return True
    seen: Set[int] = set()
    frontier = set(view.graph.neighbors(u)) & eligible
    for _used in range(1, max_intermediates + 1):
        if not frontier:
            return False
        if any(view.graph.has_edge(x, w) for x in frontier):
            return True
        seen |= frontier
        frontier = {
            y
            for x in frontier
            for y in view.graph.neighbors(x)
            if y in eligible and y not in seen
        }
    return False


def _bounded_replacement_path_bitset(
    index, masks, u: int, w: int, eligible: int, max_intermediates: int
) -> bool:
    """Mask-frontier BFS through ``eligible`` with bounded path length."""
    adjacency_u = masks[index.position(u)]
    adjacency_w = masks[index.position(w)]
    if adjacency_u & index.bit(w):
        return True
    seen = 0
    frontier = adjacency_u & eligible
    for _used in range(1, max_intermediates + 1):
        if not frontier:
            return False
        if frontier & adjacency_w:
            return True
        seen |= frontier
        grow = 0
        while frontier:
            low = frontier & -frontier
            grow |= masks[low.bit_length() - 1]
            frontier ^= low
        frontier = grow & eligible & ~seen
    return False
