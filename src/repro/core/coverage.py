"""The generic coverage condition and its special cases (Sections 3 and 6).

**Coverage condition** — node ``v`` may take non-forward status if every
pair of its neighbors is connected by a *replacement path* whose
intermediate nodes (if any) all have priority strictly higher than
``Pr(v)``.

**Strong coverage condition** — node ``v`` may take non-forward status if
some *coverage set* ``C(v)`` dominates ``N(v)`` and lies inside one
connected component of the subgraph induced by nodes with priority higher
than ``Pr(v)``.  Strong implies generic (a connected dominating coverage
set yields a replacement path for every pair), and is cheaper to check:
O(D^2) versus O(D^3) in the local density D.

**Span condition** — the coverage condition with two restrictions (the
paper's "enhanced Span"): no visited intermediates, and replacement paths of
at most three hops (at most two intermediates).

All three operate on a :class:`~repro.core.views.View` and honour the
"visited nodes are mutually connected" convention when
``view.visited_connected`` is set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..instrument import _STACK as _COUNTER_STACK
from .unionfind import DisjointSet
from .views import View

__all__ = [
    "coverage_condition",
    "strong_coverage_condition",
    "span_condition",
    "uncovered_pairs",
    "higher_priority_components",
]


def _memo(view: View, key, compute):
    """Per-view memoisation for the coverage hot path.

    Views are immutable value objects, so any derived quantity — the
    higher-priority DSU, component membership, neighbor reach — is stable
    for the view's lifetime and can be shared between
    :func:`uncovered_pairs`, :func:`coverage_condition`, and
    :func:`strong_coverage_condition` instead of being recomputed per
    call.  The cache rides on the view instance itself (``with_status``
    and every view constructor return fresh instances, so a state change
    never sees a stale cache).
    """
    try:
        cache = view._coverage_memo  # type: ignore[attr-defined]
    except AttributeError:
        cache = {}
        # View is a frozen dataclass; attach the cache without tripping
        # its immutability guard.
        object.__setattr__(view, "_coverage_memo", cache)
    if key not in cache:
        if _COUNTER_STACK:
            _COUNTER_STACK[-1].coverage_memo_misses += 1
        cache[key] = compute()
    elif _COUNTER_STACK:
        _COUNTER_STACK[-1].coverage_memo_hits += 1
    return cache[key]


def _higher_priority_nodes(view: View, v: int) -> Set[int]:
    """Visible nodes other than ``v`` with priority above ``Pr(v)``."""
    threshold = view.priority(v)
    return {
        node
        for node in view.graph
        if node != v and view.priority(node) > threshold
    }


def higher_priority_components(view: View, v: int) -> List[Set[int]]:
    """Connected components of the higher-priority subgraph for ``v``.

    Components are taken in ``view.graph`` minus ``v`` restricted to nodes
    with priority above ``Pr(v)``; when ``view.visited_connected`` holds,
    all visited nodes are additionally fused into one component (they are
    all connected through the source even if the view cannot see how).

    The result is memoised per ``(view, v)`` and shared by every coverage
    predicate; treat the returned sets as read-only.
    """
    return _memo(
        view, ("components", v), lambda: _components_compute(view, v)
    )


def _components_compute(view: View, v: int) -> List[Set[int]]:
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].component_decompositions += 1
    eligible = _higher_priority_nodes(view, v)
    dsu = DisjointSet(eligible)
    for node in eligible:
        for neighbor in view.graph.neighbors(node):
            if neighbor in eligible:
                dsu.union(node, neighbor)
    if view.visited_connected:
        visited = [node for node in eligible if view.is_visited(node)]
        for node in visited[1:]:
            dsu.union(visited[0], node)
    return dsu.groups()


def _component_reach(view: View, v: int) -> Tuple[List[Set[int]], Dict[int, Set[int]]]:
    """Components of the higher-priority subgraph and neighbor adjacency.

    Returns ``(components, reach)`` where ``reach[u]`` is the set of
    component indices that neighbor ``u`` of ``v`` belongs to or touches.
    A replacement path for the pair ``(u, w)`` exists exactly when its
    intermediates lie inside one such component adjacent to both ends, so
    the pair is replaceable iff ``reach[u] ∩ reach[w]`` is non-empty (or
    the direct edge exists).  Memoised per ``(view, v)``.
    """
    return _memo(
        view, ("reach", v), lambda: _component_reach_compute(view, v)
    )


def _component_reach_compute(
    view: View, v: int
) -> Tuple[List[Set[int]], Dict[int, Set[int]]]:
    components = higher_priority_components(view, v)
    membership: Dict[int, int] = {}
    for index, component in enumerate(components):
        for node in component:
            membership[node] = index
    reach: Dict[int, Set[int]] = {}
    for u in view.graph.neighbors(v):
        touched: Set[int] = set()
        if u in membership:
            touched.add(membership[u])
        for x in view.graph.neighbors(u):
            if x in membership:
                touched.add(membership[x])
        reach[u] = touched
    return components, reach


def uncovered_pairs(view: View, v: int) -> List[Tuple[int, int]]:
    """Neighbor pairs of ``v`` lacking a replacement path.

    The coverage condition holds exactly when this list is empty.  Exposed
    for diagnostics, tests, and the example walkthroughs.  Memoised per
    ``(view, v)``.
    """
    if v not in view.graph:
        raise KeyError(f"node {v} not visible in the view")
    return _memo(
        view, ("uncovered", v), lambda: _uncovered_pairs_compute(view, v)
    )


def _uncovered_pairs_compute(view: View, v: int) -> List[Tuple[int, int]]:
    neighbors = sorted(view.graph.neighbors(v))
    _components, reach = _component_reach(view, v)
    failing: List[Tuple[int, int]] = []
    for i, u in enumerate(neighbors):
        for w in neighbors[i + 1:]:
            if view.graph.has_edge(u, w):
                continue
            if reach[u] & reach[w]:
                continue
            if (
                view.visited_connected
                and view.is_visited(u)
                and view.is_visited(w)
            ):
                # Visited endpoints are mutually connected by convention.
                continue
            failing.append((u, w))
    return failing


def coverage_condition(view: View, v: int) -> bool:
    """Whether ``v`` may take non-forward status under the generic condition.

    True when **every pair** of ``v``'s neighbors has a replacement path —
    a direct edge, or a path whose intermediates all rank above ``Pr(v)``.
    A node with zero or one neighbor satisfies the condition vacuously (it
    is never needed to connect anything); the source still forwards
    unconditionally, so coverage is unaffected.
    """
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].coverage_evaluations += 1
    return not uncovered_pairs(view, v)


def strong_coverage_condition(view: View, v: int) -> bool:
    """Whether some connected higher-priority component dominates ``N(v)``.

    The maximal candidate coverage set is an entire component of the
    higher-priority subgraph, so it suffices to test each component.
    """
    if v not in view.graph:
        raise KeyError(f"node {v} not visible in the view")
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].coverage_evaluations += 1
    neighbors = view.graph.neighbors(v)
    if not neighbors:
        return True
    for component in higher_priority_components(view, v):
        if _dominates(view, component, neighbors):
            return True
    return False


def _dominates(view: View, component: Set[int], targets: FrozenSet[int]) -> bool:
    return all(
        u in component or (view.graph.neighbors(u) & component)
        for u in targets
    )


def span_condition(view: View, v: int, max_intermediates: int = 2) -> bool:
    """The enhanced-Span restriction of the coverage condition.

    Every pair of neighbors must be connected directly or via at most
    ``max_intermediates`` higher-priority, *un-visited* intermediate nodes
    (Span predates broadcast-state piggybacking).  With the default of two
    intermediates this is exactly the paper's "replacement path no more
    than three hops".
    """
    if max_intermediates < 0:
        raise ValueError(
            f"max_intermediates must be non-negative, got {max_intermediates}"
        )
    if v not in view.graph:
        raise KeyError(f"node {v} not visible in the view")
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].coverage_evaluations += 1
    neighbors = sorted(view.graph.neighbors(v))
    eligible = {
        node
        for node in _higher_priority_nodes(view, v)
        if not view.is_visited(node)
    }
    for i, u in enumerate(neighbors):
        for w in neighbors[i + 1:]:
            if not _bounded_replacement_path(
                view, u, w, eligible, max_intermediates
            ):
                return False
    return True


def _bounded_replacement_path(
    view: View, u: int, w: int, eligible: Set[int], max_intermediates: int
) -> bool:
    """BFS through ``eligible`` from ``u`` to ``w`` with bounded length."""
    if view.graph.has_edge(u, w):
        return True
    seen: Set[int] = set()
    frontier = set(view.graph.neighbors(u)) & eligible
    for _used in range(1, max_intermediates + 1):
        if not frontier:
            return False
        if any(view.graph.has_edge(x, w) for x in frontier):
            return True
        seen |= frontier
        frontier = {
            y
            for x in frontier
            for y in view.graph.neighbors(x)
            if y in eligible and y not in seen
        }
    return False
