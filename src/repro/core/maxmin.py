"""Max-min nodes and maximal replacement paths (Definition 1, Lemma 1).

Given a node ``v`` and two of its neighbors ``u`` and ``w``, a *replacement
path* connects ``u`` and ``w`` via intermediates of priority above
``Pr(v)``.  The *max-min node* for ``(u, w, v)`` is, over all such paths,
the intermediate with the highest minimum priority; recursing on it (the
paper's ``MAX_MIN`` procedure) yields a *maximal* replacement path — one
whose intermediates are themselves unprunable under the current view.

The max-min node is computed with a bottleneck (widest-path) sweep: insert
candidate intermediates in descending priority order into a union-find and
stop as soon as ``u`` and ``w`` connect; the last inserted node is the
bottleneck, i.e. the max-min node.  Visited intermediates honour the
"mutually connected" convention of local views.
"""

from __future__ import annotations

from typing import List, Optional, Set

from .unionfind import DisjointSet
from .views import View

__all__ = ["max_min_node", "max_min_path"]


def _candidates(view: View, v: int, u: int, w: int) -> List[int]:
    """Eligible intermediates, sorted by descending priority."""
    threshold = view.priority(v)
    nodes = [
        node
        for node in view.graph
        if node not in (v, u, w) and view.priority(node) > threshold
    ]
    nodes.sort(key=view.priority, reverse=True)
    return nodes


def max_min_node(view: View, u: int, w: int, v: int) -> Optional[int]:
    """The max-min node for ``(u, w, v)``, or ``None``.

    Returns ``None`` both when ``u`` and ``w`` are directly connected (no
    intermediate is needed) and when no replacement path exists at all; use
    :func:`max_min_path` to distinguish the two.
    """
    if view.graph.has_edge(u, w):
        return None
    dsu = DisjointSet([u, w])
    inserted: Set[int] = set()
    # Visited nodes — endpoints included — are mutually connected by the
    # local-view convention; anchor the virtual clique on the first seen.
    first_visited: Optional[int] = None
    if view.visited_connected:
        for endpoint in (u, w):
            if view.is_visited(endpoint):
                if first_visited is None:
                    first_visited = endpoint
                else:
                    dsu.union(first_visited, endpoint)
        if dsu.connected(u, w):
            # Two visited endpoints: connected by convention, no
            # intermediate needed.
            return None
    for node in _candidates(view, v, u, w):
        dsu.add(node)
        inserted.add(node)
        if view.visited_connected and view.is_visited(node):
            if first_visited is None:
                first_visited = node
            else:
                dsu.union(first_visited, node)
        for neighbor in view.graph.neighbors(node):
            if neighbor in inserted or neighbor in (u, w):
                dsu.union(node, neighbor)
        if dsu.connected(u, w):
            return node
    return None


def max_min_path(view: View, u: int, w: int, v: int) -> Optional[List[int]]:
    """The maximal replacement path for ``v`` connecting ``u`` and ``w``.

    Implements the paper's recursive ``MAX_MIN`` procedure:

    1. if ``u`` and ``w`` are directly connected, the intermediate list is
       empty;
    2. otherwise find the max-min node ``x`` and recurse on ``(u, x)`` and
       ``(x, w)``.

    Returns the full path **including endpoints** ``[u, ..., w]``, or
    ``None`` when no replacement path exists (the coverage condition fails
    for this pair).  Lemma 1 guarantees termination and simplicity, which
    the property-based tests verify.
    """
    intermediates = _max_min_intermediates(view, u, w, v)
    if intermediates is None:
        return None
    return [u, *intermediates, w]


def _max_min_intermediates(
    view: View, u: int, w: int, v: int
) -> Optional[List[int]]:
    if view.graph.has_edge(u, w):
        return []
    if (
        view.visited_connected
        and view.is_visited(u)
        and view.is_visited(w)
    ):
        # Two visited endpoints are connected by convention.
        return []
    x = max_min_node(view, u, w, v)
    if x is None:
        return None
    left = _max_min_intermediates(view, u, x, v)
    right = _max_min_intermediates(view, x, w, v)
    if left is None or right is None:  # pragma: no cover - Lemma 1 forbids it
        raise RuntimeError(
            f"max-min recursion lost connectivity between {u} and {w}"
        )
    return [*left, x, *right]
