"""Node status values used in priority vectors.

The paper orders nodes lexicographically by ``Pr(v) = (S(v), ..., id(v))``
where the leading component ``S`` encodes broadcast state:

* ``0``   — invisible under the local view (lowest priority),
* ``1``   — un-visited and un-designated,
* ``1.5`` — un-visited but designated as a forward node by some neighbor
  (the relaxed neighbor-designating semantics of Section 4.2),
* ``2``   — visited, i.e. the node has forwarded the packet (or is treated
  as having done so, e.g. a designated node in strict neighbor-designating
  protocols).

The values are floats so that 1.5 slots between un-visited and visited, just
as the paper defines it.
"""

from __future__ import annotations

__all__ = [
    "INVISIBLE",
    "UNVISITED",
    "DESIGNATED",
    "VISITED",
    "status_name",
]

INVISIBLE = 0.0
UNVISITED = 1.0
DESIGNATED = 1.5
VISITED = 2.0

_NAMES = {
    INVISIBLE: "invisible",
    UNVISITED: "unvisited",
    DESIGNATED: "designated",
    VISITED: "visited",
}


def status_name(value: float) -> str:
    """Human-readable name of a status value."""
    try:
        return _NAMES[value]
    except KeyError as exc:
        raise ValueError(f"unknown status value {value!r}") from exc
