"""Priority schemes (paper Section 4.4).

A node's priority is the lexicographic tuple ``(S(v), metric..., id(v))``:
broadcast status first, then the scheme's tie-ordered metrics, then the
distinct node id as the final tie-breaker.  The paper evaluates three
schemes, ordered by the cost of collecting them:

* **0-hop**: node id only — free, least effective;
* **1-hop**: node degree (ties broken by id) — one extra exchange round;
* **2-hop**: neighborhood connectivity ratio ``ncr(v)`` (ties broken by
  degree, then id) — two extra rounds, most effective.

A scheme computes, for each node, the *metric* portion of the tuple from
the deployment graph; views prepend the status component.  MPR's
"designating time" priority is handled inside the MPR protocol because it
is defined per broadcast, not per topology.
"""

from __future__ import annotations

import random

from abc import ABC, abstractmethod
from typing import Dict, Tuple

from ..graph.topology import Topology

__all__ = [
    "PriorityScheme",
    "IdPriority",
    "DegreePriority",
    "NcrPriority",
    "RandomEpochPriority",
    "PriorityKey",
    "make_key",
    "scheme_by_name",
]

#: A fully assembled priority key: ``(status, *metrics, node_id)``.
PriorityKey = Tuple[float, ...]


class PriorityScheme(ABC):
    """Computes the metric portion of every node's priority tuple."""

    #: Short name used by the experiment configs and the CLI.
    name: str = "abstract"

    #: Number of metric components the scheme emits (used to pad the keys
    #: of invisible nodes so tuples stay comparable).
    arity: int = 0

    #: Rounds of "hello" exchange needed *beyond* plain k-hop topology
    #: collection (paper: ID +0, Degree +1, NCR +2).
    extra_rounds: int = 0

    #: Hop radius within which an edge change can alter a node's metric,
    #: or ``None`` when unknown.  ``metric_of(v)`` may change after an
    #: edge flip only if a flipped endpoint lies within this many hops
    #: of ``v`` — 0 for id/degree (only an endpoint's own degree moves),
    #: 1 for ncr (the flipped edge must lie inside ``N[v]``).  The
    #: incremental sweep runner uses ``k + metric_locality`` as its
    #: decision-cache invalidation radius; schemes that leave this
    #: ``None`` (custom metrics with unknown reach) force a full
    #: re-decision per step, which is always safe.
    metric_locality: "int | None" = None

    #: Hop radius of the *induced subgraph* needed to compute a node's
    #: metric **value** exactly, or ``None`` when the metric is not
    #: locally computable at all.  ``metric_of(v)`` must be a function
    #: of the edges with both endpoints inside ``ball(v,
    #: metric_value_radius)`` — 0 for id (no metric components), 1 for
    #: degree (the edges incident to ``v``) and ncr (the edges inside
    #: ``N[v]``).  Distinct from :attr:`metric_locality`: degree has
    #: locality 0 (a flip only moves its own endpoints' degrees) yet
    #: value radius 1 (computing ``deg(v)`` needs ``v``'s incident
    #: edges, which leave the 0-ball).  The sharded partial-replica
    #: driver re-decides a node on a shard only when the node's
    #: ``k + max(metric_locality, metric_value_radius)`` ball lies
    #: inside the shard's replica universe; schemes that leave this
    #: ``None`` are rejected there (a partial replica cannot reproduce
    #: their values).
    metric_value_radius: "int | None" = None

    @abstractmethod
    def metrics(self, graph: Topology) -> Dict[int, Tuple[float, ...]]:
        """Metric tuple for every node of ``graph``."""

    def metric_of(self, graph: Topology, node: int) -> Tuple[float, ...]:
        """Metric tuple for a single node."""
        return self.metrics(graph)[node]

    def padding(self) -> Tuple[float, ...]:
        """The all-zero metric used for invisible nodes."""
        return (0.0,) * self.arity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class IdPriority(PriorityScheme):
    """0-hop priority: the node id alone orders nodes."""

    name = "id"
    arity = 0
    extra_rounds = 0
    metric_locality = 0
    metric_value_radius = 0  # no metric components at all

    def metrics(self, graph: Topology) -> Dict[int, Tuple[float, ...]]:
        return {node: () for node in graph.nodes()}


class DegreePriority(PriorityScheme):
    """1-hop priority: higher degree wins, ties broken by id."""

    name = "degree"
    arity = 1
    extra_rounds = 1
    metric_locality = 0
    metric_value_radius = 1  # deg(v) reads v's incident edges

    def metrics(self, graph: Topology) -> Dict[int, Tuple[float, ...]]:
        return {node: (float(graph.degree(node)),) for node in graph.nodes()}


class NcrPriority(PriorityScheme):
    """2-hop priority: higher neighborhood connectivity ratio wins.

    Ties are broken by node degree and then id, as the paper prescribes.
    """

    name = "ncr"
    arity = 2
    extra_rounds = 2
    metric_locality = 1
    metric_value_radius = 1  # ncr(v) reads the edges inside N[v]

    def metrics(self, graph: Topology) -> Dict[int, Tuple[float, ...]]:
        return {
            node: (
                graph.neighborhood_connectivity_ratio(node),
                float(graph.degree(node)),
            )
            for node in graph.nodes()
        }


class RandomEpochPriority(PriorityScheme):
    """Random priorities, redrawn per scheme instance (one *epoch*).

    Every instantiation samples a fresh uniform metric per node, so a
    workload that rebuilds the scheme per broadcast rotates the forward
    duty across nodes — the energy-fairness mechanism behind Span's
    residual-energy backoff, in its purest form.  Within one epoch the
    order is fixed and total, so every coverage-condition guarantee
    holds unchanged.
    """

    name = "random-epoch"
    arity = 1
    extra_rounds = 1  # one exchange to advertise the drawn value
    metric_locality = 0  # drawn per epoch, independent of topology
    #: The draw iterates sorted(graph.nodes()) in rank order, so a
    #: node's value depends on the *whole* node set — not computable on
    #: a partial replica.
    metric_value_radius = None

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def metrics(self, graph: Topology) -> Dict[int, Tuple[float, ...]]:
        rng = random.Random(self._seed)
        return {
            node: (rng.random(),) for node in sorted(graph.nodes())
        }


def make_key(
    status: float, metrics: Tuple[float, ...], node_id: int
) -> PriorityKey:
    """Assemble the lexicographic priority key ``(S, metric..., id)``."""
    return (status, *metrics, float(node_id))


_SCHEMES = {
    IdPriority.name: IdPriority,
    DegreePriority.name: DegreePriority,
    NcrPriority.name: NcrPriority,
}


def scheme_by_name(name: str) -> PriorityScheme:
    """Instantiate a scheme from its short name (``id``/``degree``/``ncr``)."""
    try:
        return _SCHEMES[name]()
    except KeyError as exc:
        raise ValueError(
            f"unknown priority scheme {name!r}; choose from {sorted(_SCHEMES)}"
        ) from exc
