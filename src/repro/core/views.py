"""Views: snapshots of network topology plus broadcast state (Section 2).

A *view* is ``View(t) = (G(t), Pr(V, t))`` — a topology snapshot together
with a priority vector.  A *local* view at node ``v`` is a subgraph of the
global view whose priorities are component-wise no larger (an invisible node
has the lowest priority ``(0, ..., id)``).

The paper's conventions encoded here:

* every node's priority is ``(S, metric..., id)`` (see ``repro.core.priority``),
* an invisible node has status 0 and zero-padded metrics,
* **all visited nodes are assumed connected under any local view**, because
  each of them is connected to the source; the coverage machinery consults
  :attr:`View.visited_connected` for this,
* a k-hop local view contains the view graph ``G_k(v)`` of Definition 2.

Views are immutable value objects; protocol state lives in the simulation
engine, which *builds* fresh views as knowledge accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from ..graph.nodeindex import NodeIndex
from ..graph.topology import Topology
from . import status as st
from .priority import PriorityKey, PriorityScheme, make_key

__all__ = ["View", "global_view", "local_view", "super_view", "view_cache"]


def view_cache(view: "View") -> Dict:
    """The per-view derived-value cache (lazily attached, dirty-aware).

    Views are immutable value objects, so anything derived from one — a
    status bitmask, the coverage machinery's component decomposition —
    is stable for the view's lifetime and can be memoised on the
    instance itself.  ``with_status`` and every view constructor return
    fresh instances, so a state change never sees a stale cache.  The
    dict is attached with ``object.__setattr__`` to bypass the frozen
    dataclass guard.

    The cache records the graph's :meth:`~repro.graph.topology.Topology.
    version_stamp` at attach time and is reset wholesale when the stamp
    moves (a view over a graph later mutated through ``apply_delta`` or
    the plain mutators).  Reset is deliberately *wholesale* rather than
    per dirty node: the memoised coverage predicates (component
    decompositions, reach bitmaps, span paths) are global within the
    view graph — a far-away edge change can flip any node's verdict —
    so per-node retention inside one view would be unsound.  In the
    steady state (retained view graphs across mobility deltas) the
    stamp never moves and the memo survives verbatim.
    """
    stamp = view.graph.version_stamp()
    try:
        cache = view._derived_cache  # type: ignore[attr-defined]
    except AttributeError:
        cache = {}
        object.__setattr__(view, "_derived_cache", cache)
        object.__setattr__(view, "_derived_cache_stamp", stamp)
        return cache
    if getattr(view, "_derived_cache_stamp", None) != stamp:
        cache = {}
        object.__setattr__(view, "_derived_cache", cache)
        object.__setattr__(view, "_derived_cache_stamp", stamp)
    return cache


@dataclass(frozen=True)
class View:
    """An immutable snapshot ``(G', Pr')`` of topology and broadcast state.

    Attributes
    ----------
    graph:
        The visible (sub)graph.
    status:
        ``S`` value per visible node; nodes absent from the mapping are
        un-visited (status 1).  Invisible nodes — those absent from
        ``graph`` — always rank lowest regardless of this mapping.
    metrics:
        Priority-scheme metric tuple per visible node.
    metric_padding:
        Zero metrics used for invisible nodes, so keys stay comparable.
    visited_connected:
        Whether visited nodes are treated as mutually connected (the local
        view convention; safe globally too because forwarders form a
        connected set through the source).
    """

    graph: Topology
    status: Mapping[int, float] = field(default_factory=dict)
    metrics: Mapping[int, Tuple[float, ...]] = field(default_factory=dict)
    metric_padding: Tuple[float, ...] = ()
    visited_connected: bool = True

    def status_of(self, node: int) -> float:
        """``S(node)``: 0 for invisible nodes, 1 when unrecorded."""
        if node not in self.graph:
            return st.INVISIBLE
        return self.status.get(node, st.UNVISITED)

    def priority(self, node: int) -> PriorityKey:
        """The full lexicographic key ``(S, metric..., id)`` of ``node``."""
        if node not in self.graph:
            return make_key(st.INVISIBLE, self.metric_padding, node)
        metric = self.metrics.get(node, self.metric_padding)
        return make_key(self.status_of(node), metric, node)

    @property
    def index(self) -> NodeIndex:
        """The visible graph's node → bit-position mapping."""
        return self.graph.node_index()

    def _status_mask(self, threshold: float) -> int:
        """Mask of visible nodes with status at or above ``threshold``.

        Only the explicit status mapping is scanned: unrecorded nodes sit
        at un-visited (1.0), below every threshold used here.
        """
        index = self.graph.node_index()
        mask = 0
        for node, value in self.status.items():
            if value >= threshold and node in index:
                mask |= index.bit(node)
        return mask

    @property
    def visited_mask(self) -> int:
        """Visited nodes as a bitmask under :attr:`index` (memoised)."""
        cache = view_cache(self)
        mask = cache.get("visited_mask")
        if mask is None:
            mask = self._status_mask(st.VISITED)
            cache["visited_mask"] = mask
        return mask

    @property
    def designated_mask(self) -> int:
        """Designated-or-higher nodes as a bitmask (memoised)."""
        cache = view_cache(self)
        mask = cache.get("designated_mask")
        if mask is None:
            mask = self._status_mask(st.DESIGNATED)
            cache["designated_mask"] = mask
        return mask

    def visited(self) -> FrozenSet[int]:
        """All visible nodes with visited status."""
        return frozenset(self.index.members(self.visited_mask))

    def designated(self) -> FrozenSet[int]:
        """All visible nodes with designated-or-higher status."""
        return frozenset(self.index.members(self.designated_mask))

    def is_visited(self, node: int) -> bool:
        """Whether ``node`` is visible and visited."""
        return self.status_of(node) >= st.VISITED

    def with_status(self, updates: Mapping[int, float]) -> "View":
        """A new view with ``updates`` merged into the status map.

        Updates only ever *raise* a node's status (priorities increase
        monotonically along time); attempts to lower one raise
        ``ValueError``.
        """
        merged: Dict[int, float] = dict(self.status)
        for node, value in updates.items():
            current = merged.get(node, st.UNVISITED)
            if value < current:
                raise ValueError(
                    f"status of node {node} cannot decrease "
                    f"({current} -> {value})"
                )
            merged[node] = value
        return View(
            graph=self.graph,
            status=merged,
            metrics=self.metrics,
            metric_padding=self.metric_padding,
            visited_connected=self.visited_connected,
        )


def _restrict_metrics(
    all_metrics: Mapping[int, Tuple[float, ...]],
    visible: Iterable[int],
    padding: Tuple[float, ...],
) -> Dict[int, Tuple[float, ...]]:
    """Restrict a metrics table to the visible nodes.

    A visible node absent from the table — possible when mobility grows
    the topology after the table was snapshotted — falls back to the
    scheme's padding, i.e. the lowest advertisable metric.
    """
    return {node: all_metrics.get(node, padding) for node in visible}


def _restrict_status(
    visited: Iterable[int], designated: Iterable[int], visible
) -> Dict[int, float]:
    """Status map over ``visible`` (anything supporting ``in`` — a set or
    a :class:`Topology`, so callers need not re-materialise node sets)."""
    status: Dict[int, float] = {}
    for node in designated:
        if node in visible:
            status[node] = st.DESIGNATED
    for node in visited:
        if node in visible:
            status[node] = st.VISITED
    return status


def global_view(
    graph: Topology,
    scheme: PriorityScheme,
    visited: Iterable[int] = (),
    designated: Iterable[int] = (),
    metrics: Optional[Mapping[int, Tuple[float, ...]]] = None,
) -> View:
    """The global view of ``graph`` under a priority scheme.

    ``metrics`` may be passed pre-computed (one call to
    ``scheme.metrics(graph)`` per deployment) to avoid recomputation in
    sweeps.
    """
    table = metrics if metrics is not None else scheme.metrics(graph)
    return View(
        graph=graph,
        status=_restrict_status(visited, designated, graph),
        metrics=dict(table),
        metric_padding=scheme.padding(),
    )


def local_view(
    graph: Topology,
    center: int,
    k: int,
    scheme: PriorityScheme,
    visited: Iterable[int] = (),
    designated: Iterable[int] = (),
    metrics: Optional[Mapping[int, Tuple[float, ...]]] = None,
) -> View:
    """The k-hop local view at ``center`` (Definition 2).

    The topology is ``G_k(center)``; broadcast state is restricted to the
    visible nodes (a node cannot use what it cannot see); metric values are
    the ones nodes advertise about themselves, i.e. computed on the
    deployment graph, not on the truncated view graph.
    """
    view_graph = graph.k_hop_view_graph(center, k)
    table = metrics if metrics is not None else scheme.metrics(graph)
    return View(
        graph=view_graph,
        status=_restrict_status(visited, designated, view_graph),
        metrics=_restrict_metrics(table, view_graph, scheme.padding()),
        metric_padding=scheme.padding(),
    )


def super_view(views: Iterable[View]) -> View:
    """The union view of Theorem 2's proof: union graphs, max priorities.

    ``View_super = (∪ G_i, max_i Pr_i)`` — used by tests to validate that a
    node non-forward under its own local view stays non-forward under the
    collective view.

    The per-node priority is the maximum full key ``(S, metric..., id)``
    over all views the node is visible in (Theorem 2's component-wise max
    of the priority vector); the lexicographic maximum carries the highest
    status, because ``S`` leads the key.
    """
    views = list(views)
    if not views:
        raise ValueError("super_view of no views")
    union = Topology()
    status: Dict[int, float] = {}
    padding = views[0].metric_padding
    metrics: Dict[int, Tuple[float, ...]] = {}
    best: Dict[int, PriorityKey] = {}
    for view in views:
        if view.metric_padding != padding:
            raise ValueError("views use different priority schemes")
        for node in view.graph.nodes():
            union.add_node(node)
            key = view.priority(node)
            if node not in best or key > best[node]:
                best[node] = key
        for u, v in view.graph.edges():
            union.add_edge(u, v)
    for node, key in best.items():
        status[node] = key[0]
        metrics[node] = tuple(key[1:-1])
    return View(
        graph=union,
        status=status,
        metrics=metrics,
        metric_padding=padding,
        visited_connected=all(v.visited_connected for v in views),
    )
