"""Batched numpy word-table backend for the coverage predicates.

The bitset backend answers each ``(view, v)`` query on its own: a fresh
higher-priority flood fill per node over Python big-ints.  At scale that
per-node cost dominates a broadcast — every node of an ``n``-node global
view pays O(n·m/64) for its own component decomposition.

This backend flips the loop structure.  One **decreasing-priority sweep**
(:func:`sweep_compute`) visits nodes from highest to lowest priority,
growing a union-find over the inserted prefix: at the moment ``v`` is
reached, the inserted nodes are *exactly* the nodes ranking strictly above
``Pr(v)`` (priority keys are a total order — the id tiebreak makes them
unique), so the union-find state *is* ``v``'s higher-priority component
decomposition.  Every node's uncovered pairs and strong-coverage verdict
come out of this single O((n + m)·α) pass instead of n independent
decompositions:

* a neighbor ``u`` *reaches* the components whose roots appear in its
  inserted closed neighborhood — so the pair ``(u, w)`` has a replacement
  path iff their root sets intersect (or the direct edge / the
  visited-pair convention applies);
* a component dominates ``N(v)`` iff its root is in every neighbor's root
  set — so the strong condition is "the intersection of the neighbors'
  root sets is non-empty" (vacuously true with no neighbors).

When ``view.visited_connected`` holds, visited nodes are fused through a
hub as they are inserted, mirroring the component fusion of the other
backends.

The word table (:meth:`~repro.graph.topology.Topology.word_table` —
the NodeIndex bit layout packed into a dense ``(n, ceil(n/64))`` uint64
array) drives the remaining per-node queries: component materialisation
for :func:`components_compute` and the bounded span BFS run whole-frontier
adjacency unions as vectorised row reductions instead of per-node bigint
loops.

Both entry points produce results identical to the ``bitset`` and ``sets``
backends — same verdicts, same pair lists in the same order, same
component sets — so forward sets stay byte-identical across all three.

This module is imported lazily by :mod:`repro.core.coverage` and only
when ``REPRO_COVERAGE_BACKEND=numpy``; it degrades to ``np = None`` when
numpy is absent (the dispatcher raises a clear error before calling in).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..graph.wordtable import (
    bool_to_positions,
    or_rows,
    words_to_bool,
)

try:  # pragma: no cover - exercised via both CI variants
    import numpy as np
except ImportError:  # pragma: no cover - the no-numpy CI job
    np = None  # type: ignore[assignment]

from ..instrument import _STACK as _COUNTER_STACK
from . import status as st
from .views import View

__all__ = ["np_base", "sweep_compute", "components_compute",
           "span_eligible", "bounded_replacement_path"]


class _NumpyBase:
    """Per-view word-table context shared by every numpy predicate.

    ``index``/``words`` come from the view graph's epoch-cached word
    table; ``keys`` holds each node's full priority key in bit-position
    order (the same keys the bitset backend ranks by); ``rank`` maps bit
    position → ascending priority rank, so "strictly higher priority
    than ``v``" is the vectorised comparison ``rank > rank[pos(v)]``.
    """

    __slots__ = (
        "index", "words", "n", "keys", "order_desc", "rank",
        "adj_positions", "visited",
    )

    def __init__(self, view: View) -> None:
        index, words = view.graph.word_table()
        self.index = index
        self.words = words
        n = len(index)
        self.n = n
        status = view.status
        metrics = view.metrics
        padding = view.metric_padding
        unvisited = st.UNVISITED
        self.keys = [
            (status.get(node, unvisited), *metrics.get(node, padding),
             float(node))
            for node in index.nodes
        ]
        order = sorted(range(n), key=self.keys.__getitem__)
        self.order_desc = order[::-1]
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n, dtype=np.int64)
        self.rank = rank
        position = index.position
        graph = view.graph
        self.adj_positions = [
            [position(u) for u in sorted(graph.neighbors(node))]
            for node in index.nodes
        ]
        self.visited = np.fromiter(
            (view.is_visited(node) for node in index.nodes),
            dtype=bool,
            count=n,
        )

    def eligible_bool(self, view: View, v: int):
        """Membership array of nodes ranking strictly above ``Pr(v)``.

        One vectorised rank comparison for a visible ``v``; a linear key
        scan against the invisible-rank key otherwise (mirroring the
        bitset backend's fallback).
        """
        if v in self.index:
            return self.rank > self.rank[self.index.position(v)]
        threshold = view.priority(v)
        return np.fromiter(
            (key > threshold for key in self.keys),
            dtype=bool,
            count=self.n,
        )


def np_base(view: View) -> _NumpyBase:
    """The (memoised-by-caller) word-table context for ``view``."""
    return _NumpyBase(view)


def _find(parents: List[int], x: int) -> int:
    """Union-find root with path halving."""
    while parents[x] != x:
        parents[x] = parents[parents[x]]
        x = parents[x]
    return x


def sweep_compute(
    view: View, base: _NumpyBase
) -> Dict[int, Tuple[List[Tuple[int, int]], bool]]:
    """Uncovered pairs and strong verdicts for every visible node.

    One decreasing-priority insertion sweep (see the module docstring):
    the union-find over the inserted prefix is each node's higher-priority
    component decomposition at the moment the node is processed.
    """
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].component_decompositions += 1
    index = base.index
    nodes = index.nodes
    position = index.position
    adj = base.adj_positions
    visited = base.visited
    visited_connected = view.visited_connected
    graph = view.graph
    has_edge = graph.has_edge
    parents = list(range(base.n))
    inserted = bytearray(base.n)
    hub = -1
    results: Dict[int, Tuple[List[Tuple[int, int]], bool]] = {}
    for pos in base.order_desc:
        v = nodes[pos]
        neighbors = sorted(graph.neighbors(v))
        # Root set of each neighbor's inserted closed neighborhood: the
        # components of the higher-priority subgraph it belongs to or
        # touches.
        reach: List[Set[int]] = []
        for u in neighbors:
            u_pos = position(u)
            roots: Set[int] = set()
            if inserted[u_pos]:
                roots.add(_find(parents, u_pos))
            for x_pos in adj[u_pos]:
                if inserted[x_pos]:
                    roots.add(_find(parents, x_pos))
            reach.append(roots)
        failing: List[Tuple[int, int]] = []
        count = len(neighbors)
        for i in range(count):
            u = neighbors[i]
            reach_u = reach[i]
            u_visited = visited_connected and visited[position(u)]
            for j in range(i + 1, count):
                w = neighbors[j]
                if has_edge(u, w):
                    continue
                if reach_u & reach[j]:
                    continue
                if u_visited and visited[position(w)]:
                    # Visited endpoints are mutually connected by
                    # convention.
                    continue
                failing.append((u, w))
        if count:
            # A component dominates N(v) iff its root reaches every
            # neighbor.
            common = set(reach[0])
            for roots in reach[1:]:
                common &= roots
                if not common:
                    break
            strong = bool(common)
        else:
            strong = True
        results[v] = (failing, strong)
        inserted[pos] = 1
        for x_pos in adj[pos]:
            if inserted[x_pos]:
                root_a = _find(parents, pos)
                root_b = _find(parents, x_pos)
                if root_a != root_b:
                    parents[root_a] = root_b
        if visited_connected and visited[pos]:
            # All visited nodes are connected through the source even
            # when the view cannot see how: fuse through a hub.
            if hub < 0:
                hub = pos
            else:
                root_a = _find(parents, hub)
                root_b = _find(parents, pos)
                if root_a != root_b:
                    parents[root_a] = root_b
    return results


def components_compute(
    view: View, base: _NumpyBase, v: int
) -> List[Set[int]]:
    """Higher-priority components of ``v`` via word-table flood fills."""
    if _COUNTER_STACK:
        _COUNTER_STACK[-1].component_decompositions += 1
    eligible = base.eligible_bool(view, v)
    words = base.words
    n = base.n
    nodes = base.index.nodes
    remaining = eligible.copy()
    components: List[Set[int]] = []
    while remaining.any():
        seed = int(np.argmax(remaining))
        member = np.zeros(n, dtype=bool)
        member[seed] = True
        frontier = [seed]
        while frontier:
            if _COUNTER_STACK:
                _COUNTER_STACK[-1].mask_floodfills += 1
            grow = words_to_bool(or_rows(words, frontier), n)
            grow &= eligible
            grow &= ~member
            frontier = bool_to_positions(grow)
            member |= grow
        remaining &= ~member
        components.append({nodes[p] for p in bool_to_positions(member)})
    if view.visited_connected:
        fused = eligible & base.visited
        if fused.any():
            visited_nodes = {nodes[p] for p in bool_to_positions(fused)}
            merged: Set[int] = set()
            separate: List[Set[int]] = []
            for component in components:
                if component & visited_nodes:
                    merged |= component
                else:
                    separate.append(component)
            if merged:
                components = [merged] + separate
    return components


def span_eligible(view: View, base: _NumpyBase, v: int):
    """Eligible span intermediates: higher-priority and un-visited."""
    return base.eligible_bool(view, v) & ~base.visited


def bounded_replacement_path(
    base: _NumpyBase, u: int, w: int, eligible, max_intermediates: int
) -> bool:
    """Word-table frontier BFS through ``eligible`` with bounded length."""
    words = base.words
    n = base.n
    position = base.index.position
    u_pos = position(u)
    w_pos = position(w)
    adjacency_u = words_to_bool(words[u_pos], n)
    if adjacency_u[w_pos]:
        return True
    adjacency_w = words_to_bool(words[w_pos], n)
    seen = np.zeros(n, dtype=bool)
    frontier = adjacency_u & eligible
    for _used in range(1, max_intermediates + 1):
        if not frontier.any():
            return False
        if (frontier & adjacency_w).any():
            return True
        seen |= frontier
        grow = words_to_bool(
            or_rows(words, bool_to_positions(frontier)), n
        )
        frontier = grow & eligible & ~seen
    return False
