"""Mobility management via conservative views.

The paper evaluates static topologies and defers mobility to follow-up
work, noting that "the effect of moderate mobility can be balanced by a
slight increase in the broadcast redundancy."  This module implements
that increase in a principled way, following the conservative-view idea
of Wu & Dai's mobility-management line of work:

given two consecutive topology snapshots (two hello periods), a node's
*conservative* local view

* demands coverage for the **union** of its neighbor sets — any node
  that was recently in range might still need the packet, and
* admits replacement paths only through links present in **both**
  snapshots — only links that survived the sampling interval are trusted
  to carry the replacement.

A node that prunes itself under this view is safe against any topology
that lies "between" the snapshots: if the network at broadcast time has
all the surviving links and no neighbors beyond the union, the pruned
node's coverage condition holds in reality too (asserted by the property
tests for both endpoint topologies).  The price is a larger forward set
— exactly the redundancy increase the paper predicts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from ..graph.topology import Topology
from .coverage import coverage_condition
from .priority import PriorityScheme
from .views import View

__all__ = [
    "conservative_view_graph",
    "conservative_local_view",
    "conservative_forward_set",
]


def conservative_view_graph(
    old: Topology, new: Topology, center: int, k: Optional[int] = 2
) -> Topology:
    """The conservative k-hop view of ``center`` across two snapshots.

    Nodes: the union of both snapshots' k-hop views.  Links: those
    present in **both** views, plus ``center``'s own links to the union
    of its neighbor sets (so the coverage condition must account for
    every recent neighbor).
    """
    if center not in old or center not in new:
        raise KeyError(f"node {center} missing from a snapshot")
    old_view = old if k is None else old.k_hop_view_graph(center, k)
    new_view = new if k is None else new.k_hop_view_graph(center, k)
    graph = Topology(nodes=set(old_view.nodes()) | set(new_view.nodes()))
    for u, v in old_view.edges():
        if new_view.has_edge(u, v):
            graph.add_edge(u, v)
    union_neighbors = old_view.neighbors(center) | new_view.neighbors(center)
    for u in union_neighbors:
        graph.add_edge(center, u)
    return graph


def conservative_local_view(
    old: Topology,
    new: Topology,
    center: int,
    k: Optional[int],
    scheme: PriorityScheme,
    visited: Iterable[int] = (),
    designated: Iterable[int] = (),
) -> View:
    """A :class:`View` over the conservative view graph.

    Priority metrics are the ones nodes advertised in the *old* snapshot
    — the information actually available when the decision is made.
    """
    graph = conservative_view_graph(old, new, center, k)
    metrics = scheme.metrics(old)
    padding = scheme.padding()
    visible = set(graph.nodes())
    status: Dict[int, float] = {}
    for node in designated:
        if node in visible:
            status[node] = 1.5
    for node in visited:
        if node in visible:
            status[node] = 2.0
    return View(
        graph=graph,
        status=status,
        metrics={
            node: metrics.get(node, padding) for node in visible
        },
        metric_padding=padding,
    )


def conservative_forward_set(
    old: Topology,
    new: Topology,
    scheme: PriorityScheme,
    k: Optional[int] = 2,
) -> Set[int]:
    """The static forward set under conservative per-node views.

    Every node evaluates the coverage condition on its own conservative
    view; nodes failing it form the forward set.  The result covers both
    endpoint topologies (Theorem 2 applies to each, because each node's
    conservative view is a sub-view — fewer links, more neighbors to
    cover — of its exact local view in either snapshot).
    """
    shared = set(old.nodes()) & set(new.nodes())
    forward: Set[int] = set()
    for node in shared:
        view = conservative_local_view(old, new, node, k, scheme)
        if not coverage_condition(view, node):
            forward.add(node)
    # Nodes present in only one snapshot have no mobility information;
    # they stay forward (the safe default).
    forward |= (set(old.nodes()) ^ set(new.nodes()))
    return forward
