"""The four-axis configuration surface of the generic framework.

The paper evaluates the framework along timing, selection, space, and
priority (Section 4).  :class:`FrameworkConfig` names a point in that
space; :func:`build_protocol` instantiates the corresponding protocol and
:func:`build_scheme` the priority scheme, so a complete broadcast setup is::

    config = FrameworkConfig(timing="frb", selection="self-pruning",
                             hops=3, priority="degree")
    protocol, scheme = build_protocol(config), build_scheme(config)
    outcome = run_broadcast(graph, protocol, source, scheme=scheme)

Selections:

* ``"self-pruning"`` — every node checks the coverage condition itself;
* ``"neighbor-designating"`` — only designated nodes forward (strict);
* ``"hybrid-maxdeg"`` / ``"hybrid-minpri"`` — Section 6.4 hybrids.

Neighbor-designating and hybrid selections require dynamic timing (their
designations only exist during a broadcast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..algorithms.base import BroadcastProtocol, Timing
from ..algorithms.generic import (
    GenericNeighborDesignating,
    GenericSelfPruning,
    GenericStatic,
)
from ..algorithms.hybrid import MaxDegHybrid, MinPriHybrid
from .priority import PriorityScheme, scheme_by_name

__all__ = ["FrameworkConfig", "build_protocol", "build_scheme"]

_TIMINGS = {
    "static": Timing.STATIC,
    "fr": Timing.FIRST_RECEIPT,
    "frb": Timing.FIRST_RECEIPT_BACKOFF,
    "frbd": Timing.FIRST_RECEIPT_BACKOFF_DEGREE,
}

_SELECTIONS = (
    "self-pruning",
    "neighbor-designating",
    "hybrid-maxdeg",
    "hybrid-minpri",
)


@dataclass(frozen=True)
class FrameworkConfig:
    """One point in the paper's four-dimensional design space.

    Attributes
    ----------
    timing:
        ``"static"``, ``"fr"``, ``"frb"``, or ``"frbd"`` (Section 4.1).
    selection:
        Who decides a node's status (Section 4.2).
    hops:
        View radius ``k``; ``None`` for the global view (Section 4.3).
    priority:
        ``"id"``, ``"degree"``, or ``"ncr"`` (Section 4.4).
    strong:
        Replace the generic coverage condition by the strong one.
    """

    timing: str = "fr"
    selection: str = "self-pruning"
    hops: Optional[int] = 2
    priority: str = "id"
    strong: bool = False

    def __post_init__(self) -> None:
        if self.timing not in _TIMINGS:
            raise ValueError(
                f"unknown timing {self.timing!r}; choose from {sorted(_TIMINGS)}"
            )
        if self.selection not in _SELECTIONS:
            raise ValueError(
                f"unknown selection {self.selection!r}; "
                f"choose from {_SELECTIONS}"
            )
        if self.hops is not None and self.hops < 1:
            raise ValueError(f"hops must be >= 1 or None, got {self.hops}")
        if self.selection != "self-pruning" and self.timing == "static":
            raise ValueError(
                "neighbor-designating and hybrid selections need dynamic "
                "timing; designations only exist during a broadcast"
            )


def build_protocol(config: FrameworkConfig) -> BroadcastProtocol:
    """Instantiate the protocol for ``config``."""
    timing = _TIMINGS[config.timing]
    if config.selection == "self-pruning":
        if timing is Timing.STATIC:
            return GenericStatic(hops=config.hops, strong=config.strong)
        return GenericSelfPruning(
            timing=timing, hops=config.hops, strong=config.strong
        )
    if config.selection == "neighbor-designating":
        protocol: BroadcastProtocol = GenericNeighborDesignating()
    elif config.selection == "hybrid-maxdeg":
        protocol = MaxDegHybrid()
    else:
        protocol = MinPriHybrid()
    protocol.timing = timing
    protocol.hops = config.hops
    return protocol


def build_scheme(config: FrameworkConfig) -> PriorityScheme:
    """Instantiate the priority scheme for ``config``."""
    return scheme_by_name(config.priority)
