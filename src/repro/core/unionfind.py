"""Disjoint-set (union-find) structure used by the coverage machinery."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, TypeVar

__all__ = ["DisjointSet"]

T = TypeVar("T", bound=Hashable)


class DisjointSet:
    """Union-find with path compression and union by size.

    Elements are created lazily on first touch, so callers can union and
    find without a separate registration pass.
    """

    def __init__(self, elements: Iterable[T] = ()) -> None:
        self._parent: Dict[T, T] = {}
        self._size: Dict[T, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: T) -> None:
        """Register ``element`` as its own singleton set (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1

    def __contains__(self, element: T) -> bool:
        return element in self._parent

    def find(self, element: T) -> T:
        """The canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the sets of ``a`` and ``b``; return the new representative."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: T, b: T) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> List[Set[T]]:
        """All current sets."""
        by_root: Dict[T, Set[T]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())
