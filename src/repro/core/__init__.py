"""Core of the paper's contribution: priorities, views, coverage conditions."""

from .status import DESIGNATED, INVISIBLE, UNVISITED, VISITED, status_name
from .priority import (
    DegreePriority,
    IdPriority,
    NcrPriority,
    PriorityKey,
    PriorityScheme,
    make_key,
    scheme_by_name,
)
from .views import View, global_view, local_view, super_view
from .coverage import (
    coverage_backend,
    coverage_condition,
    higher_priority_components,
    uncovered_pairs,
    span_condition,
    strong_coverage_condition,
)
from .conservative import (
    conservative_forward_set,
    conservative_local_view,
    conservative_view_graph,
)
from .maxmin import max_min_node, max_min_path
from .refine import prune_cds
from .unionfind import DisjointSet

__all__ = [
    "DESIGNATED",
    "INVISIBLE",
    "UNVISITED",
    "VISITED",
    "status_name",
    "DegreePriority",
    "IdPriority",
    "NcrPriority",
    "PriorityKey",
    "PriorityScheme",
    "make_key",
    "scheme_by_name",
    "View",
    "global_view",
    "local_view",
    "super_view",
    "coverage_backend",
    "coverage_condition",
    "higher_priority_components",
    "uncovered_pairs",
    "span_condition",
    "strong_coverage_condition",
    "conservative_forward_set",
    "conservative_local_view",
    "conservative_view_graph",
    "prune_cds",
    "max_min_node",
    "max_min_path",
    "DisjointSet",
]
