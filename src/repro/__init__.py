"""repro — a full reproduction of Wu & Dai's generic distributed broadcast
scheme for ad hoc wireless networks (ICDCS 2003).

The library has five layers:

* :mod:`repro.graph` — unit-disk network substrate, CDS toolkit, mobility;
* :mod:`repro.core` — views, priorities, and the coverage conditions (the
  paper's contribution);
* :mod:`repro.sim` — discrete-event broadcast engine, MAC models, hello
  protocol;
* :mod:`repro.algorithms` — the generic framework instances and every
  special case (Wu & Li, Rule-k, Span, MPR, SBA, Stojmenovic, LENWB,
  DP/TDP/PDP, hybrids);
* :mod:`repro.experiments` — per-figure reproduction harness.

Quickstart::

    import random
    from repro import (FrameworkConfig, build_protocol, build_scheme,
                       random_connected_network, run_broadcast)

    rng = random.Random(7)
    network = random_connected_network(50, 6.0, rng)
    config = FrameworkConfig(timing="fr", selection="self-pruning",
                             hops=2, priority="degree")
    outcome = run_broadcast(network.topology, build_protocol(config),
                            source=0, scheme=build_scheme(config), rng=rng)
    print(outcome.forward_count, "forward nodes,",
          len(outcome.delivered), "nodes covered")
"""

from .core.coverage import (
    coverage_condition,
    span_condition,
    strong_coverage_condition,
)
from .core.framework import FrameworkConfig, build_protocol, build_scheme
from .core.maxmin import max_min_node, max_min_path
from .core.priority import (
    DegreePriority,
    IdPriority,
    NcrPriority,
    PriorityScheme,
    scheme_by_name,
)
from .core.views import View, global_view, local_view, super_view
from .graph.generators import (
    grid_network,
    random_connected_network,
    random_network,
)
from .graph.cds import greedy_cds, is_cds, is_dominating_set
from .graph.topology import Topology
from .graph.unit_disk import UnitDiskGraph, build_unit_disk_graph
from .instrument import InstrumentationCounters, collecting
from .sim.engine import (
    BroadcastOutcome,
    BroadcastSession,
    MessageState,
    MessageTable,
    SimulationEnvironment,
    run_broadcast,
    session_seed,
)
from .sim.service import (
    MessageOutcome,
    ServiceEngine,
    ServiceOutcome,
    service_seed,
)
from .sim.traffic import (
    BurstyTraffic,
    Message,
    PoissonTraffic,
    ScriptedTraffic,
    SingleShot,
    TrafficModel,
    ZipfTraffic,
    traffic_seed,
)
from .sim.events import (
    EventBus,
    RecordingBus,
    SimEvent,
    events_from_jsonl,
    events_to_jsonl,
)
from .algorithms import REGISTRY, Timing, create

__version__ = "1.0.0"

__all__ = [
    "coverage_condition",
    "span_condition",
    "strong_coverage_condition",
    "FrameworkConfig",
    "build_protocol",
    "build_scheme",
    "max_min_node",
    "max_min_path",
    "DegreePriority",
    "IdPriority",
    "NcrPriority",
    "PriorityScheme",
    "scheme_by_name",
    "View",
    "global_view",
    "local_view",
    "super_view",
    "grid_network",
    "random_connected_network",
    "random_network",
    "greedy_cds",
    "is_cds",
    "is_dominating_set",
    "Topology",
    "UnitDiskGraph",
    "build_unit_disk_graph",
    "BroadcastOutcome",
    "BroadcastSession",
    "MessageState",
    "MessageTable",
    "SimulationEnvironment",
    "run_broadcast",
    "session_seed",
    "MessageOutcome",
    "ServiceEngine",
    "ServiceOutcome",
    "service_seed",
    "BurstyTraffic",
    "Message",
    "PoissonTraffic",
    "ScriptedTraffic",
    "SingleShot",
    "TrafficModel",
    "ZipfTraffic",
    "traffic_seed",
    "InstrumentationCounters",
    "collecting",
    "EventBus",
    "RecordingBus",
    "SimEvent",
    "events_to_jsonl",
    "events_from_jsonl",
    "REGISTRY",
    "Timing",
    "create",
    "__version__",
]
