"""Decision explanations: *why* is this node forward or non-forward?

A debugging and teaching aid over the coverage machinery: for a node and
a view, report the uncovered neighbor pairs (if any), the replacement
path MAX_MIN constructs for each covered pair, and which condition
variants (generic / strong / Span) agree.  Used by the diagnosis example
and handy when a new protocol misbehaves.

The second half of the module reads *recorded executions*: given a
:class:`~repro.sim.engine.BroadcastOutcome` with typed events on it,
:func:`decision_timeline` lists every status decision in simulation
order and :func:`format_decision_timeline` renders them for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.coverage import (
    coverage_condition,
    span_condition,
    strong_coverage_condition,
    uncovered_pairs,
)
from ..core.maxmin import max_min_path
from ..core.views import View
from ..sim.engine import BroadcastOutcome
from ..sim.events import Decide

__all__ = [
    "PairExplanation",
    "DecisionExplanation",
    "explain_decision",
    "decision_timeline",
    "format_decision_timeline",
]


@dataclass(frozen=True)
class PairExplanation:
    """One neighbor pair and its replacement path (or lack of one)."""

    pair: Tuple[int, int]
    #: The maximal replacement path including endpoints; ``None`` when
    #: the pair is uncovered.
    path: Optional[Tuple[int, ...]]

    @property
    def covered(self) -> bool:
        return self.path is not None

    def describe(self) -> str:
        """One line: the pair and how (or whether) it is replaced."""
        u, w = self.pair
        if self.path is None:
            return f"({u}, {w}): UNCOVERED — no replacement path"
        if len(self.path) == 2:
            return f"({u}, {w}): direct edge"
        inner = " -> ".join(str(x) for x in self.path)
        return f"({u}, {w}): replaced via {inner}"


@dataclass
class DecisionExplanation:
    """The full story of one node's status under one view."""

    node: int
    non_forward: bool
    strong_non_forward: bool
    span_non_forward: bool
    pairs: List[PairExplanation] = field(default_factory=list)

    @property
    def status(self) -> str:
        return "non-forward" if self.non_forward else "forward"

    def uncovered(self) -> List[Tuple[int, int]]:
        """The neighbor pairs blocking non-forward status."""
        return [p.pair for p in self.pairs if not p.covered]

    def describe(self) -> str:
        """The full multi-line explanation, ready to print."""
        lines = [
            f"node {self.node}: {self.status}",
            f"  generic coverage condition : "
            f"{'satisfied' if self.non_forward else 'violated'}",
            f"  strong coverage condition  : "
            f"{'satisfied' if self.strong_non_forward else 'violated'}",
            f"  span (<=2 intermediates)   : "
            f"{'satisfied' if self.span_non_forward else 'violated'}",
        ]
        for pair in self.pairs:
            lines.append(f"    {pair.describe()}")
        return "\n".join(lines)


def explain_decision(view: View, node: int) -> DecisionExplanation:
    """Explain a node's status under ``view``, pair by pair."""
    failing = set(uncovered_pairs(view, node))
    neighbors = sorted(view.graph.neighbors(node))
    pairs: List[PairExplanation] = []
    for i, u in enumerate(neighbors):
        for w in neighbors[i + 1:]:
            if (u, w) in failing:
                pairs.append(PairExplanation(pair=(u, w), path=None))
            else:
                path = max_min_path(view, u, w, node)
                pairs.append(
                    PairExplanation(
                        pair=(u, w),
                        path=tuple(path) if path is not None else None,
                    )
                )
    return DecisionExplanation(
        node=node,
        non_forward=coverage_condition(view, node),
        strong_non_forward=strong_coverage_condition(view, node),
        span_non_forward=span_condition(view, node),
        pairs=pairs,
    )


def decision_timeline(outcome: BroadcastOutcome) -> List[Decide]:
    """All status decisions of a recorded broadcast, in simulation order.

    Consumes the typed :class:`~repro.sim.events.Decide` events on
    ``outcome.events``; requires the session to have been run with
    ``collect_trace=True`` (or an explicit recording bus), and raises
    ``ValueError`` otherwise.
    """
    if outcome.events is None:
        raise ValueError(
            "decision timeline needs recorded events; run the session "
            "with collect_trace=True"
        )
    return [event for event in outcome.events if isinstance(event, Decide)]


def format_decision_timeline(outcome: BroadcastOutcome) -> str:
    """Render :func:`decision_timeline` as one line per decision."""
    lines = []
    for event in decision_timeline(outcome):
        status = "forward" if event.forward else "non-forward"
        qualifier = f" [{event.reason}]" if event.reason != "timer" else ""
        lines.append(
            f"[{event.time:8.3f}] node {event.node}: {status}{qualifier}"
        )
    return "\n".join(lines)
