"""Broadcast tree extraction and shape statistics.

From a traced broadcast, reconstruct the *delivery tree*: every node's
parent is the sender of the first copy it received.  The tree's depth
is the hop-latency profile, its internal nodes are the forward set, and
its branching factors show how the protocol spreads duty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..sim.engine import BroadcastOutcome
from ..sim.events import Deliver

__all__ = ["BroadcastTree", "build_broadcast_tree"]


@dataclass
class BroadcastTree:
    """The first-delivery tree of one broadcast."""

    root: int
    #: Child -> parent (the sender of the child's first copy).
    parents: Dict[int, int] = field(default_factory=dict)

    def children(self, node: int) -> List[int]:
        """Nodes whose first copy came from ``node``."""
        return sorted(
            child for child, parent in self.parents.items() if parent == node
        )

    def depth_of(self, node: int) -> int:
        """Hops from the root to ``node`` along first deliveries."""
        depth = 0
        current = node
        while current != self.root:
            current = self.parents[current]
            depth += 1
            if depth > len(self.parents) + 1:
                raise ValueError("parent map contains a cycle")
        return depth

    def depth(self) -> int:
        """The deepest delivery (hop count of the slowest node)."""
        if not self.parents:
            return 0
        return max(self.depth_of(node) for node in self.parents)

    def internal_nodes(self) -> Set[int]:
        """Nodes with at least one child — the effective forwarders."""
        return set(self.parents.values())

    def mean_branching(self) -> float:
        """Average children per internal node."""
        internal = self.internal_nodes()
        if not internal:
            return 0.0
        return len(self.parents) / len(internal)

    def nodes(self) -> Set[int]:
        """All nodes the tree spans (root included)."""
        return set(self.parents) | {self.root}


def build_broadcast_tree(outcome: BroadcastOutcome) -> BroadcastTree:
    """Reconstruct the first-delivery tree from a recorded outcome.

    Consumes the typed :class:`~repro.sim.events.Deliver` events on
    ``outcome.events``; requires the session to have been run with
    ``collect_trace=True`` (or an explicit recording bus), and raises
    ``ValueError`` otherwise.
    """
    if outcome.events is None:
        raise ValueError(
            "broadcast tree needs recorded events; run the session with "
            "collect_trace=True"
        )
    tree = BroadcastTree(root=outcome.source)
    for event in outcome.events:
        if not isinstance(event, Deliver):
            continue
        node = event.node
        if node == outcome.source or node in tree.parents:
            continue
        tree.parents[node] = event.sender
    return tree
