"""Post-hoc analysis: decision explanations and broadcast trees."""

from .broadcast_tree import BroadcastTree, build_broadcast_tree
from .explain import DecisionExplanation, PairExplanation, explain_decision

__all__ = [
    "BroadcastTree",
    "build_broadcast_tree",
    "DecisionExplanation",
    "PairExplanation",
    "explain_decision",
]
