"""Post-hoc analysis: decision explanations and broadcast trees."""

from .broadcast_tree import BroadcastTree, build_broadcast_tree
from .explain import (
    DecisionExplanation,
    PairExplanation,
    decision_timeline,
    explain_decision,
    format_decision_timeline,
)

__all__ = [
    "BroadcastTree",
    "build_broadcast_tree",
    "DecisionExplanation",
    "PairExplanation",
    "explain_decision",
    "decision_timeline",
    "format_decision_timeline",
]
