"""Instrumentation counters: the measured-work substrate for every layer.

The paper's cost-effectiveness arguments (Section 7) weigh forward-node
savings against the *work* a protocol does — hello rounds, coverage
evaluations, deliveries.  This module provides the single typed counter
object that every layer reports into:

* :mod:`repro.core.coverage` — coverage-condition evaluations, component
  decompositions, per-view memo hits/misses;
* :mod:`repro.graph.topology` — query-cache hits/misses, BFS runs, and
  the bitmask-kernel ops (adjacency-mask table builds, mask BFS runs,
  component flood-fills);
* :mod:`repro.sim.mac` — deliveries, losses, collisions;
* :mod:`repro.sim.scheduler` — events fired, maximum queue depth;
* the broadcast engine and hello protocol — transmissions, bytes,
  decisions, hello beacons, NACK-recovery work.

Collection is scoped, not global: hot paths report into the innermost
active :func:`collecting` context and are a single ``if _STACK:`` check
when no context is active, so an uninstrumented run pays (close to)
nothing.  Contexts nest — an inner context captures a sub-measurement
and merges into its parent on exit — and counters merge across runs and
across the process pool (workers ship plain dicts back to the parent;
see :mod:`repro.experiments.parallel`).

Counter semantics: every field is a monotone sum except the fields in
:data:`MAX_FIELDS` (high-water marks: the scheduler's maximum queue
depth, the service egress-queue peak, and the sharded driver's largest
partial-replica node count), which merge by maximum.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

__all__ = [
    "InstrumentationCounters",
    "MAX_FIELDS",
    "active",
    "collecting",
    "merge_counter_dicts",
]

#: Fields that merge by ``max`` instead of ``+`` (high-water marks).
MAX_FIELDS = frozenset(
    {"scheduler_max_queue_depth", "queue_depth_max", "replica_nodes_max"}
)


@dataclass
class InstrumentationCounters:
    """Typed, mergeable work counters for one measurement scope.

    All fields default to zero; :meth:`merge` adds another scope's counts
    into this one (maximum for :data:`MAX_FIELDS`).
    """

    # core/coverage.py
    coverage_evaluations: int = 0
    component_decompositions: int = 0
    coverage_memo_hits: int = 0
    coverage_memo_misses: int = 0
    # graph/topology.py
    topology_cache_hits: int = 0
    topology_cache_misses: int = 0
    bfs_runs: int = 0
    # graph/topology.py delta layer (apply_delta)
    delta_applies: int = 0
    dirty_nodes_invalidated: int = 0
    cache_entries_retained: int = 0
    # graph/topology.py + core/coverage.py bitmask kernels
    mask_table_builds: int = 0
    mask_khop_runs: int = 0
    mask_floodfills: int = 0
    # sim/mac.py
    mac_deliveries: int = 0
    mac_losses: int = 0
    mac_collisions: int = 0
    # sim/scheduler.py
    scheduler_events: int = 0
    scheduler_max_queue_depth: int = 0
    # sim/engine.py + sim/rounds.py
    transmissions: int = 0
    bytes_transmitted: int = 0
    decisions: int = 0
    # sim/service.py (broadcast service)
    #: High-water mark of any node's bounded egress queue (merge: max).
    queue_depth_max: int = 0
    #: Backpressure and staleness drops: queue_full + ttl_expired events.
    messages_dropped: int = 0
    #: Service decision-cache hits: forward/designate decisions reused
    #: across messages within one topology epoch.
    forward_set_reuses: int = 0
    # experiments/sharded.py (sharded mobility driver)
    #: Re-decisions summed over shards — handoff copies included, so
    #: this is >= the serial sweep's dirty-set total.
    shard_redecides: int = 0
    #: Re-decision copies beyond each dirty node's first routed shard
    #: (the cross-shard handoff volume).
    shard_handoff_redecides: int = 0
    #: Link flips whose endpoints' routed shard sets span >1 shard.
    shard_boundary_flips: int = 0
    #: Link flips applied across shard partial replicas — a flip routed
    #: to ``m`` shard universes counts ``m`` times, so the gap to the
    #: serial sweep's flip count is the routing duplication volume.
    shard_flips_applied: int = 0
    #: High-water node count of any single shard's partial replica
    #: (merge: max).  ``replica_nodes_max < n`` is the proof that the
    #: partial-replica bound was exercised rather than silently
    #: bypassed by a full copy.
    replica_nodes_max: int = 0
    #: Dynamic re-partitions: step boundaries where the parent re-split
    #: the shard grid and shipped fresh subgraph snapshots.
    shard_rehomes: int = 0
    # sim/hello.py
    hello_messages: int = 0
    # sim/reliable.py
    nacks: int = 0
    retransmissions: int = 0

    def merge(self, other: "InstrumentationCounters") -> None:
        """Fold ``other`` into this object (sum, max for high-water marks)."""
        for spec in fields(self):
            name = spec.name
            theirs = getattr(other, name)
            if name in MAX_FIELDS:
                if theirs > getattr(self, name):
                    setattr(self, name, theirs)
            else:
                setattr(self, name, getattr(self, name) + theirs)

    def __add__(self, other: "InstrumentationCounters") -> "InstrumentationCounters":
        """A fresh counters object holding the merge of both operands."""
        result = InstrumentationCounters()
        result.merge(self)
        result.merge(other)
        return result

    def as_dict(self) -> Dict[str, int]:
        """Plain ``{field: value}`` dict (pickle- and JSON-safe)."""
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @staticmethod
    def from_dict(payload: Mapping[str, int]) -> "InstrumentationCounters":
        """Rebuild counters from :meth:`as_dict` output.

        Unknown keys are rejected so a schema drift between worker and
        parent (e.g. mixed library versions in a pool) fails loudly.
        """
        known = {spec.name for spec in fields(InstrumentationCounters)}
        unknown = set(payload) - known
        if unknown:
            raise KeyError(f"unknown counter fields: {sorted(unknown)}")
        return InstrumentationCounters(**dict(payload))

    def total_work(self) -> int:
        """Sum of all sum-semantics fields — a single coarse work scalar."""
        return sum(
            getattr(self, spec.name)
            for spec in fields(self)
            if spec.name not in MAX_FIELDS
        )


#: The stack of active collection scopes.  Hot paths check truthiness of
#: this list directly (``if _STACK: _STACK[-1].field += 1``) — it is
#: mutated in place and never rebound, so importing the object is safe.
_STACK: List[InstrumentationCounters] = []


def active() -> Optional[InstrumentationCounters]:
    """The innermost collecting scope's counters, or ``None``."""
    return _STACK[-1] if _STACK else None


@contextmanager
def collecting(
    counters: Optional[InstrumentationCounters] = None,
) -> Iterator[InstrumentationCounters]:
    """Collect instrumentation counts for the duration of the block.

    Yields the counters object (a fresh one unless ``counters`` is
    given).  Scopes nest: on exit the scope's counts are merged into the
    enclosing scope, so an outer aggregate still sees everything an
    inner sub-measurement captured.
    """
    scope = counters if counters is not None else InstrumentationCounters()
    _STACK.append(scope)
    try:
        yield scope
    finally:
        _STACK.pop()
        if _STACK:
            _STACK[-1].merge(scope)


def merge_counter_dicts(
    payloads: Iterable[Mapping[str, int]],
) -> Dict[str, int]:
    """Merge :meth:`InstrumentationCounters.as_dict` payloads.

    The dict-level twin of :meth:`InstrumentationCounters.merge`, used by
    the metrics layer where counters travel as plain dicts (e.g. attached
    to data points shipped back from pool workers).
    """
    total = InstrumentationCounters()
    for payload in payloads:
        total.merge(InstrumentationCounters.from_dict(payload))
    return total.as_dict()
