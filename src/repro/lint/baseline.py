"""The committed findings baseline: fingerprints, load/save, and diffing.

The baseline lets CI fail on *new* findings while tolerating accepted
pre-existing ones.  Each entry is fingerprinted from the finding's rule,
path, stripped source line, and occurrence index — deliberately **not**
the line number, so unrelated edits above a baselined finding don't
invalidate the whole file's entries.

Regenerate with ``python -m repro.lint --write-baseline`` after fixing
or accepting findings; ``--check-baseline`` additionally fails when the
committed baseline has gone stale (an entry no longer matches any
finding), keeping the file honest.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from .findings import Finding

__all__ = [
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
    "diff_against_baseline",
    "BASELINE_VERSION",
]

BASELINE_VERSION = 1


def _fingerprint(rule: str, path: str, snippet: str, occurrence: int) -> str:
    digest = hashlib.sha256(
        f"{rule}|{path}|{snippet}|{occurrence}".encode()
    ).hexdigest()
    return digest[:16]


def fingerprint_findings(
    findings: Iterable[Finding],
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    Identical ``(rule, path, snippet)`` triples are disambiguated by
    occurrence index in report order, so two textually identical
    violations in one file fingerprint differently.
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    pairs: List[Tuple[Finding, str]] = []
    for finding in sorted(findings):
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        pairs.append(
            (
                finding,
                _fingerprint(
                    finding.rule, finding.path, finding.snippet, occurrence
                ),
            )
        )
    return pairs


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write the baseline JSON for ``findings`` (sorted, versioned)."""
    entries = [
        {
            "fingerprint": fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "snippet": finding.snippet,
        }
        for finding, fingerprint in fingerprint_findings(findings)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_baseline(path: str) -> Dict[str, Dict[str, str]]:
    """Baseline entries keyed by fingerprint (empty if file is absent)."""
    file_path = Path(path)
    if not file_path.exists():
        return {}
    payload = json.loads(file_path.read_text(encoding="utf-8"))
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {version!r}, "
            f"expected {BASELINE_VERSION}; regenerate with --write-baseline"
        )
    return {
        entry["fingerprint"]: entry for entry in payload.get("findings", [])
    }


def diff_against_baseline(
    findings: Sequence[Finding], baseline: Dict[str, Dict[str, str]]
) -> Tuple[List[Finding], List[Finding], List[Dict[str, str]]]:
    """Split ``findings`` into ``(new, accepted, stale_entries)``.

    ``new`` are findings absent from the baseline (these fail the run);
    ``accepted`` match a baseline fingerprint; ``stale_entries`` are
    baseline records no current finding matches (reported, and fatal
    under ``--check-baseline``).
    """
    new: List[Finding] = []
    accepted: List[Finding] = []
    matched: set = set()
    for finding, fingerprint in fingerprint_findings(findings):
        if fingerprint in baseline:
            accepted.append(finding)
            matched.add(fingerprint)
        else:
            new.append(finding)
    stale = [
        entry
        for fingerprint, entry in sorted(baseline.items())
        if fingerprint not in matched
    ]
    return new, accepted, stale
