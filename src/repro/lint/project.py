"""The single-pass project graph the interprocedural rules consume.

The engine parses every file exactly once; :class:`Project` is built
from those parsed modules and bundles the three analyses (symbol table,
call graph, seed lineage) plus the *sim-reaching* classification:
a module participates in simulation determinism if it either lives in
one of the sim-scope directories or imports (directly, transitively
within the project, or textually via a ``repro.<sim-dir>`` candidate)
a module that does.  Textual matching matters for single-file runs —
``repro.routing.link_state`` imports ``repro.sim.engine`` and must stay
sim-reaching even when the engine module is outside the lint roots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from .callgraph import CallGraph
from .lineage import SeedLineage
from .registry import LintContext, path_parts
from .rules import SIM_SCOPE
from .symtab import SymbolTable

__all__ = ["Project"]


class Project:
    """All parsed modules of one lint run plus their shared analyses."""

    def __init__(self, contexts: Sequence[LintContext]) -> None:
        self.contexts: Dict[str, LintContext] = {}
        self.symtab = SymbolTable()
        for ctx in sorted(contexts, key=lambda c: c.path):
            self.contexts[ctx.path] = ctx
            self.symtab.add_module(ctx.path, ctx.tree)
        self.callgraph = CallGraph.build(self.symtab)
        self.lineage = SeedLineage(self.symtab, self.callgraph)
        self._sim_reaching = self._compute_sim_reaching()

    # -- sim reachability ----------------------------------------------

    @staticmethod
    def _in_sim_dirs(path: str) -> bool:
        parts = path_parts(path)
        return (
            any(part in SIM_SCOPE for part in parts)
            and "tests" not in parts
        )

    @staticmethod
    def _textual_sim_import(candidate: str) -> bool:
        """``repro.sim.engine``-shaped import targets count as sim even
        when the target module is not part of this lint run."""
        parts = candidate.split(".")
        return parts[:1] == ["repro"] and any(
            part in SIM_SCOPE for part in parts[1:]
        )

    def _compute_sim_reaching(self) -> Set[str]:
        reaching: Set[str] = set()
        for name in sorted(self.symtab.modules):
            module = self.symtab.modules[name]
            if self._in_sim_dirs(module.path) or any(
                self._textual_sim_import(candidate)
                for candidate in module.imported_modules
            ):
                reaching.add(name)
        # Propagate through project-internal imports until fixpoint:
        # importing a sim-reaching module makes the importer reaching.
        changed = True
        while changed:
            changed = False
            for name in sorted(self.symtab.modules):
                if name in reaching:
                    continue
                module = self.symtab.modules[name]
                for candidate in module.imported_modules:
                    target = candidate
                    # ``from repro.sim import engine`` records both the
                    # package and the member; trim symbol suffixes down
                    # to a known module when needed.
                    while target and target not in self.symtab.modules:
                        target = target.rpartition(".")[0]
                    if target and target in reaching:
                        reaching.add(name)
                        changed = True
                        break
        return reaching

    def sim_reaching(self, module_name: str) -> bool:
        """Whether ``module_name`` is in sim scope or imports into it."""
        return module_name in self._sim_reaching

    # -- convenience ----------------------------------------------------

    def modules_sorted(self) -> List[str]:
        """Module names ordered by file path (finding order)."""
        return sorted(
            self.symtab.modules,
            key=lambda name: self.symtab.modules[name].path,
        )
