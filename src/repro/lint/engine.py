"""File discovery, pragma handling, and the lint driver.

The engine parses each file exactly once and runs two passes over the
parsed records: the per-file rules (DET001–DET010), which can fan out
over a ``--jobs N`` fork pool, and the project rules (DET011–DET014),
which consume the :class:`~repro.lint.project.Project` graph built from
*all* records in the parent.  Raw findings flow back to the parent,
which applies pragma suppression centrally (so suppression hit counts
are exact at any worker count) and sorts the merged result — output is
byte-identical whatever ``--jobs`` value produced it.

``# detlint:`` pragma comments:

``# detlint: disable=DET001,DET004``
    Suppress the named rules on the line the pragma appears on.  For a
    pragma on a continuation line of a multi-line statement, the
    suppression also covers the statement's first line (where findings
    are reported).
``# detlint: disable``
    Suppress every rule on that line.
``# detlint: skip-file``
    Skip the file — honoured only in the file header, i.e. on or
    before the first statement after the module docstring.  A
    ``skip-file`` later in the file is inert (and reported as a stale
    pragma by ``--stats``).

A file that fails to parse yields a single ``DET000`` finding rather
than crashing the run, so one broken file cannot hide the rest.
``DET000`` is not suppressible.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .findings import Finding
from .project import Project
from .registry import (
    LintContext,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    path_parts,
)

__all__ = [
    "lint_source",
    "lint_sources",
    "lint_paths",
    "run_sources",
    "run_paths",
    "iter_python_files",
    "LintRun",
    "PragmaUse",
    "PRAGMA_PATTERN",
]

PRAGMA_PATTERN = re.compile(
    r"#\s*detlint\s*:\s*(?P<verb>disable|skip-file)"
    r"(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+?))?\s*(?:#|$)"
)

#: Directory components never linted: bytecode caches, and the fixture
#: corpus under ``tests/lint/fixtures`` whose files are *deliberate*
#: violations for the linter's own test suite.
_SKIPPED_DIRS = ("__pycache__",)


@dataclass
class PragmaUse:
    """One ``# detlint:`` pragma and how many findings it suppressed."""

    path: str
    line: int
    verb: str  # "disable" | "skip-file"
    codes: Optional[Tuple[str, ...]] = None  # None = all rules
    hits: int = 0
    #: False for a ``skip-file`` appearing after the first statement —
    #: recorded (so ``--stats`` can call it stale) but never honoured.
    active: bool = True

    def label(self) -> str:
        """Short human form for the stats subreport (``disable=...``)."""
        if self.verb == "skip-file":
            return "skip-file" if self.active else "skip-file (inert: not in file header)"
        if self.codes is None:
            return "disable"
        return "disable=" + ",".join(self.codes)


@dataclass
class LintRun:
    """The full result of one lint run (findings plus pragma accounting)."""

    findings: List[Finding]
    checked_files: int
    pragmas: List[PragmaUse] = field(default_factory=list)

    def stale_pragmas(self) -> List[PragmaUse]:
        """Pragmas that suppressed nothing in this run."""
        return [p for p in self.pragmas if p.hits == 0]


@dataclass
class _FileRecord:
    """One parsed (or unparsable) input file, ready for the rule passes."""

    path: str
    source: str
    context: Optional[LintContext]
    parse_finding: Optional[Finding]
    pragmas: List[PragmaUse]
    skip_pragma: Optional[PragmaUse]
    #: finding line -> pragmas covering that line, in source order.
    suppress: Dict[int, List[PragmaUse]]


def _first_code_line(tree: ast.Module) -> Optional[int]:
    """First statement line, skipping the module docstring."""
    body = list(tree.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    return body[0].lineno if body else None


def _covering_statement_line(
    tree: ast.Module, line: int
) -> Optional[int]:
    """First line of the innermost statement spanning physical ``line``."""
    best: Optional[Tuple[int, int]] = None  # (lineno, end_lineno)
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None or not (node.lineno <= line <= end):
            continue
        if best is None or (node.lineno, -end) > (best[0], -best[1]):
            best = (node.lineno, end)
    return best[0] if best is not None else None


def _build_record(path: str, source: str) -> _FileRecord:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return _FileRecord(
            path=path,
            source=source,
            context=None,
            parse_finding=Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="DET000",
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            ),
            pragmas=[],
            skip_pragma=None,
            suppress={},
        )
    ctx = LintContext(path, source, tree)
    pragmas: List[PragmaUse] = []
    skip_pragma: Optional[PragmaUse] = None
    suppress: Dict[int, List[PragmaUse]] = {}
    first_code = _first_code_line(tree)
    for number, line in enumerate(ctx.lines, start=1):
        if "#" not in line or "detlint" not in line:
            continue
        match = PRAGMA_PATTERN.search(line)
        if match is None:
            continue
        if match.group("verb") == "skip-file":
            honoured = first_code is None or number <= first_code
            pragma = PragmaUse(
                path=path, line=number, verb="skip-file", active=honoured
            )
            pragmas.append(pragma)
            if honoured and skip_pragma is None:
                skip_pragma = pragma
            continue
        raw = match.group("codes")
        codes: Optional[Tuple[str, ...]] = None
        if raw is not None:
            codes = tuple(
                sorted({code.strip() for code in raw.split(",") if code.strip()})
            )
        pragma = PragmaUse(path=path, line=number, verb="disable", codes=codes)
        pragmas.append(pragma)
        lines_covered = {number}
        anchor = _covering_statement_line(tree, number)
        if anchor is not None:
            # A pragma on a continuation line also covers the line the
            # finding is reported on — the statement's first line.
            lines_covered.add(anchor)
        for covered in sorted(lines_covered):
            suppress.setdefault(covered, []).append(pragma)
    return _FileRecord(
        path=path,
        source=source,
        context=ctx,
        parse_finding=None,
        pragmas=pragmas,
        skip_pragma=skip_pragma,
        suppress=suppress,
    )


def _check_context(ctx: LintContext, rules: Sequence[Rule]) -> List[Finding]:
    """Run the per-file rules over one parsed file (no suppression)."""
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx.path):
            continue
        findings.extend(rule.check(ctx))
    return findings


def _filter_record(
    record: _FileRecord, findings: Iterable[Finding]
) -> List[Finding]:
    """Apply the record's pragmas, counting every suppression hit."""
    ordered = sorted(findings)
    if record.skip_pragma is not None:
        record.skip_pragma.hits += len(ordered)
        return []
    kept: List[Finding] = []
    for finding in ordered:
        matched: Optional[PragmaUse] = None
        for pragma in record.suppress.get(finding.line, ()):
            if pragma.codes is None or finding.rule in pragma.codes:
                matched = pragma
                break
        if matched is not None:
            matched.hits += 1
        else:
            kept.append(finding)
    return kept


# -- parallel front-end ------------------------------------------------
#
# The fork-pool pattern mirrors ``repro.experiments.parallel``: records
# (which hold unpicklable AST trees) are installed as worker globals by
# the pool initializer and inherited through fork() without ever being
# pickled; only chunk indices travel to the workers and only plain
# Finding dataclasses travel back.

_WORKER_RECORDS: Optional[List[_FileRecord]] = None
_WORKER_CODES: Optional[Tuple[str, ...]] = None


def _init_worker(
    records: List[_FileRecord], codes: Tuple[str, ...]
) -> None:
    global _WORKER_RECORDS, _WORKER_CODES
    _WORKER_RECORDS = records
    _WORKER_CODES = codes


def _lint_chunk(indices: List[int]) -> List[Tuple[int, List[Finding]]]:
    assert _WORKER_RECORDS is not None and _WORKER_CODES is not None
    rules = [get_rule(code) for code in _WORKER_CODES]
    results: List[Tuple[int, List[Finding]]] = []
    for index in indices:
        record = _WORKER_RECORDS[index]
        if record.context is None:
            continue
        results.append((index, _check_context(record.context, rules)))
    return results


def _fork_context():
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def _registered(rules: Sequence[Rule]) -> bool:
    """Whether every rule is the registry's own instance (fork-safe)."""
    try:
        return all(get_rule(rule.code) is rule for rule in rules)
    except KeyError:
        return False


def _per_file_pass(
    records: List[_FileRecord], file_rules: Sequence[Rule], jobs: int
) -> Dict[int, List[Finding]]:
    lintable = [i for i, r in enumerate(records) if r.context is not None]
    results: Dict[int, List[Finding]] = {}
    workers = min(jobs, len(lintable))
    context = _fork_context() if workers > 1 else None
    if context is not None and _registered(file_rules):
        from concurrent.futures import ProcessPoolExecutor

        codes = tuple(rule.code for rule in file_rules)
        chunks = [lintable[offset::workers] for offset in range(workers)]
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(records, codes),
        ) as pool:
            for chunk_result in pool.map(_lint_chunk, chunks):
                for index, findings in chunk_result:
                    results[index] = findings
        return results
    for index in lintable:
        context_obj = records[index].context
        assert context_obj is not None
        results[index] = _check_context(context_obj, file_rules)
    return results


# -- drivers -----------------------------------------------------------


def run_sources(
    items: Sequence[Tuple[str, str]],
    rules: Optional[Sequence[Rule]] = None,
    jobs: int = 1,
) -> LintRun:
    """Lint ``(path, source)`` pairs as one project; the core driver.

    Findings from the per-file and project passes are merged, filtered
    through pragmas in the parent (hit counts stay exact under any
    ``jobs`` value), and globally sorted — the result is byte-identical
    at any worker count.
    """
    records = [_build_record(path, source) for path, source in items]
    selected = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in selected if not isinstance(r, ProjectRule)]
    project_rules = [r for r in selected if isinstance(r, ProjectRule)]
    per_file = _per_file_pass(records, file_rules, max(1, jobs))
    contexts = [r.context for r in records if r.context is not None]
    if project_rules and contexts:
        project = Project(contexts)
        by_path = {
            record.path: index
            for index, record in enumerate(records)
            if record.context is not None
        }
        for rule in project_rules:
            for finding in rule.check_project(project):
                index = by_path.get(finding.path)
                if index is not None:
                    per_file.setdefault(index, []).append(finding)
    findings: List[Finding] = []
    pragmas: List[PragmaUse] = []
    for index, record in enumerate(records):
        if record.parse_finding is not None:
            findings.append(record.parse_finding)
        else:
            findings.extend(
                _filter_record(record, per_file.get(index, []))
            )
        pragmas.extend(record.pragmas)
    return LintRun(
        findings=sorted(findings),
        checked_files=len(records),
        pragmas=sorted(pragmas, key=lambda p: (p.path, p.line)),
    )


def lint_sources(
    items: Sequence[Tuple[str, str]],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Findings for a set of ``(path, source)`` modules linted together."""
    return run_sources(items, rules).findings


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source under a (possibly virtual) ``path``.

    ``path`` drives rule scoping only — it need not exist on disk, which
    is how the fixture tests exercise path-scoped rules
    (``lint_source(bad, "src/repro/sim/sample.py")``).  Project rules
    run over the single-module project.
    """
    return run_sources([(path, source)], rules).findings


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, excluding caches and fixtures."""
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for candidate in sorted(root.rglob("*.py")):
            parts = candidate.parts
            if any(part in _SKIPPED_DIRS for part in parts):
                continue
            if "fixtures" in parts and "lint" in parts:
                continue
            yield candidate


def run_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    jobs: int = 1,
) -> LintRun:
    """Lint every Python file under ``paths`` (files or directories).

    Paths in the findings are reported as given (relative stays
    relative), normalised to forward slashes so baselines are portable.
    """
    items: List[Tuple[str, str]] = []
    for file_path in iter_python_files(paths):
        normalised = "/".join(path_parts(str(file_path)))
        items.append((normalised, file_path.read_text(encoding="utf-8")))
    return run_sources(items, rules, jobs=jobs)


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    jobs: int = 1,
) -> List[Finding]:
    """Findings for every Python file under ``paths``."""
    return run_paths(paths, rules, jobs=jobs).findings
