"""File discovery, pragma handling, and the per-file lint driver.

The engine parses each file once, runs every registered rule whose
scope matches the path, and filters the findings through the
``# detlint:`` pragma comments:

``# detlint: disable=DET001,DET004``
    Suppress the named rules on the line the pragma appears on (the
    line a finding is *reported* on — for a multi-line statement that
    is the statement's first line).
``# detlint: disable``
    Suppress every rule on that line.
``# detlint: skip-file``
    Anywhere in the file: skip the file entirely.

A file that fails to parse yields a single ``DET000`` finding rather
than crashing the run, so one broken file cannot hide the rest.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .findings import Finding
from .registry import LintContext, Rule, all_rules, path_parts

__all__ = [
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "PRAGMA_PATTERN",
]

PRAGMA_PATTERN = re.compile(
    r"#\s*detlint\s*:\s*(?P<verb>disable|skip-file)"
    r"(?:\s*=\s*(?P<codes>[A-Z0-9,\s]+?))?\s*(?:#|$)"
)

#: Directory components never linted: bytecode caches, and the fixture
#: corpus under ``tests/lint/fixtures`` whose files are *deliberate*
#: violations for the linter's own test suite.
_SKIPPED_DIRS = ("__pycache__",)


def _pragmas(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressions: line → rule codes, or ``None`` for all."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for number, line in enumerate(lines, start=1):
        if "#" not in line or "detlint" not in line:
            continue
        match = PRAGMA_PATTERN.search(line)
        if match is None:
            continue
        if match.group("verb") == "skip-file":
            suppressions[0] = None  # sentinel: whole file
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[number] = None
        else:
            parsed = {code.strip() for code in codes.split(",") if code.strip()}
            existing = suppressions.get(number)
            if existing is None and number in suppressions:
                continue  # an unconditional disable already covers the line
            suppressions[number] = (existing or set()) | parsed
    return suppressions


def _suppressed(
    finding: Finding, suppressions: Dict[int, Optional[Set[str]]]
) -> bool:
    if 0 in suppressions:
        return True
    codes = suppressions.get(finding.line, ())
    return codes is None or finding.rule in codes


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source under a (possibly virtual) ``path``.

    ``path`` drives rule scoping only — it need not exist on disk, which
    is how the fixture tests exercise path-scoped rules
    (``lint_source(bad, "src/repro/sim/sample.py")``).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="DET000",
                message=f"file does not parse: {exc.msg}",
                snippet=(exc.text or "").strip(),
            )
        ]
    ctx = LintContext(path, source, tree)
    suppressions = _pragmas(ctx.lines)
    if 0 in suppressions:
        return []
    findings: List[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if not rule.applies_to(path):
            continue
        for finding in rule.check(ctx):
            if not _suppressed(finding, suppressions):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, excluding caches and fixtures."""
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for candidate in sorted(root.rglob("*.py")):
            parts = candidate.parts
            if any(part in _SKIPPED_DIRS for part in parts):
                continue
            if "fixtures" in parts and "lint" in parts:
                continue
            yield candidate


def lint_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths`` (files or directories).

    Paths in the findings are reported as given (relative stays
    relative), normalised to forward slashes so baselines are portable.
    """
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        normalised = "/".join(path_parts(str(file_path)))
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, normalised, rules))
    return sorted(findings)
