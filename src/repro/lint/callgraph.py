"""Whole-project call graph over the symbol table.

Edges connect qualified function names (``repro.sim.engine.run`` ->
``repro.sim.engine.session_seed``); calls that resolve to a class go to
its ``__init__`` when one exists.  Calls that resolve outside the
project (``time.time``, ``hashlib.sha256``, ``random.random``) are kept
separately as *external* names — DET012 classifies those as entropy
primitives and asks which sim-scope functions can transitively reach
one, and the seed-lineage analysis uses them to recognise sha256 helper
functions.

Module-level statements are attributed to the module's own name as a
pseudo-caller so that ``SHARED = random.Random(42)`` at import time
still participates in reachability.

Adjacency lists are sorted at build time, so every traversal —
including the shortest-chain reconstruction embedded in DET012
messages — is deterministic regardless of dict iteration order.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .symtab import ModuleInfo, SymbolTable

__all__ = ["CallGraph", "iter_scoped_calls"]


def iter_scoped_calls(
    module: ModuleInfo,
) -> Iterable[Tuple[ast.Call, Tuple[str, ...], Optional[str]]]:
    """Yield ``(call, owner_scope, class_name)`` for every call expression.

    ``owner_scope`` is the tuple of enclosing def names (empty for
    module level); ``class_name`` is the nearest enclosing class, for
    ``self.method(...)`` resolution.  Calls inside a nested function
    belong to the nested function, not its parent.
    """

    def walk_expr(
        expr: ast.AST, scope: Tuple[str, ...], class_name: Optional[str]
    ) -> Iterable[Tuple[ast.Call, Tuple[str, ...], Optional[str]]]:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                yield sub, scope, class_name

    def visit(
        node: ast.AST, scope: Tuple[str, ...], class_name: Optional[str]
    ) -> Iterable[Tuple[ast.Call, Tuple[str, ...], Optional[str]]]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Default-argument and decorator expressions evaluate in
            # the *enclosing* scope, at definition time.
            for default in list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]:
                yield from walk_expr(default, scope, class_name)
            for decorator in node.decorator_list:
                yield from walk_expr(decorator, scope, class_name)
            for stmt in node.body:
                yield from visit(stmt, scope + (node.name,), class_name)
            return
        if isinstance(node, ast.ClassDef):
            for decorator in node.decorator_list:
                yield from walk_expr(decorator, scope, class_name)
            for base in node.bases:
                yield from walk_expr(base, scope, class_name)
            # The class name joins the scope chain so method owners
            # match their symtab qualnames (``module.Class.method``).
            for stmt in node.body:
                yield from visit(stmt, scope + (node.name,), node.name)
            return
        if isinstance(node, ast.Call):
            yield node, scope, class_name
        for child in ast.iter_child_nodes(node):
            yield from visit(child, scope, class_name)

    for stmt in module.tree.body:
        yield from visit(stmt, (), None)


class CallGraph:
    """Project-internal call edges plus per-function external calls."""

    def __init__(self) -> None:
        #: caller qualname -> sorted tuple of project callee qualnames
        self.calls: Dict[str, Tuple[str, ...]] = {}
        #: caller qualname -> sorted tuple of external dotted names
        self.externals: Dict[str, Tuple[str, ...]] = {}

    @classmethod
    def build(cls, symtab: SymbolTable) -> "CallGraph":
        graph = cls()
        calls: Dict[str, Set[str]] = {}
        externals: Dict[str, Set[str]] = {}
        for name in sorted(symtab.modules):
            module = symtab.modules[name]
            for call, scope, class_name in iter_scoped_calls(module):
                owner = ".".join((module.name,) + scope) if scope else module.name
                resolved = symtab.resolve_call(module, call.func, class_name)
                if resolved is None:
                    continue
                if resolved in symtab.functions:
                    calls.setdefault(owner, set()).add(resolved)
                elif resolved in symtab.classes:
                    init = f"{resolved}.__init__"
                    if init in symtab.functions:
                        calls.setdefault(owner, set()).add(init)
                elif not resolved.startswith(
                    tuple(f"{m}." for m in symtab.modules) or ("",)
                ):
                    externals.setdefault(owner, set()).add(resolved)
        graph.calls = {
            owner: tuple(sorted(targets)) for owner, targets in calls.items()
        }
        graph.externals = {
            owner: tuple(sorted(names)) for owner, names in externals.items()
        }
        return graph

    def callers_of(self) -> Dict[str, Tuple[str, ...]]:
        """Reverse adjacency: callee qualname -> sorted caller qualnames."""
        reverse: Dict[str, Set[str]] = {}
        for owner in sorted(self.calls):
            for target in self.calls[owner]:
                reverse.setdefault(target, set()).add(owner)
        return {k: tuple(sorted(v)) for k, v in reverse.items()}

    def reach(
        self, start: str, targets: Set[str]
    ) -> Optional[List[str]]:
        """Deterministic shortest call chain from ``start`` into ``targets``.

        Returns the chain as a list of qualnames ``[start, ..., target]``
        or ``None`` when no target is reachable.  BFS over sorted
        adjacency lists ties shortest chains lexicographically.
        """
        if start in targets:
            return [start]
        seen = {start}
        frontier: List[List[str]] = [[start]]
        while frontier:
            next_frontier: List[List[str]] = []
            for chain in frontier:
                for callee in self.calls.get(chain[-1], ()):
                    if callee in seen:
                        continue
                    seen.add(callee)
                    extended = chain + [callee]
                    if callee in targets:
                        return extended
                    next_frontier.append(extended)
            frontier = next_frontier
        return None

    def transitive_closure_from(self, seeds: Set[str]) -> Set[str]:
        """All functions that can *reach into* ``seeds`` via call edges.

        Propagates along reversed edges: a caller of a member joins the
        closure.  The seeds themselves are included.
        """
        reverse = self.callers_of()
        closure = set(seeds)
        frontier = sorted(seeds)
        while frontier:
            next_frontier: List[str] = []
            for member in frontier:
                for caller in reverse.get(member, ()):
                    if caller not in closure:
                        closure.add(caller)
                        next_frontier.append(caller)
            frontier = sorted(next_frontier)
        return closure
