"""Human and JSON reporters for detlint runs."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, TextIO

from .findings import Finding
from .registry import all_rules

__all__ = ["render_human", "render_json", "render_rule_list"]


def render_human(
    stream: TextIO,
    new: Sequence[Finding],
    accepted: Sequence[Finding],
    stale: Sequence[Dict[str, str]],
    checked_files: int,
) -> None:
    """``file:line:col: CODE message`` lines plus a one-line summary."""
    for finding in new:
        stream.write(
            f"{finding.location()}: {finding.rule} {finding.message}\n"
        )
    for entry in stale:
        stream.write(
            f"{entry['path']}: stale baseline entry {entry['fingerprint']} "
            f"({entry['rule']}) no longer matches any finding\n"
        )
    summary = (
        f"detlint: {checked_files} files, {len(new)} new finding(s), "
        f"{len(accepted)} baselined, {len(stale)} stale baseline entr"
        f"{'y' if len(stale) == 1 else 'ies'}\n"
    )
    stream.write(summary)


def render_json(
    stream: TextIO,
    new: Sequence[Finding],
    accepted: Sequence[Finding],
    stale: Sequence[Dict[str, str]],
    checked_files: int,
) -> None:
    """A machine-readable record of the whole run."""
    payload = {
        "checked_files": checked_files,
        "new": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in accepted],
        "stale_baseline_entries": list(stale),
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def render_rule_list(stream: TextIO) -> None:
    """The rule catalogue (``--list-rules``)."""
    for rule in all_rules():
        stream.write(f"{rule.code}  {rule.name}\n")
        stream.write(f"    {rule.description}\n")


def count_by_rule(findings: Sequence[Finding]) -> List[str]:
    """``CODE xN`` fragments for summary lines."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return [f"{code} x{counts[code]}" for code in sorted(counts)]
