"""Human, JSON, and ``--stats`` reporters for detlint runs."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Sequence, TextIO

from .findings import Finding
from .registry import all_rules

if TYPE_CHECKING:  # pragma: no cover — type-only import
    from .engine import LintRun

__all__ = ["render_human", "render_json", "render_rule_list", "render_stats"]


def render_human(
    stream: TextIO,
    new: Sequence[Finding],
    accepted: Sequence[Finding],
    stale: Sequence[Dict[str, str]],
    checked_files: int,
) -> None:
    """``file:line:col: CODE message`` lines plus a one-line summary."""
    for finding in new:
        stream.write(
            f"{finding.location()}: {finding.rule} {finding.message}\n"
        )
    for entry in stale:
        stream.write(
            f"{entry['path']}: stale baseline entry {entry['fingerprint']} "
            f"({entry['rule']}) no longer matches any finding\n"
        )
    summary = (
        f"detlint: {checked_files} files, {len(new)} new finding(s), "
        f"{len(accepted)} baselined, {len(stale)} stale baseline entr"
        f"{'y' if len(stale) == 1 else 'ies'}\n"
    )
    stream.write(summary)


def render_json(
    stream: TextIO,
    new: Sequence[Finding],
    accepted: Sequence[Finding],
    stale: Sequence[Dict[str, str]],
    checked_files: int,
) -> None:
    """A machine-readable record of the whole run."""
    payload = {
        "checked_files": checked_files,
        "new": [finding.to_dict() for finding in new],
        "baselined": [finding.to_dict() for finding in accepted],
        "stale_baseline_entries": list(stale),
    }
    json.dump(payload, stream, indent=2, sort_keys=True)
    stream.write("\n")


def render_rule_list(stream: TextIO) -> None:
    """The rule catalogue (``--list-rules``)."""
    for rule in all_rules():
        stream.write(f"{rule.code}  {rule.name}\n")
        stream.write(f"    {rule.description}\n")


def render_stats(
    stream: TextIO, run: "LintRun", baseline_size: int
) -> bool:
    """The ``--stats`` subreport; returns True when any pragma is stale.

    Reports per-rule counts over the run's (post-suppression) findings,
    every pragma with its suppression hit count and ``file:line``
    location, and the committed baseline size.  A pragma that
    suppressed zero findings is *stale* — the violation it excused is
    gone (or the pragma never matched) and it should be deleted; the
    CLI turns stale pragmas into exit code 3 under ``--stats``.
    """
    stale = run.stale_pragmas()
    stream.write("detlint stats:\n")
    counts: Dict[str, int] = {}
    for finding in run.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    if counts:
        stream.write("  findings by rule:\n")
        for code in sorted(counts):
            stream.write(f"    {code}: {counts[code]}\n")
    else:
        stream.write("  findings by rule: none\n")
    stream.write(
        f"  pragmas: {len(run.pragmas)} total, {len(stale)} stale\n"
    )
    for pragma in run.pragmas:
        marker = "  [stale]" if pragma.hits == 0 else ""
        stream.write(
            f"    {pragma.path}:{pragma.line} {pragma.label()} "
            f"suppressed {pragma.hits} finding(s){marker}\n"
        )
    stream.write(
        f"  baseline: {baseline_size} "
        f"entr{'y' if baseline_size == 1 else 'ies'}\n"
    )
    return bool(stale)


def count_by_rule(findings: Sequence[Finding]) -> List[str]:
    """``CODE xN`` fragments for summary lines."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return [f"{code} x{counts[code]}" for code in sorted(counts)]
