"""The DET011–DET014 interprocedural rules over the project graph.

These rules consume the :class:`~repro.lint.project.Project` built once
per run — symbol table, call graph, and seed lineage — rather than a
single file's AST, which is what lets them trace a literal seed through
a default argument, follow a wall-clock read through an import alias
the syntactic DET002 cannot see, and resolve a class crossing a Pipe
to its (non-)frozen definition in another module.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import iter_scoped_calls
from .findings import Finding
from .lineage import AMBIENT, LITERAL, _last_assignment
from .registry import ProjectRule, path_parts, register
from .rules import AmbientEntropyRule, KwargsPayloadRule, SIM_SCOPE
from .symtab import ModuleInfo

__all__ = ["is_entropy_external"]


def is_entropy_external(name: str) -> bool:
    """Whether an external dotted call name is an ambient-entropy read.

    Mirrors DET002's catalogue (module RNG draws, wall-clock reads,
    ``os.urandom``) but operates on *resolved* names, so
    ``import time as clock; clock.time()`` is recognised.
    """
    parts = name.split(".")
    root, leaf = parts[0], parts[-1]
    if root == "random" and len(parts) >= 2:
        return parts[1] not in ("Random",)
    if root == "time":
        return leaf in AmbientEntropyRule.CLOCK_CALLS
    if name == "os.urandom":
        return True
    if root in ("secrets", "uuid") and len(parts) >= 2:
        return True
    if leaf in AmbientEntropyRule.NOW_CALLS and any(
        part in AmbientEntropyRule.DATETIME_ROOTS for part in parts[:-1]
    ):
        return True
    return False


@register
class SeedLineageRule(ProjectRule):
    """DET011: literal or ambient Random seeds reachable from sim scope."""

    code = "DET011"
    name = "literal-seed-lineage"
    description = (
        "A random.Random(...) construction whose seed lineage is a "
        "literal constant (including via default arguments, local "
        "flow, and the `rng or Random(0)` fallback idiom) or ambient "
        "(no seed at all), in a module that participates in simulation "
        "determinism — every run and call site shares one stream, so "
        "sweep points stop being independent and replays stop being "
        "byte-identical.  Derive seeds from the sha256 helpers "
        "(session_seed / workload_seed / service_seed lineage) instead."
    )

    def applies_to(self, path: str) -> bool:
        parts = path_parts(path)
        # Literal seeds at experiment/test roots are the *seed domain*
        # itself (a sweep over seeds 0..N is meant to be literal); the
        # smell is a literal baked into library code.
        return "tests" not in parts and "benchmarks" not in parts

    def check_project(self, project) -> Iterator[Finding]:
        flagged = [
            site
            for site in project.lineage.sites
            if site.classification in (LITERAL, AMBIENT)
            and self.applies_to(site.path)
            and project.sim_reaching(site.module)
        ]
        value_counts: Dict[object, int] = {}
        for site in flagged:
            if site.seed_value is not None:
                key = repr(site.seed_value)
                value_counts[key] = value_counts.get(key, 0) + 1
        for site in sorted(
            flagged, key=lambda s: (s.path, s.node.lineno, s.node.col_offset)
        ):
            ctx = project.contexts[site.path]
            if site.classification == AMBIENT:
                message = (
                    "random.Random() without a seed draws OS entropy in "
                    "a sim-reaching module; derive the seed from a "
                    "sha256 helper (session_seed-style)"
                )
            elif site.seed_value is not None:
                message = (
                    f"random.Random({site.seed_value!r}) has literal "
                    "seed lineage in a sim-reaching module; derive it "
                    "from a sha256 helper (session_seed-style)"
                )
                reuse = value_counts.get(repr(site.seed_value), 0)
                if reuse >= 2:
                    message += (
                        f" — seed {site.seed_value!r} is shared by "
                        f"{reuse} construction sites"
                    )
            else:
                message = (
                    "random.Random seed traces to a literal constant in "
                    "a sim-reaching module; derive it from a sha256 "
                    "helper (session_seed-style)"
                )
            yield ctx.finding(self, site.node, message)


@register
class TransitiveEntropyRule(ProjectRule):
    """DET012: sim-scope functions transitively reaching ambient entropy."""

    code = "DET012"
    name = "transitive-ambient-entropy"
    description = (
        "A function in sim scope (sim/ core/ algorithms/ experiments/) "
        "with no direct entropy read of its own — that is DET002's job "
        "— but a project call chain that reaches a wall-clock or "
        "global-RNG primitive, possibly through an import alias or a "
        "helper in a module DET002's path scope never sees.  The run "
        "result depends on when/where it executes; thread a seeded "
        "random.Random or the simulation clock through the chain."
    )

    def applies_to(self, path: str) -> bool:
        return self._in_dirs(path, SIM_SCOPE)

    def check_project(self, project) -> Iterator[Finding]:
        graph = project.callgraph
        sinks: Set[str] = {
            owner
            for owner, names in graph.externals.items()
            if owner in project.symtab.functions
            and any(is_entropy_external(n) for n in names)
        }
        if not sinks:
            return
        for module_name in project.modules_sorted():
            module = project.symtab.modules[module_name]
            if not self.applies_to(module.path):
                continue
            ctx = project.contexts[module.path]
            functions = sorted(
                (
                    info
                    for info in project.symtab.functions.values()
                    if info.module == module_name
                ),
                key=lambda info: (info.node.lineno, info.qualname),
            )
            for info in functions:
                if info.qualname in sinks:
                    continue  # direct reads are DET002's finding
                chain = graph.reach(info.qualname, sinks)
                if chain is None or len(chain) < 2:
                    continue
                primitive = sorted(
                    n
                    for n in graph.externals.get(chain[-1], ())
                    if is_entropy_external(n)
                )[0]
                names = [
                    project.symtab.functions[q].name for q in chain
                ]
                yield ctx.finding(
                    self,
                    info.node,
                    f"{info.name}() reaches {primitive}() via "
                    f"{' -> '.join(names)}; thread a seeded "
                    "random.Random / simulation clock through the chain",
                )


@register
class ForkBoundaryPayloadRule(ProjectRule):
    """DET013: unstable or unpicklable payloads crossing fork boundaries."""

    code = "DET013"
    name = "fork-boundary-payload"
    description = (
        "An object sent across a fork/Pipe/Queue boundary "
        "(.send()/.put()) that is not in the picklable-frozen "
        "allowlist: lambdas and generators fail to pickle at all, sets "
        "pickle in iteration order (diverging payload bytes for equal "
        "payloads), locals() ships unordered state, and a non-frozen "
        "project class can be mutated after the snapshot the worker "
        "sees.  Ship tuples, sorted collections, or frozen dataclasses."
    )

    SEND_METHODS = frozenset({"send", "put", "put_nowait"})
    #: Class names accepted across the boundary even though the
    #: analyser cannot prove them frozen (extend as payload types are
    #: audited); frozen dataclasses and NamedTuple/tuple/Enum
    #: subclasses are allowlisted structurally.
    PICKLABLE_FROZEN = frozenset({"Finding"})

    def applies_to(self, path: str) -> bool:
        return "tests" not in path_parts(path)

    def check_project(self, project) -> Iterator[Finding]:
        for module_name in project.modules_sorted():
            module = project.symtab.modules[module_name]
            if not self.applies_to(module.path):
                continue
            if not KwargsPayloadRule._imports_multiprocessing(module.tree):
                continue
            ctx = project.contexts[module.path]
            for call, scope, class_name in iter_scoped_calls(module):
                if not (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in self.SEND_METHODS
                ):
                    continue
                for argument in call.args:
                    offense = self._first_offense(
                        project, module, argument, class_name
                    )
                    if offense is not None:
                        yield ctx.finding(
                            self,
                            call,
                            f".{call.func.attr}() ships {offense} across "
                            "a fork boundary; ship a tuple, a sorted "
                            "collection, or a frozen dataclass",
                        )
                        break

    def _first_offense(
        self,
        project,
        module: ModuleInfo,
        payload: ast.AST,
        class_name: Optional[str],
    ) -> Optional[str]:
        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                return "a lambda (unpicklable)"
            if isinstance(node, ast.GeneratorExp):
                return "a generator (unpicklable)"
            if isinstance(node, (ast.Set, ast.SetComp)):
                return "a set (pickles in iteration order)"
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("set", "frozenset")
                ):
                    return f"a {node.func.id}() (pickles in iteration order)"
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "locals"
                ):
                    return "locals() (unordered caller state)"
                resolved = project.symtab.resolve_call(
                    module, node.func, class_name
                )
                if resolved is not None and resolved in project.symtab.classes:
                    info = project.symtab.classes[resolved]
                    if (
                        not info.frozen
                        and info.name not in self.PICKLABLE_FROZEN
                    ):
                        return (
                            f"{info.name} (not a frozen dataclass / "
                            "NamedTuple and not allowlisted)"
                        )
        return None


@register
class JsonStabilityRule(ProjectRule):
    """DET014: JSONL emitters whose field serialization is not byte-stable."""

    code = "DET014"
    name = "unstable-json-serialization"
    description = (
        "A json.dumps/json.dump call whose payload is evidently a dict "
        "(literal, comprehension, dict() call, or a local assigned one "
        "of those) without sort_keys=True — insertion order leaks into "
        "the emitted bytes, so logically equal records serialize "
        "differently — or str() applied to an evident float in an "
        "emitter path, where an explicit format spec is required for "
        "pinned field bytes."
    )

    def applies_to(self, path: str) -> bool:
        return "tests" not in path_parts(path)

    def check_project(self, project) -> Iterator[Finding]:
        for module_name in project.modules_sorted():
            module = project.symtab.modules[module_name]
            if not self.applies_to(module.path):
                continue
            ctx = project.contexts[module.path]
            for call, scope, class_name in iter_scoped_calls(module):
                scope_node = self._scope_node(project, module, scope)
                resolved = project.symtab.resolve_call(
                    module, call.func, class_name
                )
                if resolved in ("json.dumps", "json.dump") and call.args:
                    if self._has_sorted_keys(call):
                        continue
                    if self._evident_dict(module, call.args[0], scope_node):
                        verb = resolved.split(".")[1]
                        yield ctx.finding(
                            self,
                            call,
                            f"json.{verb} of a dict without "
                            "sort_keys=True serializes in insertion "
                            "order; pass sort_keys=True for byte-stable "
                            "output",
                        )
                elif (
                    isinstance(call.func, ast.Name)
                    and call.func.id == "str"
                    and len(call.args) == 1
                    and self._evident_float(
                        module, call.args[0], scope_node
                    )
                ):
                    yield ctx.finding(
                        self,
                        call,
                        "str() on a float leaves field bytes to repr "
                        "heuristics; use an explicit format spec "
                        "(e.g. format(x, '.17g')) in emitter paths",
                    )

    @staticmethod
    def _scope_node(
        project, module: ModuleInfo, scope: Tuple[str, ...]
    ) -> ast.AST:
        if not scope:
            return module.tree
        info = project.symtab.functions.get(
            ".".join((module.name,) + scope)
        )
        return info.node if info is not None else module.tree

    @staticmethod
    def _has_sorted_keys(call: ast.Call) -> bool:
        return any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in call.keywords
        )

    def _evident_dict(
        self, module: ModuleInfo, payload: ast.AST, scope_node: ast.AST
    ) -> bool:
        if isinstance(payload, (ast.Dict, ast.DictComp)):
            return True
        if (
            isinstance(payload, ast.Call)
            and isinstance(payload.func, ast.Name)
            and payload.func.id == "dict"
        ):
            return True
        if isinstance(payload, ast.Name):
            value = _last_assignment(scope_node, payload)
            if value is None and scope_node is not module.tree:
                value = _last_assignment(module.tree, payload)
            if value is not None and value is not payload:
                return self._evident_dict_shallow(value)
        return False

    @staticmethod
    def _evident_dict_shallow(value: ast.AST) -> bool:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "dict"
        )

    def _evident_float(
        self, module: ModuleInfo, argument: ast.AST, scope_node: ast.AST
    ) -> bool:
        if self._evident_float_shallow(argument):
            return True
        if isinstance(argument, ast.Name):
            value = _last_assignment(scope_node, argument)
            if value is None and scope_node is not module.tree:
                value = _last_assignment(module.tree, argument)
            if value is not None:
                return self._evident_float_shallow(value)
        return False

    @staticmethod
    def _evident_float_shallow(value: ast.AST) -> bool:
        if isinstance(value, ast.Constant) and isinstance(
            value.value, float
        ):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "float"
        )
