"""The DET001–DET010 determinism rules, tuned to this codebase.

Every rule encodes one invariant the reproduction's determinism contract
rests on (byte-identical sweeps at any ``--jobs N`` and either coverage
backend).  The rules are syntactic: they reason about evident producers
(``set(...)`` calls, ``Topology.neighbors``-style set-returning methods)
and evident sinks (list building, first-match ``break``, RNG draws),
never about inferred types — a deliberate trade that keeps the pass
stdlib-only, fast, and free of import-time side effects.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from .findings import Finding
from .registry import LintContext, Rule, path_parts, register

__all__ = ["is_unordered_expr"]

#: Packages whose files run inside a broadcast simulation — the scope of
#: the ambient-entropy and iteration-order rules.
SIM_SCOPE = ("sim", "core", "algorithms", "experiments")

#: Methods known (in this codebase) to return ``set``/``frozenset``
#: values: ``Topology.neighbors``, k-hop queries, and the stdlib set
#: algebra.  ``dict.keys()`` rides along: its order is the dict's
#: insertion order, which is itself unordered-derived in the flagged
#: patterns.
SET_RETURNING_METHODS = frozenset(
    {
        "neighbors",
        "closed_neighbors",
        "k_hop_neighbors",
        "keys",
        "union",
        "intersection",
        "difference",
        "symmetric_difference",
    }
)

#: Consumers whose result does not depend on the iteration order of
#: their argument — interposing one of these launders an unordered
#: producer.  (``sum`` is only order-safe for ints; float accumulation
#: in metrics paths is DET007's concern.)
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {
        "sorted",
        "min",
        "max",
        "sum",
        "len",
        "set",
        "frozenset",
        "any",
        "all",
        "fsum",
        "mask_of",
    }
)


def is_unordered_expr(node: ast.AST) -> bool:
    """Whether ``node`` syntactically evaluates to an unordered iterable.

    Recognises set literals and comprehensions, ``set()``/``frozenset()``
    constructor calls, calls of known set-returning methods
    (:data:`SET_RETURNING_METHODS`), and set-algebra binary operations
    whose either operand is itself unordered.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in SET_RETURNING_METHODS:
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_unordered_expr(node.left) or is_unordered_expr(node.right)
    return False


def _consumer_name(node: ast.AST) -> Optional[str]:
    """The called name when ``node`` is ``name(...)`` or ``obj.name(...)``."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
    return None


@register
class UnorderedIterationRule(Rule):
    """DET001: unordered iteration flowing into an order-sensitive sink."""

    code = "DET001"
    name = "unordered-iteration-order-sink"
    description = (
        "Iteration over a bare set/frozenset/dict.keys() (or a "
        "set-returning method such as Topology.neighbors) feeds an "
        "order-sensitive sink — list building, first-match break, a "
        "value-dependent return/yield, an RNG draw, or event emission — "
        "without an interposed sorted()/NodeIndex ordering."
    )

    #: Method calls inside a loop body that make iteration order observable.
    SINK_METHODS = {
        "append": "list building",
        "extend": "list building",
        "insert": "list building",
        "appendleft": "deque building",
        "publish": "event emission",
        "emit": "event emission",
        "choice": "an RNG draw",
        "choices": "an RNG draw",
        "shuffle": "an RNG draw",
        "sample": "an RNG draw",
    }

    def applies_to(self, path: str) -> bool:
        return "tests" not in path_parts(path)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and is_unordered_expr(node.iter):
                sink = self._first_sink(node.body + node.orelse)
                if sink is not None:
                    yield ctx.finding(
                        self,
                        node,
                        f"loop over an unordered iterable feeds {sink}; "
                        "interpose sorted() (or iterate a NodeIndex order)",
                    )
            elif isinstance(node, ast.ListComp) and is_unordered_expr(
                node.generators[0].iter
            ):
                if not self._consumed_order_insensitively(ctx, node):
                    yield ctx.finding(
                        self,
                        node,
                        "list built from an unordered iterable inherits an "
                        "arbitrary element order; wrap the source in sorted()",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: LintContext, node: ast.Call) -> Iterator[Finding]:
        name = _consumer_name(node)
        if name in ("list", "tuple", "enumerate") and node.args:
            argument = node.args[0]
            if is_unordered_expr(argument) or (
                isinstance(argument, ast.GeneratorExp)
                and is_unordered_expr(argument.generators[0].iter)
            ):
                if not self._consumed_order_insensitively(ctx, node):
                    yield ctx.finding(
                        self,
                        node,
                        f"{name}() materialises an unordered iterable in "
                        "arbitrary order; interpose sorted()",
                    )
        elif (
            name == "join"
            and isinstance(node.func, ast.Attribute)
            and node.args
            and (
                is_unordered_expr(node.args[0])
                or (
                    isinstance(node.args[0], ast.GeneratorExp)
                    and is_unordered_expr(node.args[0].generators[0].iter)
                )
            )
        ):
            yield ctx.finding(
                self,
                node,
                "str.join over an unordered iterable renders in arbitrary "
                "order; interpose sorted()",
            )

    def _consumed_order_insensitively(
        self, ctx: LintContext, node: ast.AST
    ) -> bool:
        parent = ctx.parent(node)
        return (
            parent is not None
            and _consumer_name(parent) in ORDER_INSENSITIVE_CONSUMERS
        )

    def _first_sink(self, body: List[ast.stmt]) -> Optional[str]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Break):
                    return "a first-match break"
                if isinstance(node, ast.Return) and not self._constant_result(
                    node.value
                ):
                    return "a value-dependent return"
                if isinstance(
                    node, (ast.Yield, ast.YieldFrom)
                ) and not self._constant_result(getattr(node, "value", None)):
                    return "a yield"
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    label = self.SINK_METHODS.get(node.func.attr)
                    if label is not None:
                        return label
        return None

    @staticmethod
    def _constant_result(value: Optional[ast.AST]) -> bool:
        """``return``/``yield`` of a constant is order-insensitive."""
        return value is None or isinstance(value, ast.Constant)


@register
class AmbientEntropyRule(Rule):
    """DET002: ambient RNG / wall-clock reads in simulation paths."""

    code = "DET002"
    name = "ambient-entropy"
    description = (
        "Module-level random.*, time.* clock reads, datetime.now, or "
        "os.urandom inside sim/, core/, algorithms/, or experiments/ — "
        "simulation paths must draw from a threaded random.Random "
        "instance so runs replay byte-identically."
    )

    CLOCK_CALLS = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
        }
    )
    NOW_CALLS = frozenset({"now", "utcnow", "today"})
    DATETIME_ROOTS = frozenset({"datetime", "date"})

    def applies_to(self, path: str) -> bool:
        return self._in_dirs(path, SIM_SCOPE)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                yield from self._check_attribute_call(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(ctx, node)

    def _check_attribute_call(
        self, ctx: LintContext, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        assert isinstance(func, ast.Attribute)
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "random" and func.attr != "Random":
                yield ctx.finding(
                    self,
                    node,
                    f"random.{func.attr}() draws from the shared module "
                    "RNG; thread a random.Random instance instead",
                )
                return
            if base.id == "time" and func.attr in self.CLOCK_CALLS:
                yield ctx.finding(
                    self,
                    node,
                    f"time.{func.attr}() reads the wall clock inside a "
                    "simulation path; results must not depend on it",
                )
                return
            if base.id == "os" and func.attr == "urandom":
                yield ctx.finding(
                    self,
                    node,
                    "os.urandom() is OS entropy; thread a seeded "
                    "random.Random instead",
                )
                return
        if func.attr in self.NOW_CALLS and self._rooted_in_datetime(base):
            yield ctx.finding(
                self,
                node,
                f"{func.attr}() reads the wall clock inside a simulation "
                "path; results must not depend on it",
            )

    def _rooted_in_datetime(self, base: ast.AST) -> bool:
        if isinstance(base, ast.Name):
            return base.id in self.DATETIME_ROOTS
        if isinstance(base, ast.Attribute):
            return base.attr in self.DATETIME_ROOTS
        return False

    def _check_import(
        self, ctx: LintContext, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if node.module == "random":
            bad = [a.name for a in node.names if a.name != "Random"]
            if bad:
                yield ctx.finding(
                    self,
                    node,
                    f"importing {', '.join(bad)} from random binds the "
                    "shared module RNG; import Random and thread an "
                    "instance",
                )
        elif node.module == "time":
            bad = [a.name for a in node.names if a.name in self.CLOCK_CALLS]
            if bad:
                yield ctx.finding(
                    self,
                    node,
                    f"importing {', '.join(bad)} from time pulls wall-clock "
                    "reads into a simulation path",
                )


@register
class CacheMutationRule(Rule):
    """DET003: cache attributes mutated outside the owning object."""

    code = "DET003"
    name = "external-cache-mutation"
    description = (
        "Mutation of a Topology/View cache attribute (_query_cache, "
        "_cache_epoch, _epoch, _derived_cache) from outside the owning "
        "instance — caches are only coherent when every structural "
        "change flows through the epoch-bumping mutators."
    )

    CACHE_ATTRS = frozenset(
        {"_query_cache", "_cache_epoch", "_epoch", "_derived_cache"}
    )
    MUTATORS = frozenset(
        {"clear", "update", "pop", "popitem", "setdefault", "add", "discard"}
    )

    def applies_to(self, path: str) -> bool:
        return "tests" not in path_parts(path)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attribute = self._foreign_cache_attribute(target)
                    if attribute is not None:
                        yield ctx.finding(
                            self,
                            node,
                            f"write to {attribute} outside the owning "
                            "instance bypasses the epoch guard; mutate "
                            "through the owner's API",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.MUTATORS
            ):
                attribute = self._foreign_cache_attribute(node.func.value)
                if attribute is not None:
                    yield ctx.finding(
                        self,
                        node,
                        f"{attribute}.{node.func.attr}() outside the owning "
                        "instance bypasses the epoch guard",
                    )

    def _foreign_cache_attribute(self, node: ast.AST) -> Optional[str]:
        """``obj._cache``-style access where ``obj`` is not ``self``."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in self.CACHE_ATTRS:
            base = node.value
            if not (isinstance(base, ast.Name) and base.id in ("self", "cls")):
                return node.attr
        return None


@register
class MemoKeyBackendRule(Rule):
    """DET004: coverage memo keys shared across backends must say which."""

    code = "DET004"
    name = "memo-key-backend-qualifier"
    description = (
        "A _memo() key tag used at more than one call site in "
        "core/coverage.py must carry the backend qualifier ('bitset' / "
        "'sets' / 'numpy' literal or the backend variable) in its key "
        "tuple — otherwise flipping REPRO_COVERAGE_BACKEND mid-view "
        "serves one backend's cached value to the other."
    )

    QUALIFIERS = frozenset({"bitset", "sets", "numpy"})

    def applies_to(self, path: str) -> bool:
        parts = path_parts(path)
        return parts[-1:] == ("coverage.py",) and "tests" not in parts

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        sites: List[Tuple[str, ast.Call, ast.Tuple]] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "_memo"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Tuple)
            ):
                key = node.args[1]
                tag = self._leading_tag(key)
                if tag is not None:
                    sites.append((tag, node, key))
        counts: dict = {}
        for tag, _node, _key in sites:
            counts[tag] = counts.get(tag, 0) + 1
        for tag, node, key in sites:
            if counts[tag] >= 2 and not self._qualified(key):
                yield ctx.finding(
                    self,
                    node,
                    f"memo key tag {tag!r} is used at {counts[tag]} call "
                    "sites but this key omits the backend qualifier; add "
                    "'bitset'/'sets'/'numpy' (or the backend variable) to "
                    "the tuple",
                )

    @staticmethod
    def _leading_tag(key: ast.Tuple) -> Optional[str]:
        if key.elts and isinstance(key.elts[0], ast.Constant):
            value = key.elts[0].value
            if isinstance(value, str):
                return value
        return None

    def _qualified(self, key: ast.Tuple) -> bool:
        for element in key.elts:
            if (
                isinstance(element, ast.Constant)
                and element.value in self.QUALIFIERS
            ):
                return True
            if isinstance(element, ast.Name) and element.id == "backend":
                return True
        return False


@register
class FrozenEventRule(Rule):
    """DET005: event dataclasses must be frozen."""

    code = "DET005"
    name = "non-frozen-event-dataclass"
    description = (
        "A dataclass in an events module must declare frozen=True — "
        "events are published to arbitrary subscribers, and a mutable "
        "event lets an observer rewrite history other consumers (and "
        "the JSONL round-trip) already saw."
    )

    def applies_to(self, path: str) -> bool:
        return path_parts(path)[-1:] == ("events.py",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if self._is_bare_dataclass(decorator):
                    yield ctx.finding(
                        self,
                        node,
                        f"event dataclass {node.name} is not frozen; "
                        "declare @dataclass(frozen=True)",
                    )
                elif self._is_unfrozen_dataclass_call(decorator):
                    yield ctx.finding(
                        self,
                        node,
                        f"event dataclass {node.name} must set frozen=True",
                    )

    @staticmethod
    def _dataclass_name(node: ast.AST) -> bool:
        return (isinstance(node, ast.Name) and node.id == "dataclass") or (
            isinstance(node, ast.Attribute) and node.attr == "dataclass"
        )

    def _is_bare_dataclass(self, decorator: ast.AST) -> bool:
        return self._dataclass_name(decorator)

    def _is_unfrozen_dataclass_call(self, decorator: ast.AST) -> bool:
        if not (
            isinstance(decorator, ast.Call)
            and self._dataclass_name(decorator.func)
        ):
            return False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen":
                return not (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
        return True


@register
class KwargsPayloadRule(Rule):
    """DET006: **kwargs dicts shipped into multiprocessing payloads."""

    code = "DET006"
    name = "kwargs-in-worker-payload"
    description = (
        "A captured **kwargs dict (or locals()) passed into a pool "
        "dispatch call — the dict's iteration order is the caller's "
        "keyword order, so two call sites produce different payload "
        "bytes for the same logical work item; pass an explicit, "
        "field-ordered tuple or dataclass instead."
    )

    DISPATCH = frozenset(
        {
            "submit",
            "apply_async",
            "map",
            "map_async",
            "imap",
            "imap_unordered",
            "starmap",
            "starmap_async",
        }
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not self._imports_multiprocessing(ctx.tree):
            return
        for function in ast.walk(ctx.tree):
            if not isinstance(
                function, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            kwarg = function.args.kwarg
            kwarg_name = kwarg.arg if kwarg is not None else None
            for node in ast.walk(function):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in self.DISPATCH
                ):
                    continue
                if kwarg_name is not None and self._mentions_name(
                    node, kwarg_name
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"**{kwarg_name} captured into a "
                        f".{node.func.attr}() payload relies on caller "
                        "keyword order; ship an explicit tuple/dataclass",
                    )
                elif self._passes_locals(node):
                    yield ctx.finding(
                        self,
                        node,
                        f"locals() shipped into .{node.func.attr}() is "
                        "unordered state; ship an explicit tuple/dataclass",
                    )

    @staticmethod
    def _imports_multiprocessing(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                if any(
                    alias.name.split(".")[0]
                    in ("multiprocessing", "concurrent")
                    for alias in node.names
                ):
                    return True
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in ("multiprocessing", "concurrent"):
                    return True
        return False

    @staticmethod
    def _mentions_name(call: ast.Call, name: str) -> bool:
        for argument in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(argument):
                if isinstance(node, ast.Name) and node.id == name:
                    return True
        return False

    @staticmethod
    def _passes_locals(call: ast.Call) -> bool:
        for argument in list(call.args) + [kw.value for kw in call.keywords]:
            for node in ast.walk(argument):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "locals"
                ):
                    return True
        return False


@register
class FloatAccumulationRule(Rule):
    """DET007: float sums over unordered iterables in metrics paths."""

    code = "DET007"
    name = "unordered-float-accumulation"
    description = (
        "sum() over an unordered iterable in metrics/analysis code — "
        "float addition is not associative, so the total depends on "
        "set iteration order; sort the operands or use math.fsum "
        "(which is correctly rounded and therefore order-independent)."
    )

    def applies_to(self, path: str) -> bool:
        return self._in_dirs(path, ("metrics", "analysis"))

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                continue
            argument = node.args[0]
            unordered = is_unordered_expr(argument) or (
                isinstance(argument, (ast.GeneratorExp, ast.ListComp))
                and is_unordered_expr(argument.generators[0].iter)
            )
            if unordered:
                yield ctx.finding(
                    self,
                    node,
                    "sum() over an unordered iterable is order-dependent "
                    "for floats; sort the operands or use math.fsum",
                )


@register
class ExceptionSwallowRule(Rule):
    """DET008: silently swallowed exceptions in engine/scheduler paths."""

    code = "DET008"
    name = "swallowed-exception"
    description = (
        "except Exception (or a bare except) whose body only passes, "
        "inside sim/ or core/ — a swallowed error in the engine or "
        "scheduler silently desynchronises a run from its replay; "
        "handle the specific exception or let it propagate."
    )

    BROAD = frozenset({"Exception", "BaseException"})

    def applies_to(self, path: str) -> bool:
        return self._in_dirs(path, ("sim", "core"))

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._swallows(node.body):
                yield ctx.finding(
                    self,
                    node,
                    "broad except silently swallows errors in a "
                    "simulation path; narrow the exception or re-raise",
                )

    def _is_broad(self, handler_type: Optional[ast.AST]) -> bool:
        if handler_type is None:
            return True
        if isinstance(handler_type, ast.Name):
            return handler_type.id in self.BROAD
        if isinstance(handler_type, ast.Tuple):
            return any(self._is_broad(element) for element in handler_type.elts)
        return False

    @staticmethod
    def _swallows(body: Iterable[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # a docstring or Ellipsis is still a swallow
            return False
        return True


@register
class DeltaLayerIntegrityRule(Rule):
    """DET009: the delta layer's bookkeeping poked from outside Topology."""

    code = "DET009"
    name = "delta-layer-integrity"
    description = (
        "Dirty-scoped invalidation (Topology.apply_delta) is only sound "
        "when version stamps, node stamps, and cache entries change "
        "exclusively through Topology's own API: flags writes or "
        "mutator calls on _version/_all_dirty_version/_node_stamps of a "
        "foreign instance, del statements on any foreign cache "
        "attribute (which DET003's assignment checks miss), and calls "
        "to the private epoch/cache internals (_bump_epoch, _cached, "
        "_apply_delta_fast, _apply_delta_slow) on a foreign receiver."
    )

    STAMP_ATTRS = frozenset({"_version", "_all_dirty_version", "_node_stamps"})
    #: DET003's attrs plus the stamp attrs — the full surface a ``del``
    #: statement must not reach into from outside the owner.
    DELETABLE_ATTRS = CacheMutationRule.CACHE_ATTRS | STAMP_ATTRS
    PRIVATE_API = frozenset(
        {"_bump_epoch", "_cached", "_apply_delta_fast", "_apply_delta_slow"}
    )
    MUTATORS = CacheMutationRule.MUTATORS

    def applies_to(self, path: str) -> bool:
        parts = path_parts(path)
        # topology.py owns the invariant; everywhere else must go
        # through apply_delta / the public mutators.
        return "tests" not in parts and parts[-1:] != ("topology.py",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attribute = self._foreign(target, self.STAMP_ATTRS)
                    if attribute is not None:
                        yield ctx.finding(
                            self,
                            node,
                            f"write to {attribute} outside Topology "
                            "desynchronises dirty tracking; apply "
                            "structural changes through apply_delta or "
                            "the public mutators",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attribute = self._foreign(target, self.DELETABLE_ATTRS)
                    if attribute is not None:
                        yield ctx.finding(
                            self,
                            node,
                            f"del on {attribute} outside the owning "
                            "instance evicts behind the dirty tracker's "
                            "back; use the owner's API",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in self.PRIVATE_API and self._foreign_base(
                    node.func.value
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"call to the private {node.func.attr}() on a "
                        "foreign instance bypasses delta bookkeeping; "
                        "use apply_delta or the public query API",
                    )
                elif node.func.attr in self.MUTATORS:
                    attribute = self._foreign(
                        node.func.value, self.STAMP_ATTRS
                    )
                    if attribute is not None:
                        yield ctx.finding(
                            self,
                            node,
                            f"{attribute}.{node.func.attr}() outside "
                            "Topology desynchronises dirty tracking",
                        )

    def _foreign(
        self, node: ast.AST, attrs: "frozenset[str]"
    ) -> Optional[str]:
        """``obj._attr``-style access (through any subscripts) where
        ``obj`` is not ``self``/``cls`` and ``_attr`` is in ``attrs``."""
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in attrs:
            if self._foreign_base(node.value):
                return node.attr
        return None

    @staticmethod
    def _foreign_base(base: ast.AST) -> bool:
        return not (isinstance(base, ast.Name) and base.id in ("self", "cls"))


@register
class ShardStateIntegrityRule(Rule):
    """DET010: shard-worker state poked from outside the shard driver."""

    code = "DET010"
    name = "shard-state-integrity"
    description = (
        "The sharded mobility driver's determinism contract (merged "
        "forward sets byte-identical to the serial incremental path at "
        "any worker count) holds only while every shard's partial "
        "replica equals the induced global graph on its universe — "
        "advanced exclusively through the driver's own step protocol.  "
        "Flags writes, del statements, or mutator calls on the "
        "_replica/_shard_metrics worker state and the "
        "_subgraph/_global_nodes/_local_of partial-replica state "
        "(including the local<->global id mapping) of a foreign "
        "instance, and calls to the private worker internals "
        "(_sync_replica, _redecide, _rehome, _install) on a foreign "
        "receiver; route work through run_sharded_mobility_sweep / "
        "run_sharded_trace instead."
    )

    STATE_ATTRS = frozenset(
        {"_replica", "_shard_metrics", "_subgraph", "_global_nodes",
         "_local_of"}
    )
    PRIVATE_API = frozenset(
        {"_sync_replica", "_redecide", "_rehome", "_install"}
    )
    #: The dict/set mutators plus the topology mutators: calling
    #: e.g. ``sub._subgraph.add_edge(...)`` from outside desynchronises
    #: the replica from the induced global graph exactly like
    #: reassigning it.
    MUTATORS = CacheMutationRule.MUTATORS | frozenset(
        {"add_edge", "remove_edge", "add_node", "remove_node",
         "apply_delta"}
    )

    def applies_to(self, path: str) -> bool:
        parts = path_parts(path)
        # sharded.py owns the invariant (ShardSubgraph in sharding.py
        # mutates only through self, so it stays in scope); everywhere
        # else must go through the public sweep entry points.
        return "tests" not in parts and parts[-1:] != ("sharded.py",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attribute = self._foreign(target, self.STATE_ATTRS)
                    if attribute is not None:
                        yield ctx.finding(
                            self,
                            node,
                            f"write to {attribute} outside the shard "
                            "driver desynchronises the worker replica; "
                            "route work through the sharded sweep API",
                        )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attribute = self._foreign(target, self.STATE_ATTRS)
                    if attribute is not None:
                        yield ctx.finding(
                            self,
                            node,
                            f"del on {attribute} outside the shard driver "
                            "drops worker state behind the pool's back",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in self.PRIVATE_API and self._foreign_base(
                    node.func.value
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"call to the private {node.func.attr}() on a "
                        "foreign worker bypasses the step protocol; use "
                        "the sharded sweep API",
                    )
                elif node.func.attr in self.MUTATORS:
                    attribute = self._foreign(
                        node.func.value, self.STATE_ATTRS
                    )
                    if attribute is not None:
                        yield ctx.finding(
                            self,
                            node,
                            f"{attribute}.{node.func.attr}() outside the "
                            "shard driver desynchronises the worker "
                            "replica",
                        )

    _foreign = DeltaLayerIntegrityRule._foreign
    _foreign_base = staticmethod(DeltaLayerIntegrityRule._foreign_base)
