"""Rule base class, per-file lint context, and the rule registry.

A rule is a small object with a ``code`` (``DET001`` …), a path scope
(:meth:`Rule.applies_to`), and a :meth:`Rule.check` that walks a parsed
module and yields :class:`~repro.lint.findings.Finding` records.  Rules
self-register at import time through :func:`register`; the engine runs
every registered rule whose scope matches the file under analysis.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import Finding

__all__ = [
    "LintContext",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "per_file_rules",
    "project_rules",
    "get_rule",
    "path_parts",
]


def path_parts(path: str) -> Tuple[str, ...]:
    """Normalised path components (forward- and back-slash tolerant)."""
    return tuple(part for part in path.replace("\\", "/").split("/") if part)


class LintContext:
    """Everything a rule needs about one file, parsed once by the engine."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.parts = path_parts(path)
        self.lines = source.splitlines()
        self.tree = tree
        #: Child → parent links for the whole module, so rules can ask
        #: "who consumes this expression" without re-walking the tree.
        self.parents: Dict[ast.AST, ast.AST] = {
            child: parent
            for parent in ast.walk(tree)
            for child in ast.iter_child_nodes(parent)
        }

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        return self.parents.get(node)

    def snippet(self, node: ast.AST) -> str:
        """The stripped source line a node starts on (baseline anchor)."""
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` under ``rule``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=rule.code,
            message=message,
            snippet=self.snippet(node),
        )


class Rule:
    """Base class for detlint rules.

    Subclasses set ``code``/``name``/``description`` and override
    :meth:`check`; :meth:`applies_to` narrows the rule to the paths where
    the invariant holds (scopes are matched on path *components*, so the
    fixture tests can exercise a rule through a virtual path such as
    ``src/repro/sim/sample.py``).
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule's invariant is in force for ``path``."""
        return True

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Yield findings for one parsed file (override in subclasses)."""
        raise NotImplementedError

    # -- shared scope helpers ------------------------------------------

    @staticmethod
    def _in_dirs(path: str, names: Iterable[str]) -> bool:
        """Whether the path crosses one of ``names`` outside ``tests``."""
        parts = path_parts(path)
        if "tests" in parts:
            return False
        return bool(set(parts[:-1]) & set(names))


class ProjectRule(Rule):
    """Base class for rules that analyse the whole project graph.

    Per-file rules see one :class:`LintContext`; project rules see the
    :class:`~repro.lint.project.Project` built once per run (symbol
    table, call graph, seed lineage) and may emit findings against any
    file in it.  :meth:`applies_to` still narrows by path — the engine
    and the rule itself consult it before attributing a finding to a
    file — but the *analysis* always spans every parsed module, which
    is what lets DET011 trace a seed through an import alias into
    another file.
    """

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        """Project rules produce nothing in the per-file pass."""
        return ()

    def check_project(self, project) -> Iterable[Finding]:
        """Yield findings over the whole project (override)."""
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and register a rule by its code."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def per_file_rules() -> List[Rule]:
    """Registered rules that run file-by-file, sorted by code."""
    return [r for r in all_rules() if not isinstance(r, ProjectRule)]


def project_rules() -> List[Rule]:
    """Registered whole-project rules, sorted by code."""
    return [r for r in all_rules() if isinstance(r, ProjectRule)]


def get_rule(code: str) -> Rule:
    """The registered rule for ``code`` (raises ``KeyError`` if absent)."""
    return _REGISTRY[code]
