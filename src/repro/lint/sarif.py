"""SARIF 2.1.0 output for GitHub code-scanning annotations.

``render_sarif`` serializes the run's *new* findings (baselined ones
are accepted debt and stay out of code scanning) into the Static
Analysis Results Interchange Format consumed by
``github/codeql-action/upload-sarif``.  The document is dumped with
``sort_keys=True`` and a fixed indent, and findings arrive pre-sorted
from the engine — so SARIF bytes, like JSON report bytes, are
identical at any ``--jobs`` worker count.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .baseline import fingerprint_findings
from .findings import Finding
from .registry import all_rules

__all__ = ["render_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_VERSION = "2.0.0"
FINGERPRINT_KEY = "detlintFingerprint/v1"


def _rule_descriptors() -> List[Dict[str, object]]:
    return [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
    ]


def render_sarif(new: Sequence[Finding]) -> str:
    """The SARIF 2.1.0 document for ``new`` findings, as a string."""
    rule_index = {rule.code: i for i, rule in enumerate(all_rules())}
    results: List[Dict[str, object]] = []
    for finding, fingerprint in fingerprint_findings(new):
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {FINGERPRINT_KEY: fingerprint},
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "detlint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/API.md"
                        ),
                        "version": TOOL_VERSION,
                        "rules": _rule_descriptors(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
