"""The :class:`Finding` record every detlint rule emits.

Kept in its own tiny module so rules, engine, reporters, and the
baseline store can all import it without cycles.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is ``(path, line, col, rule)`` so reports and the baseline
    are stable regardless of rule execution order.  ``snippet`` is the
    stripped source line — it anchors the baseline fingerprint, which
    must survive unrelated line-number drift (see
    :func:`repro.lint.baseline.fingerprint_findings`).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of a report line."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready plain dict."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (unknown keys rejected)."""
        return cls(**payload)  # type: ignore[arg-type]
