"""detlint — AST-based determinism & invariant linter for the simulation stack.

The repro's headline guarantees (Theorem 1/2 correctness under per-node
local views; byte-identical sweep results at any ``--jobs N`` and either
``REPRO_COVERAGE_BACKEND``) hinge on coding invariants that no runtime
test can enforce exhaustively: no unordered iteration feeding ordered
decisions, no ambient RNG or wall-clock reads in simulation paths,
epoch-guarded cache mutation, and backend-qualified memo keys.  This
package enforces them statically::

    python -m repro.lint src tests benchmarks
    python -m repro.lint --check-baseline --jobs 4
    python -m repro.lint --sarif detlint.sarif
    repro-lint --list-rules

Two rule families run over one shared parse:

* the per-file rules DET001–DET010 (a single module's AST), which the
  ``--jobs N`` fork pool fans out with deterministically merged output;
* the project rules DET011–DET014, which consume the whole-run
  :class:`~repro.lint.project.Project` graph — symbol table with
  import-alias resolution (``lint/symtab.py``), project call graph
  (``lint/callgraph.py``), and the flow-sensitive seed-lineage
  analysis (``lint/lineage.py``) classifying every
  ``random.Random(...)`` site as sha256-derived, literal, or unknown.

Everything is stdlib-only (``ast`` + ``argparse``); see
``docs/API.md`` ("Static analysis") for the rule catalogue, the
``# detlint: disable=DETxxx`` pragma syntax, the SARIF/code-scanning
walkthrough, and how to regenerate the committed
``detlint_baseline.json``.
"""

from .baseline import fingerprint_findings, load_baseline, write_baseline
from .engine import (
    LintRun,
    PragmaUse,
    iter_python_files,
    lint_paths,
    lint_source,
    lint_sources,
    run_paths,
    run_sources,
)
from .findings import Finding
from .project import Project
from .registry import (
    LintContext,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    per_file_rules,
)
from .sarif import render_sarif
from . import rules  # noqa: F401  — importing registers DET001–DET010.
from . import project_rules as _project_rules  # noqa: F401  — DET011–DET014.

__all__ = [
    "Finding",
    "LintContext",
    "LintRun",
    "PragmaUse",
    "Project",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "per_file_rules",
    "lint_source",
    "lint_sources",
    "lint_paths",
    "run_sources",
    "run_paths",
    "iter_python_files",
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
    "render_sarif",
]
