"""detlint — AST-based determinism & invariant linter for the simulation stack.

The repro's headline guarantees (Theorem 1/2 correctness under per-node
local views; byte-identical sweep results at any ``--jobs N`` and either
``REPRO_COVERAGE_BACKEND``) hinge on coding invariants that no runtime
test can enforce exhaustively: no unordered iteration feeding ordered
decisions, no ambient RNG or wall-clock reads in simulation paths,
epoch-guarded cache mutation, and backend-qualified memo keys.  This
package enforces them statically::

    python -m repro.lint src tests benchmarks
    python -m repro.lint --check-baseline
    repro-lint --list-rules

Everything is stdlib-only (``ast`` + ``argparse``); see
``docs/API.md`` ("Static analysis") for the rule catalogue, the
``# detlint: disable=DETxxx`` pragma syntax, and how to regenerate the
committed ``detlint_baseline.json``.
"""

from .baseline import fingerprint_findings, load_baseline, write_baseline
from .engine import iter_python_files, lint_paths, lint_source
from .findings import Finding
from .registry import LintContext, Rule, all_rules, get_rule
from . import rules  # noqa: F401  — importing registers the DET rules.

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
]
