"""Command-line entry point: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 clean (all findings baselined), 1 new findings (or, under
``--check-baseline``, stale baseline entries), 2 usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import rules as _rules  # noqa: F401  — registers DET001–DET008.
from .baseline import diff_against_baseline, load_baseline, write_baseline
from .engine import iter_python_files, lint_paths
from .report import render_human, render_json, render_rule_list

DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_BASELINE = "detlint_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & invariant linter for the repro "
            "simulation stack (rules DET001-DET008)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint "
        f"(default: the existing subset of {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline JSON of accepted findings "
        f"(default: {DEFAULT_BASELINE}; missing file = empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and fail on every finding",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="also fail when the baseline holds stale entries, so the "
        "committed file always matches a fresh run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        render_rule_list(sys.stdout)
        return 0

    paths = args.paths or [p for p in DEFAULT_PATHS if os.path.isdir(p)]
    if not paths:
        print(
            "repro-lint: no paths given and none of "
            f"{', '.join(DEFAULT_PATHS)} exist here",
            file=sys.stderr,
        )
        return 2

    checked_files = sum(1 for _ in iter_python_files(paths))
    findings = lint_paths(paths)

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"wrote {args.baseline}: {len(findings)} accepted finding(s)",
            file=sys.stderr,
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    new, accepted, stale = diff_against_baseline(findings, baseline)
    if not args.check_baseline:
        stale = []  # informational only outside --check-baseline

    renderer = render_json if args.json else render_human
    renderer(sys.stdout, new, accepted, stale, checked_files)

    if new:
        return 1
    if args.check_baseline and stale:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
