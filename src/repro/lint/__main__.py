"""Command-line entry point: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 clean (all findings baselined), 1 new findings (or, under
``--check-baseline``, stale baseline entries), 2 usage errors, 3 stale
pragmas under ``--stats`` (a pragma that suppressed zero findings).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from . import rules as _rules  # noqa: F401  — registers DET001–DET010.
from . import project_rules as _project_rules  # noqa: F401  — DET011–DET014.
from .baseline import diff_against_baseline, load_baseline, write_baseline
from .engine import run_paths
from .report import render_human, render_json, render_rule_list, render_stats
from .sarif import render_sarif

DEFAULT_PATHS = ("src", "tests", "benchmarks")
DEFAULT_BASELINE = "detlint_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & invariant linter for the repro "
            "simulation stack (per-file rules DET001-DET010 plus the "
            "interprocedural seed-lineage / call-graph rules "
            "DET011-DET014)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint "
        f"(default: the existing subset of {', '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline JSON of accepted findings "
        f"(default: {DEFAULT_BASELINE}; missing file = empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and fail on every finding",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="also fail when the baseline holds stale entries, so the "
        "committed file always matches a fresh run",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the per-file rule pass over N fork workers (findings "
        "are merged deterministically: output bytes are identical at "
        "any N; serial fallback where fork is unavailable)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write the new findings as a SARIF 2.1.0 document "
        "for GitHub code scanning ('-' = stdout)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="append the stats subreport (per-rule counts, pragma "
        "suppression hits with file:line, baseline size); exits 3 if "
        "any pragma suppressed zero findings",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        render_rule_list(sys.stdout)
        return 0
    if args.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    paths = args.paths or [p for p in DEFAULT_PATHS if os.path.isdir(p)]
    if not paths:
        print(
            "repro-lint: no paths given and none of "
            f"{', '.join(DEFAULT_PATHS)} exist here",
            file=sys.stderr,
        )
        return 2

    run = run_paths(paths, jobs=args.jobs)
    findings = run.findings

    if args.write_baseline:
        write_baseline(args.baseline, findings)
        print(
            f"wrote {args.baseline}: {len(findings)} accepted finding(s)",
            file=sys.stderr,
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline)
    new, accepted, stale = diff_against_baseline(findings, baseline)
    if not args.check_baseline:
        stale = []  # informational only outside --check-baseline

    if args.sarif:
        document = render_sarif(new)
        if args.sarif == "-":
            sys.stdout.write(document)
        else:
            Path(args.sarif).write_text(document, encoding="utf-8")

    renderer = render_json if args.json else render_human
    renderer(sys.stdout, new, accepted, stale, run.checked_files)

    stale_pragmas = False
    if args.stats:
        stale_pragmas = render_stats(sys.stdout, run, len(baseline))

    if new:
        return 1
    if args.check_baseline and stale:
        return 1
    if args.stats and stale_pragmas:
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
