"""Project-level module and symbol tables with import-alias resolution.

detlint's original rules reason about one file at a time; the
interprocedural rules (DET011 seed lineage, DET012 call-graph entropy
reachability, DET013 fork-boundary payloads) need to know *what a name
means* across the whole ``src/repro`` tree: which module a local alias
refers to, which function a call resolves to, and which classes are
frozen dataclasses.  The :class:`SymbolTable` answers those questions
from one parse pass per module — no imports are executed, so analysing
a broken or side-effectful module is always safe.

Resolution is deliberately syntactic: ``from ..graph.topology import
Topology`` binds ``Topology -> repro.graph.topology.Topology`` whether
or not that module is part of the current lint run, and dotted names
that cannot be traced to an import or a module-level definition resolve
to ``None`` rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .registry import path_parts

__all__ = [
    "module_name_for_path",
    "dotted_name",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "SymbolTable",
]


def module_name_for_path(path: str) -> str:
    """The dotted module name a (possibly virtual) file path denotes.

    ``src/repro/sim/engine.py`` -> ``repro.sim.engine``;
    ``benchmarks/bench_scale.py`` -> ``benchmarks.bench_scale``;
    package ``__init__.py`` files name the package itself.
    """
    parts = list(path_parts(path))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


@dataclass
class FunctionInfo:
    """One function or method definition, addressed by qualified name."""

    qualname: str
    name: str
    module: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None


@dataclass
class ClassInfo:
    """One class definition plus its picklable-frozen classification."""

    qualname: str
    name: str
    module: str
    node: ast.ClassDef
    #: ``@dataclass(frozen=True)`` or a NamedTuple/tuple subclass — the
    #: shapes DET013 accepts across a fork/Pipe boundary.
    frozen: bool = False


def _is_dataclass_decorator(node: ast.AST) -> bool:
    return (isinstance(node, ast.Name) and node.id == "dataclass") or (
        isinstance(node, ast.Attribute) and node.attr == "dataclass"
    )


def _is_frozen_class(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and _is_dataclass_decorator(decorator.func)
        ):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen" and (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                ):
                    return True
    for base in node.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1] in (
            "NamedTuple",
            "tuple",
            "Enum",
            "IntEnum",
        ):
            return True
    return False


@dataclass
class ModuleInfo:
    """Everything the project analyses need to know about one module."""

    name: str
    path: str
    tree: ast.Module
    #: Local alias -> absolute dotted target (module or symbol).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Absolute names of modules this module imports (candidates — they
    #: may or may not be part of the current lint run).
    imported_modules: List[str] = field(default_factory=list)
    #: Local top-level name -> qualified name, for functions/classes.
    local_symbols: Dict[str, str] = field(default_factory=dict)

    @property
    def parts(self) -> Tuple[str, ...]:
        return path_parts(self.path)

    def is_package(self) -> bool:
        """Whether this module is a package ``__init__.py``."""
        return path_parts(self.path)[-1:] == ("__init__.py",)


class SymbolTable:
    """All modules of one lint run, indexed for name resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- construction ---------------------------------------------------

    def add_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        """Register one parsed module and harvest its symbols."""
        name = module_name_for_path(path)
        info = ModuleInfo(name=name, path=path, tree=tree)
        self._collect_imports(info)
        self._collect_definitions(info)
        self.modules[name] = info
        self.by_path[path] = info
        return info

    def _anchor(self, info: ModuleInfo, level: int) -> List[str]:
        """The package path a ``level``-dot relative import resolves in."""
        parts = info.name.split(".") if info.name else []
        drop = level - 1 if info.is_package() else level
        if drop <= 0:
            return parts
        return parts[: max(0, len(parts) - drop)]

    def _collect_imports(self, info: ModuleInfo) -> None:
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = alias.name
                    local = alias.asname or target.split(".")[0]
                    if alias.asname is None:
                        # ``import a.b`` binds the root package ``a``.
                        info.imports.setdefault(local, local)
                    else:
                        info.imports[local] = target
                    info.imported_modules.append(target)
            elif isinstance(node, ast.ImportFrom):
                base_parts = list(
                    self._anchor(info, node.level)
                    if node.level
                    else []
                )
                if node.module:
                    base_parts += node.module.split(".")
                base = ".".join(base_parts)
                if base:
                    info.imported_modules.append(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = f"{base}.{alias.name}" if base else alias.name
                    info.imports[alias.asname or alias.name] = target
                    # ``from repro.sim import engine`` imports a module.
                    info.imported_modules.append(target)

    def _collect_definitions(self, info: ModuleInfo) -> None:
        def visit(node: ast.AST, scope: Tuple[str, ...]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    qualname = ".".join((info.name,) + scope + (child.name,))
                    class_name = scope[-1] if scope else None
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        name=child.name,
                        module=info.name,
                        node=child,
                        class_name=class_name,
                    )
                    if not scope:
                        info.local_symbols[child.name] = qualname
                    visit(child, scope + (child.name,))
                elif isinstance(child, ast.ClassDef):
                    qualname = ".".join((info.name,) + scope + (child.name,))
                    self.classes[qualname] = ClassInfo(
                        qualname=qualname,
                        name=child.name,
                        module=info.name,
                        node=child,
                        frozen=_is_frozen_class(child),
                    )
                    if not scope:
                        info.local_symbols[child.name] = qualname
                    visit(child, scope + (child.name,))
                else:
                    visit(child, scope)

        visit(info.tree, ())

    # -- resolution -----------------------------------------------------

    def resolve(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Absolute dotted target of ``dotted`` as used inside ``module``.

        The head segment resolves through the module's import aliases,
        then through its top-level definitions; anything else is
        unresolvable (``None``) — never guessed.
        """
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            target = module.local_symbols.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def resolve_call(
        self,
        module: ModuleInfo,
        func: ast.AST,
        class_name: Optional[str] = None,
    ) -> Optional[str]:
        """Absolute name of a call's target expression, if traceable.

        Handles ``name(...)``, dotted ``mod.attr(...)`` chains, and
        ``self.method(...)``/``cls.method(...)`` inside a class body.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head = dotted.split(".")[0]
        if head in ("self", "cls") and class_name is not None:
            rest = dotted.split(".")[1:]
            if len(rest) == 1:
                return f"{module.name}.{class_name}.{rest[0]}"
            return None
        return self.resolve(module, dotted)
