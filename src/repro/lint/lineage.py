"""Flow-sensitive seed lineage for ``random.Random(...)`` sites.

Every construction of a :class:`random.Random` in the project is
classified by where its seed came from:

``sha256``
    The seed traces to a sha256 helper — a project function that
    (transitively) calls into ``hashlib`` — or to an inline
    ``int.from_bytes(hashlib.sha256(...).digest()[:8], "big")`` chain,
    possibly mixed with constants via ``^``/``+`` (mixing a digest with
    a constant keeps the digest's entropy).  This is the repo's seeding
    discipline and is always clean.

``literal``
    The seed is a constant, or a name whose last assignment before the
    site is a constant, or a draw (``getrandbits``/``randint``/...)
    from a literal-seeded generator.  Reachable from sim scope this is
    the DET011 smell: every run and every call site shares one stream.

``ambient``
    No argument (or ``None``): the generator seeds from the OS — the
    determinism failure DET002 catches for ``random.random()``, here in
    constructor form.

``derived``/``unknown``
    The seed arrives through a parameter, attribute, subscript, or a
    draw from a caller-supplied generator.  Responsibility lies with
    the caller, so these sites are not flagged.

The per-site analysis is *flow-sensitive within one scope*: names
resolve to their textually last assignment preceding the site, loop
targets and parameters are unknown, and ``a or b`` takes the worst
lineage of its operands (the fallback branch may be the one taken).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph, iter_scoped_calls
from .symtab import ModuleInfo, SymbolTable, dotted_name

__all__ = [
    "LITERAL",
    "SHA256",
    "AMBIENT",
    "UNKNOWN",
    "SeedSite",
    "SeedLineage",
]

LITERAL = "literal"
SHA256 = "sha256"
AMBIENT = "ambient"
UNKNOWN = "unknown"

#: Drawing one of these from an existing generator propagates that
#: generator's lineage to the drawn value.
_DRAW_METHODS = frozenset(
    {"getrandbits", "randint", "randrange", "random", "choice", "uniform"}
)


@dataclass
class SeedSite:
    """One ``random.Random(...)`` construction site, classified."""

    module: str
    path: str
    node: ast.Call
    classification: str
    #: Constant seed value when the lineage is ``literal`` and the
    #: constant is directly visible (used for shared-seed reporting).
    seed_value: Optional[object] = None


class SeedLineage:
    """Classify every Random construction site across the project."""

    def __init__(self, symtab: SymbolTable, callgraph: CallGraph) -> None:
        self.symtab = symtab
        self.callgraph = callgraph
        self.sha256_helpers = self._sha256_helpers()
        self.sites: List[SeedSite] = []
        self._collect_sites()

    # -- sha256 helper discovery ---------------------------------------

    def _sha256_helpers(self) -> Set[str]:
        """Functions that (transitively) call into ``hashlib``.

        ``session_seed``-style helpers call ``hashlib.sha256`` directly;
        a wrapper around such a helper is itself a helper.  This is an
        over-approximation toward *not* flagging — a function that
        hashes but returns a constant would be misread as derived — and
        that bias is deliberate: DET011 only fires on provable literals.
        """
        direct = {
            owner
            for owner, names in self.callgraph.externals.items()
            if any(name.startswith("hashlib.") for name in names)
            and owner in self.symtab.functions
        }
        closure = self.callgraph.transitive_closure_from(direct)
        return {name for name in closure if name in self.symtab.functions}

    # -- site collection ------------------------------------------------

    def _collect_sites(self) -> None:
        for name in sorted(self.symtab.modules):
            module = self.symtab.modules[name]
            for call, scope, class_name in iter_scoped_calls(module):
                if not self._is_random_ctor(module, call, class_name):
                    continue
                scope_node = self._scope_node(module, scope)
                classification, value = self._classify_seed(
                    module, call, scope_node, class_name
                )
                self.sites.append(
                    SeedSite(
                        module=module.name,
                        path=module.path,
                        node=call,
                        classification=classification,
                        seed_value=value,
                    )
                )

    def _is_random_ctor(
        self,
        module: ModuleInfo,
        call: ast.Call,
        class_name: Optional[str],
    ) -> bool:
        resolved = self.symtab.resolve_call(module, call.func, class_name)
        return resolved == "random.Random"

    def _scope_node(
        self, module: ModuleInfo, scope: Tuple[str, ...]
    ) -> ast.AST:
        if not scope:
            return module.tree
        qualname = ".".join((module.name,) + scope)
        info = self.symtab.functions.get(qualname)
        return info.node if info is not None else module.tree

    def _classify_seed(
        self,
        module: ModuleInfo,
        call: ast.Call,
        scope_node: ast.AST,
        class_name: Optional[str],
    ) -> Tuple[str, Optional[object]]:
        if call.keywords:
            return UNKNOWN, None
        if not call.args:
            return AMBIENT, None
        seed = call.args[0]
        lineage = self._expr_lineage(
            module, seed, scope_node, class_name, depth=0
        )
        value: Optional[object] = None
        if lineage == LITERAL and isinstance(seed, ast.Constant):
            value = seed.value
        return lineage, value

    # -- expression lineage ---------------------------------------------

    def _expr_lineage(
        self,
        module: ModuleInfo,
        expr: ast.AST,
        scope_node: ast.AST,
        class_name: Optional[str],
        depth: int,
    ) -> str:
        if depth > 12:
            return UNKNOWN
        recurse = lambda e: self._expr_lineage(  # noqa: E731
            module, e, scope_node, class_name, depth + 1
        )
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                return AMBIENT
            return LITERAL
        if isinstance(expr, ast.Name):
            return self._name_lineage(
                module, expr, scope_node, class_name, depth
            )
        if isinstance(expr, ast.BoolOp):
            # ``a or b``: either branch may be the one taken, so the
            # worst operand wins: literal > ambient > unknown > sha256.
            parts = [recurse(v) for v in expr.values]
            for worst in (LITERAL, AMBIENT, UNKNOWN):
                if worst in parts:
                    return worst
            return SHA256
        if isinstance(expr, ast.BinOp):
            left, right = recurse(expr.left), recurse(expr.right)
            if SHA256 in (left, right):
                # xor/add with a constant keeps the digest's entropy.
                return SHA256
            if left == LITERAL and right == LITERAL:
                return LITERAL
            return UNKNOWN
        if isinstance(expr, ast.UnaryOp):
            return recurse(expr.operand)
        if isinstance(expr, ast.Subscript):
            # ``digest[:8]`` keeps the digest lineage.
            inner = recurse(expr.value)
            return inner if inner == SHA256 else UNKNOWN
        if isinstance(expr, ast.Call):
            return self._call_lineage(
                module, expr, scope_node, class_name, depth
            )
        if isinstance(expr, ast.IfExp):
            branches = {recurse(expr.body), recurse(expr.orelse)}
            if LITERAL in branches:
                return LITERAL
            if branches == {SHA256}:
                return SHA256
            return UNKNOWN
        return UNKNOWN

    def _call_lineage(
        self,
        module: ModuleInfo,
        call: ast.Call,
        scope_node: ast.AST,
        class_name: Optional[str],
        depth: int,
    ) -> str:
        recurse_arg = lambda: (  # noqa: E731
            self._expr_lineage(
                module, call.args[0], scope_node, class_name, depth + 1
            )
            if call.args
            else UNKNOWN
        )
        resolved = self.symtab.resolve_call(module, call.func, class_name)
        if resolved is not None:
            if resolved == "random.Random":
                # The lineage of a generator is the lineage of its seed.
                if not call.args:
                    return AMBIENT
                return recurse_arg()
            if resolved in self.sha256_helpers:
                return SHA256
            if resolved.startswith("hashlib."):
                return SHA256
        if isinstance(call.func, ast.Name) and call.func.id in (
            "int",
            "abs",
        ):
            return recurse_arg()
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in ("digest", "hexdigest"):
                return self._expr_lineage(
                    module,
                    call.func.value,
                    scope_node,
                    class_name,
                    depth + 1,
                )
            if attr == "from_bytes":
                # ``int.from_bytes(digest, "big")``
                return recurse_arg()
            if attr in _DRAW_METHODS:
                return self._expr_lineage(
                    module,
                    call.func.value,
                    scope_node,
                    class_name,
                    depth + 1,
                )
        return UNKNOWN

    def _name_lineage(
        self,
        module: ModuleInfo,
        name: ast.Name,
        scope_node: ast.AST,
        class_name: Optional[str],
        depth: int,
    ) -> str:
        assignment = _last_assignment(scope_node, name)
        if assignment is None and scope_node is not module.tree:
            if _is_parameter(scope_node, name.id):
                return UNKNOWN
            # Fall back to a module-level binding.
            assignment = _last_assignment(module.tree, name)
        if assignment is None:
            return UNKNOWN
        return self._expr_lineage(
            module, assignment, scope_node, class_name, depth + 1
        )


def _is_parameter(scope_node: ast.AST, name: str) -> bool:
    args = getattr(scope_node, "args", None)
    if args is None:
        return False
    all_args = (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    )
    return any(a.arg == name for a in all_args)


def _last_assignment(
    scope_node: ast.AST, name: ast.Name
) -> Optional[ast.AST]:
    """Value of the last ``name = ...`` before ``name``'s use, same scope.

    Nested function bodies are opaque (their assignments bind their own
    scope); ``for`` targets and ``with ... as`` bindings deliberately
    resolve to nothing (unknown lineage).
    """
    use_line = name.lineno
    best: Optional[Tuple[int, ast.AST]] = None

    def visit(node: ast.AST) -> None:
        nonlocal best
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child is not scope_node:
                    continue
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == name.id
                        and child.lineno <= use_line
                    ):
                        if best is None or child.lineno >= best[0]:
                            best = (child.lineno, child.value)
            elif isinstance(child, ast.AnnAssign):
                if (
                    isinstance(child.target, ast.Name)
                    and child.target.id == name.id
                    and child.value is not None
                    and child.lineno <= use_line
                ):
                    if best is None or child.lineno >= best[0]:
                        best = (child.lineno, child.value)
            visit(child)

    visit(scope_node)
    return best[1] if best is not None else None
