"""Virtual backbone: a stable CDS for both broadcasting and unicasting.

The paper motivates the *static* approach with exactly this use case: "the
static approach produces a relatively stable CDS that forms a virtual
backbone, which facilitates both broadcasting and unicasting."  This
example:

1. computes a proactive forward set (the backbone) with the static generic
   protocol,
2. broadcasts over it from several sources — the same backbone serves all
   of them,
3. routes unicast messages along the backbone (enter at the source's
   backbone neighbor, travel inside the backbone, exit at the target),
4. shows the clustering escape hatch for dense deployments.

Run:  python examples/virtual_backbone.py
"""

import random
from typing import List, Optional

from repro import SimulationEnvironment, BroadcastSession, is_cds
from repro.algorithms.generic import GenericStatic
from repro.core.priority import DegreePriority
from repro.graph.clustering import cluster_backbone, lowest_id_clustering
from repro.graph.generators import random_connected_network
from repro.graph.topology import Topology


def backbone_route(
    graph: Topology, backbone: frozenset, source: int, target: int
) -> Optional[List[int]]:
    """A source → target route whose interior runs inside the backbone."""
    if target in graph.neighbors(source) or source == target:
        return [source, target]
    allowed = set(backbone) | {source, target}
    route = graph.subgraph(allowed).shortest_path(source, target)
    return route


def main() -> None:
    rng = random.Random(11)
    network = random_connected_network(60, 6.0, rng)
    graph = network.topology

    # --- 1. the proactive backbone -----------------------------------
    env = SimulationEnvironment(graph, DegreePriority())
    protocol = GenericStatic(hops=2)
    protocol.prepare(env)
    backbone = protocol.forward_set
    print(
        f"backbone: {len(backbone)} of {graph.node_count()} nodes "
        f"(CDS: {is_cds(graph, backbone)})"
    )

    # --- 2. one backbone, many broadcasts ----------------------------
    print("\nbroadcasts from five different sources over the same backbone:")
    for source in rng.sample(graph.nodes(), 5):
        outcome = BroadcastSession(
            env, protocol, source, rng=rng
        ).run()
        assert outcome.delivered == set(graph.nodes())
        print(
            f"  source {source:3d}: {outcome.forward_count:2d} forwards, "
            f"covered all {len(outcome.delivered)} nodes"
        )

    # --- 3. unicast along the backbone -------------------------------
    print("\nunicast routes through the backbone:")
    for _ in range(5):
        source, target = rng.sample(graph.nodes(), 2)
        route = backbone_route(graph, backbone, source, target)
        direct = graph.shortest_path(source, target)
        assert route is not None, "backbone must connect every pair"
        print(
            f"  {source:3d} -> {target:3d}: backbone route {route} "
            f"({len(route) - 1} hops vs {len(direct) - 1} optimal)"
        )

    # --- 4. dense network? cluster first -----------------------------
    dense = random_connected_network(60, 20.0, rng)
    clustering = lowest_id_clustering(dense.topology)
    sparse_backbone = cluster_backbone(dense.topology, clustering)
    print(
        f"\ndense deployment (avg degree {dense.average_degree():.0f}): "
        f"{len(clustering.heads)} clusterheads + "
        f"{len(clustering.gateways)} gateways -> backbone of "
        f"{sparse_backbone.node_count()} nodes with average degree "
        f"{sparse_backbone.average_degree():.1f}"
    )


if __name__ == "__main__":
    main()
