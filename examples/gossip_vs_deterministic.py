"""Probabilistic versus deterministic broadcasting.

The paper's introduction dismisses the probabilistic approach in two
sentences: gossip "cannot guarantee full coverage", and making it
reliable requires a conservative p that "yields a relatively large
forward node set."  This example measures both halves of the claim: for
a sweep of gossip probabilities it reports delivery ratio and forward
count, next to the deterministic coverage-condition protocol which
guarantees delivery by construction.

Run:  python examples/gossip_vs_deterministic.py
"""

import random
import statistics

from repro.algorithms.base import Timing
from repro.algorithms.generic import GenericSelfPruning
from repro.algorithms.gossip import Gossip
from repro.core.priority import IdPriority
from repro.graph.generators import random_connected_network
from repro.sim.engine import BroadcastSession, SimulationEnvironment

TRIALS = 25
N = 50
DEGREE = 6.0


def measure(protocol_factory) -> tuple:
    rng = random.Random(2003)
    delivery, forwards = [], []
    for trial in range(TRIALS):
        net = random_connected_network(N, DEGREE, rng)
        env = SimulationEnvironment(net.topology, IdPriority())
        protocol = protocol_factory()
        protocol.prepare(env)
        outcome = BroadcastSession(
            env, protocol, rng.choice(net.topology.nodes()),
            rng=random.Random(trial),
        ).run()
        delivery.append(len(outcome.delivered) / N)
        forwards.append(outcome.forward_count)
    return statistics.mean(delivery), statistics.mean(forwards)


def main() -> None:
    print(f"{TRIALS} random networks, n={N}, d={DEGREE:g}\n")
    print(f"{'protocol':24s} {'delivery':>9s} {'forwards':>9s}")
    print("-" * 44)
    for p in (0.3, 0.5, 0.7, 0.9):
        delivery, forwards = measure(lambda p=p: Gossip(p=p))
        print(f"{f'gossip p={p:g}':24s} {delivery:9.1%} {forwards:9.1f}")
    delivery, forwards = measure(
        lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
    )
    print(f"{'generic coverage (FR)':24s} {delivery:9.1%} {forwards:9.1f}")
    print(
        "\nthe deterministic framework delivers 100% with fewer forwards "
        "than any gossip setting that comes close"
    )


if __name__ == "__main__":
    main()
