"""Walkthrough of the paper's illustrative figures, executed live.

Re-creates Figures 1, 2, 4, 6(a) and 6(b) as real topologies and runs the
actual coverage machinery on them, printing what the paper argues in
prose: which nodes prune, which replacement paths MAX_MIN constructs, and
where the generic and strong coverage conditions part ways.

Run:  python examples/paper_gallery.py
"""

from repro.core.coverage import (
    coverage_condition,
    strong_coverage_condition,
    uncovered_pairs,
)
from repro.core.maxmin import max_min_path
from repro.core.priority import IdPriority
from repro.core.views import global_view, local_view
from repro.graph.paperfigs import figure1, figure2, figure4, figure6a, figure6b

SCHEME = IdPriority()


def banner(text: str) -> None:
    print(f"\n{'=' * 64}\n{text}\n{'=' * 64}")


def show_figure1() -> None:
    banner("Figure 1: why flooding is wasteful")
    fig = figure1()
    view = global_view(fig.topology, SCHEME)
    print("triangle u=1, v=2, w=3; every pair directly connected")
    for node in sorted(fig.topology.nodes()):
        print(
            f"  node {node}: coverage condition -> "
            f"{'non-forward' if coverage_condition(view, node) else 'forward'}"
        )
    print("one transmission from any node reaches everyone else")


def show_figure2() -> None:
    banner("Figure 2: the MAX_MIN maximal replacement path")
    fig = figure2()
    u, w, v = 10, 11, 2
    view = global_view(fig.topology, SCHEME, visited=fig.visited)
    path = max_min_path(view, u, w, v)
    print(f"replacing v={v} between u={u} and w={w} (y=9 is visited)")
    print(f"  MAX_MIN path: {path}")
    print("  (the paper derives (u, y, 6, 4, w) — same path)")


def show_figure4() -> None:
    banner("Figure 4: static versus dynamic forward sets")
    fig = figure4()
    static = global_view(fig.topology, SCHEME)
    dynamic = global_view(fig.topology, SCHEME, visited=fig.visited)
    unvisited = sorted(set(fig.topology.nodes()) - set(fig.visited))
    static_pruned = [n for n in unvisited if coverage_condition(static, n)]
    dynamic_pruned = [n for n in unvisited if coverage_condition(dynamic, n)]
    print(f"statically prunable      : {static_pruned}")
    print(f"with 2 and 5 visited     : {dynamic_pruned}")
    print("broadcast state can only help: the dynamic set is a superset")


def show_figure6a() -> None:
    banner("Figure 6(a): generic versus strong coverage condition")
    fig = figure6a()
    view = global_view(fig.topology, SCHEME)
    print("node 4, neighbors 1, 2, 3; replacement paths via 5, 6, {7,8}")
    print(
        f"  generic condition: "
        f"{'non-forward' if coverage_condition(view, 4) else 'forward'}"
    )
    print(
        f"  strong condition : "
        f"{'non-forward' if strong_coverage_condition(view, 4) else 'forward'}"
        "  (no single component dominates N(4))"
    )
    for hops in (2, 3):
        local = local_view(fig.topology, 4, hops, SCHEME)
        sees_link = local.graph.has_edge(7, 8)
        verdict = coverage_condition(local, 4)
        print(
            f"  {hops}-hop view: link (7,8) "
            f"{'visible' if sees_link else 'invisible'} -> "
            f"{'non-forward' if verdict else 'forward'}"
        )
        if not verdict:
            print(f"    uncovered pairs: {uncovered_pairs(local, 4)}")


def show_figure6b() -> None:
    banner("Figure 6(b): virtual connectivity of visited nodes")
    fig = figure6b()
    view = global_view(fig.topology, SCHEME, visited=fig.visited)
    print("node 2 with visited neighbors 5, 6 (no link between them)")
    print(
        f"  strong coverage with the visited-connected convention: "
        f"{'non-forward' if strong_coverage_condition(view, 2) else 'forward'}"
    )
    stripped = type(view)(
        graph=view.graph,
        status=view.status,
        metrics=view.metrics,
        metric_padding=view.metric_padding,
        visited_connected=False,
    )
    print(
        f"  without the convention                              : "
        f"{'non-forward' if strong_coverage_condition(stripped, 2) else 'forward'}"
    )


def main() -> None:
    show_figure1()
    show_figure2()
    show_figure4()
    show_figure6a()
    show_figure6b()
    print()


if __name__ == "__main__":
    main()
