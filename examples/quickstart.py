"""Quickstart: broadcast over a random ad hoc network with the generic
framework.

Builds a 50-node unit-disk deployment the way the paper's simulator does,
configures the generic protocol along its four axes (timing, selection,
space, priority), runs one broadcast, and prints what happened.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    FrameworkConfig,
    build_protocol,
    build_scheme,
    is_cds,
    random_connected_network,
    run_broadcast,
)


def main() -> None:
    rng = random.Random(7)

    # 1. A 50-node deployment in a 100x100 area, range calibrated so the
    #    average degree is exactly 6 (the paper's sparse setting).
    network = random_connected_network(50, 6.0, rng)
    print(
        f"deployment: {network.node_count} nodes, "
        f"{network.link_count} links, radius {network.radius:.2f}"
    )

    # 2. The generic framework, configured along the paper's four axes.
    config = FrameworkConfig(
        timing="frb",            # decide after a random backoff
        selection="self-pruning",  # each node prunes itself
        hops=2,                  # 2-hop neighborhood information
        priority="degree",       # higher-degree nodes rank higher
    )
    protocol = build_protocol(config)
    scheme = build_scheme(config)

    # 3. One broadcast from node 0, with a full event trace.
    outcome = run_broadcast(
        network.topology,
        protocol,
        source=0,
        scheme=scheme,
        rng=rng,
        collect_trace=True,
    )

    print(f"forward nodes : {outcome.forward_count} of {network.node_count}")
    print(f"delivered to  : {len(outcome.delivered)} nodes")
    print(f"completed at  : t = {outcome.completion_time:.2f}")
    print(
        "forward set is a connected dominating set:",
        is_cds(network.topology, outcome.forward_nodes),
    )

    print("\nfirst ten trace events:")
    for event in outcome.trace.events()[:10]:
        print(" ", event)

    # 4. Compare against blind flooding: every node transmits.
    saved = network.node_count - outcome.forward_count
    print(
        f"\nvs flooding: {saved} transmissions saved "
        f"({100 * saved / network.node_count:.0f}% reduction)"
    )


if __name__ == "__main__":
    main()
