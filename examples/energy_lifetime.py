"""Network lifetime: how pruning and priority rotation delay node death.

Span's reason for existing is energy: rotate coordinator duty so no node
burns out early.  This example charges a per-node battery for every
transmission and reception, then broadcasts from random sources until
the first node dies, under four regimes:

1. blind flooding (everyone transmits every broadcast),
2. coverage-condition pruning with fixed id priorities,
3. pruning with randomly rotating priorities,
4. pruning with energy-aware priorities (residual energy = priority).

Run:  python examples/energy_lifetime.py
"""

import random

from repro.algorithms.base import Timing
from repro.algorithms.flooding import Flooding
from repro.algorithms.generic import GenericSelfPruning
from repro.core.priority import RandomEpochPriority
from repro.graph.generators import random_connected_network
from repro.sim.energy import (
    EnergyAwarePriority,
    EnergyTracker,
    network_lifetime,
)

N = 40
DEGREE = 14.0
INITIAL = 40.0


def measure(graph, protocol_factory, scheme_factory=None):
    tracker = EnergyTracker(
        graph.nodes(), initial=INITIAL,
        transmit_cost=1.0, receive_cost=0.05,
    )
    result = network_lifetime(
        graph, protocol_factory, tracker,
        scheme_factory=scheme_factory, rng=random.Random(5),
    )
    return result.broadcasts, result.survivors()


def main() -> None:
    graph = random_connected_network(
        N, DEGREE, random.Random(99)
    ).topology
    pruning = lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
    epoch = {"n": 0}

    def rotating(tracker):
        epoch["n"] += 1
        return RandomEpochPriority(seed=epoch["n"])

    regimes = [
        ("flooding", Flooding, None),
        ("pruning, fixed priority", pruning, None),
        ("pruning, rotating priority", pruning, rotating),
        (
            "pruning, energy-aware",
            pruning,
            lambda tracker: EnergyAwarePriority(tracker.snapshot()),
        ),
    ]

    print(
        f"battery {INITIAL:g} units, transmit 1.0, receive 0.05 "
        f"(n={N}, d={DEGREE:g})\n"
    )
    print(f"{'regime':30s} {'lifetime':>9s} {'survivors':>10s}")
    print("-" * 52)
    for name, factory, scheme_factory in regimes:
        lifetime, survivors = measure(graph, factory, scheme_factory)
        print(f"{name:30s} {lifetime:9d} {survivors:10d}")
    print(
        "\nlifetime = broadcasts until the first node dies; rotating duty "
        "by residual energy stretches it furthest (Span's thesis)"
    )


if __name__ == "__main__":
    main()
