"""Head-to-head comparison of every implemented broadcast protocol.

Samples a batch of random deployments and, for each registered protocol,
reports the average forward-node count, completion time, and whether the
broadcast ever failed to cover the network (it must not, under an ideal
MAC).  This is the library-level view of the paper's Section 7
comparisons, all on one table.

Run:  python examples/compare_protocols.py [n] [degree]
"""

import random
import statistics
import sys

from repro import SimulationEnvironment, BroadcastSession, is_cds
from repro.algorithms import REGISTRY, create
from repro.core.priority import scheme_by_name
from repro.graph.generators import random_connected_network

TRIALS = 15


def main(n: int = 50, degree: float = 6.0) -> None:
    rng = random.Random(2003)
    deployments = [
        random_connected_network(n, degree, rng) for _ in range(TRIALS)
    ]
    sources = [rng.choice(d.topology.nodes()) for d in deployments]

    print(
        f"{TRIALS} random deployments, n={n}, average degree {degree:g}\n"
    )
    header = f"{'protocol':18s} {'forward':>8s} {'stdev':>6s} {'time':>7s} {'cds':>4s}"
    print(header)
    print("-" * len(header))

    rows = []
    for name in REGISTRY:
        scheme = scheme_by_name("id")
        counts, times, all_cds = [], [], True
        for trial, (deployment, source) in enumerate(
            zip(deployments, sources)
        ):
            env = SimulationEnvironment(deployment.topology, scheme)
            protocol = create(name)
            protocol.prepare(env)
            outcome = BroadcastSession(
                env, protocol, source, rng=random.Random(trial)
            ).run()
            if outcome.delivered != set(deployment.topology.nodes()):
                raise AssertionError(f"{name} failed to cover the network")
            counts.append(outcome.forward_count)
            times.append(outcome.completion_time)
            all_cds &= is_cds(deployment.topology, outcome.forward_nodes)
        rows.append(
            (
                statistics.mean(counts),
                name,
                statistics.stdev(counts),
                statistics.mean(times),
                all_cds,
            )
        )

    for mean_count, name, stdev, mean_time, all_cds in sorted(rows):
        print(
            f"{name:18s} {mean_count:8.2f} {stdev:6.2f} "
            f"{mean_time:7.2f} {'yes' if all_cds else 'NO':>4s}"
        )

    print(
        "\n(forward = average forward-node count, lower is better; "
        "time = broadcast completion in MAC delay units; "
        "cds = forward sets were always connected dominating sets)"
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    degree = float(sys.argv[2]) if len(sys.argv) > 2 else 6.0
    main(n, degree)
