"""Broadcast under mobility and under MAC collisions.

The paper evaluates static, collision-free networks and argues the two
omissions away by citing follow-up results: moderate mobility is absorbed
by a little extra redundancy, and collisions are relieved by a small
forwarding jitter.  This example reproduces both claims with the
library's mobility model and collision MAC:

1. a random-waypoint walk emits topology snapshots; broadcasting on a
   *stale* forward-set decision (computed one snapshot earlier) shows how
   delivery degrades with speed, and how the redundancy of flooding
   absorbs it;
2. the collision MAC shows delivery collapsing under zero jitter and
   recovering as jitter grows.

Run:  python examples/mobility_broadcast.py
"""

import random

from repro.algorithms.base import Timing
from repro.algorithms.flooding import Flooding
from repro.algorithms.generic import GenericStatic
from repro.core.priority import IdPriority
from repro.graph.geometry import Area, random_points
from repro.graph.mobility import RandomWaypointModel
from repro.graph.unit_disk import range_for_average_degree
from repro.sim.engine import BroadcastSession, SimulationEnvironment
from repro.sim.mac import CollisionMac


def stale_backbone_delivery(max_speed: float, trials: int = 10) -> tuple:
    """Delivery when forwarding decisions lag one snapshot behind."""
    rng = random.Random(int(max_speed * 100) + 7)
    delivered_pruned, delivered_flood = [], []
    for _ in range(trials):
        positions = random_points(50, Area(), rng)
        radius, _links = range_for_average_degree(positions, 8.0)
        model = RandomWaypointModel(
            positions, radius, rng,
            min_speed=max(0.01, max_speed / 2), max_speed=max(0.02, max_speed),
        )
        before = model.snapshot()
        if not before.topology.is_connected():
            continue
        # Decide the forward set on the old topology ...
        env_before = SimulationEnvironment(before.topology, IdPriority())
        protocol = GenericStatic(hops=2)
        protocol.prepare(env_before)
        stale_forward = protocol.forward_set
        # ... then the nodes move and the broadcast runs on the new one.
        model.advance(2.0)
        after = model.snapshot()
        if not after.topology.is_connected():
            continue
        env_after = SimulationEnvironment(after.topology, IdPriority())
        replay = GenericStatic(hops=2)
        replay.prepare(env_after)
        replay._forward_set = set(stale_forward)  # inject the stale set
        outcome = BroadcastSession(
            env_after, replay, source=0, rng=rng
        ).run()
        delivered_pruned.append(len(outcome.delivered) / 50)
        flood = BroadcastSession(
            env_after, Flooding(), source=0, rng=rng
        ).run()
        delivered_flood.append(len(flood.delivered) / 50)
    if not delivered_pruned:
        return float("nan"), float("nan")
    return (
        sum(delivered_pruned) / len(delivered_pruned),
        sum(delivered_flood) / len(delivered_flood),
    )


def collision_recovery() -> None:
    print("\nMAC collisions vs forwarding jitter (flooding, n=40, d=10):")
    rng = random.Random(3)
    from repro.graph.generators import random_connected_network

    net = random_connected_network(40, 10.0, rng)
    print(f"  {'jitter':>7s} {'delivery':>9s} {'collisions':>11s}")
    for jitter in (0.0, 0.5, 2.0, 8.0):
        delivered, collisions = [], []
        for trial in range(10):
            mac = CollisionMac(delay=1.0, jitter=jitter, window=0.25)
            outcome = BroadcastSession(
                SimulationEnvironment(net.topology, IdPriority()),
                Flooding(),
                source=0,
                rng=random.Random(trial),
                mac=mac,
            ).run()
            delivered.append(len(outcome.delivered) / 40)
            collisions.append(mac.collisions)
        print(
            f"  {jitter:7.1f} {sum(delivered) / 10:9.1%} "
            f"{sum(collisions) / 10:11.1f}"
        )
    print("  (a small jitter restores deliverability, as the paper notes)")


def main() -> None:
    print("delivery with one-snapshot-stale forward sets (n=50, d=8):")
    print(f"  {'max speed':>9s} {'pruned':>8s} {'flooding':>9s}")
    for speed in (0.0, 1.0, 3.0, 6.0):
        pruned, flood = stale_backbone_delivery(speed)
        print(f"  {speed:9.1f} {pruned:8.1%} {flood:9.1%}")
    print(
        "  (flooding's redundancy absorbs mobility; pruned sets degrade "
        "gracefully)"
    )
    collision_recovery()


if __name__ == "__main__":
    main()
