"""Broadcasting over a network with heterogeneous transmission powers.

Paper assumption 3 requires bidirectional links and points at sublayers
that filter unidirectional ones out.  This example runs that pipeline:

1. nodes get heterogeneous transmission ranges (e.g. mixed battery
   states), producing *directed* links — a strong sender reaches a weak
   node that cannot answer;
2. the bidirectional abstraction keeps only the symmetric core;
3. the broadcast framework runs on the core, with hello acknowledgements
   and replacement paths guaranteed to be two-way.

Run:  python examples/heterogeneous_ranges.py
"""

import random

from repro.algorithms.base import Timing
from repro.algorithms.generic import GenericSelfPruning
from repro.graph.bidirectional import (
    bidirectional_abstraction,
    links_from_ranges,
)
from repro.graph.geometry import Area, random_points
from repro.sim.engine import run_broadcast


def main() -> None:
    rng = random.Random(23)
    area = Area()
    while True:
        positions = random_points(50, area, rng)
        # Two device classes: strong (range 35) and weak (range 22).
        ranges = {
            node: 35.0 if rng.random() < 0.5 else 22.0
            for node in positions
        }
        links = links_from_ranges(positions, ranges)
        core = bidirectional_abstraction(links)
        if core.is_connected():
            break

    directed = len(links.links())
    asymmetric = directed - 2 * core.edge_count()
    print(f"nodes                 : {len(positions)}")
    print(f"directed links        : {directed}")
    print(
        f"unidirectional links  : {asymmetric} "
        f"({asymmetric / directed:.0%} of all links, filtered out)"
    )
    print(f"bidirectional core    : {core.edge_count()} symmetric links")

    outcome = run_broadcast(
        core,
        GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2),
        source=0,
        rng=rng,
    )
    print(
        f"\nbroadcast on the core : {outcome.forward_count} forward nodes, "
        f"{len(outcome.delivered)}/{core.node_count()} delivered"
    )
    assert len(outcome.delivered) == core.node_count()
    print(
        "every replacement path is two-way usable — assumption 3 restored "
        "by the abstraction sublayer"
    )


if __name__ == "__main__":
    main()
