"""Link-state routing over MPR floods — broadcast as a routing substrate.

MPR exists to flood topology-control messages in OLSR; this example runs
that pipeline end to end on a random deployment:

1. every node floods one TC advertisement through the actual broadcast
   engine using the MPR protocol,
2. nodes assemble link-state databases from what reached them,
3. unicast packets are forwarded hop by hop, each node consulting only
   its own database,
4. the dissemination cost is compared against flooding every TC, and the
   CDS-backbone router is shown as the lighter-weight alternative.

Run:  python examples/olsr_link_state.py
"""

import random

from repro.algorithms.generic import GenericStatic
from repro.core.priority import DegreePriority
from repro.graph.generators import random_connected_network
from repro.routing.backbone import BackboneRouter
from repro.routing.link_state import LinkStateRouting
from repro.sim.engine import SimulationEnvironment


def main() -> None:
    rng = random.Random(42)
    net = random_connected_network(40, 8.0, rng)
    graph = net.topology
    print(
        f"deployment: {graph.node_count()} nodes, "
        f"{graph.edge_count()} links\n"
    )

    # --- 1-2: disseminate topology control messages via MPR ----------
    routing = LinkStateRouting(graph, rng)
    routing.disseminate()
    complete = sum(
        1
        for state in routing.nodes.values()
        if state.topology().edge_count() == graph.edge_count()
    )
    print(
        f"TC dissemination: {routing.total_transmissions} transmissions "
        f"(flooding would need {routing.flooding_transmissions}; "
        f"{routing.savings():.0%} saved)"
    )
    print(f"complete link-state databases: {complete}/{graph.node_count()}")

    # --- 3: hop-by-hop unicast on the learned tables ------------------
    print("\nhop-by-hop routes (each hop consults its own database):")
    for _ in range(5):
        s, t = rng.sample(graph.nodes(), 2)
        path = routing.route(s, t)
        optimal = graph.shortest_path(s, t)
        print(
            f"  {s:3d} -> {t:3d}: {path}  "
            f"({len(path) - 1} hops, optimal {len(optimal) - 1})"
        )

    # --- 4: the CDS backbone as the lighter alternative ---------------
    env = SimulationEnvironment(graph, DegreePriority())
    static = GenericStatic(hops=2)
    static.prepare(env)
    router = BackboneRouter(graph, static.forward_set)
    pairs = [tuple(rng.sample(graph.nodes(), 2)) for _ in range(50)]
    print(
        f"\nCDS backbone alternative: {len(router.backbone)} nodes keep "
        f"routing state (vs all {graph.node_count()} in link-state); "
        f"mean path stretch {router.mean_stretch(pairs):.2f}x"
    )


if __name__ == "__main__":
    main()
