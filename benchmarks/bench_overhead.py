"""Packet-size overhead: the TDP versus PDP trade, measured.

The paper (Section 6.3): "PDP avoids the extra cost in TDP introduced by
piggybacking 2-hop information with the broadcast packet, but achieves
almost the same performance improvement."  With abstract packet sizes
(one unit per carried node id) we can check both halves: TDP's forward
counts are no better than PDP's by much, while its transmitted volume is
far larger.
"""

import random
import statistics

from conftest import write_result

from repro.algorithms.dominant_pruning import (
    DominantPruning,
    PartialDominantPruning,
    TotalDominantPruning,
)
from repro.core.priority import DegreePriority
from repro.graph.generators import random_connected_network
from repro.sim.engine import BroadcastSession, SimulationEnvironment

TRIALS = 20
N = 50
DEGREE = 10.0


def _measure(protocol_cls):
    rng = random.Random(31)
    forwards, volume = [], []
    for trial in range(TRIALS):
        net = random_connected_network(N, DEGREE, rng)
        env = SimulationEnvironment(net.topology, DegreePriority())
        protocol = protocol_cls()
        protocol.prepare(env)
        outcome = BroadcastSession(
            env, protocol, rng.choice(net.topology.nodes()),
            rng=random.Random(trial),
        ).run()
        assert outcome.delivered == set(net.topology.nodes())
        forwards.append(outcome.forward_count)
        volume.append(outcome.bytes_transmitted)
    return statistics.mean(forwards), statistics.mean(volume)


def test_tdp_pays_in_packet_size(benchmark):
    def sweep():
        return {
            "DP": _measure(DominantPruning),
            "TDP": _measure(TotalDominantPruning),
            "PDP": _measure(PartialDominantPruning),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"forwards vs transmitted volume (n={N}, d={DEGREE:g})"]
    lines += [
        f"  {name:4s}: {fwd:6.2f} forwards, {vol:8.1f} size units"
        for name, (fwd, vol) in results.items()
    ]
    write_result("overhead", "\n".join(lines))

    dp_fwd, dp_vol = results["DP"]
    tdp_fwd, tdp_vol = results["TDP"]
    pdp_fwd, pdp_vol = results["PDP"]
    # Both refinements beat DP on forwards.
    assert tdp_fwd <= dp_fwd * 1.02
    assert pdp_fwd <= dp_fwd * 1.02
    # PDP achieves almost TDP's improvement ...
    assert pdp_fwd <= tdp_fwd * 1.15
    # ... without TDP's piggybacking cost (per-unit volume much lower).
    assert tdp_vol > pdp_vol * 1.5
    assert abs(pdp_vol - dp_vol) <= dp_vol * 0.25
