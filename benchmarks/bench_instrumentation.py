"""Instrumentation overhead benchmark: counters on vs. off.

The event-bus refactor promises that observability is (close to) free
when disabled: the null bus skips event construction and counter sites
are a single ``if _STACK:`` check.  This benchmark times the same sweep
three ways — baseline (no bus, no counters), counters on, and a smaller
recording-bus leg — and records the ratios so the trajectory is tracked
across PRs::

    PYTHONPATH=src python benchmarks/bench_instrumentation.py
    PYTHONPATH=src python benchmarks/bench_instrumentation.py --smoke
    PYTHONPATH=src python benchmarks/bench_instrumentation.py --gate 1.05

``--gate`` exits non-zero when the counters-on run is slower than the
baseline by more than the given factor (the CI smoke gate uses a
generous factor because shared runners are noisy; the recorded full-run
numbers are the authoritative measurement).

Wall clocks on shared machines drift by 10–20% between sessions, so the
cost of the refactor *itself* (no-op bus vs. the pre-refactor engine)
cannot be judged against a number recorded in an earlier session.
``--compare-src PATH`` measures it honestly: point PATH at a checkout of
the pre-refactor tree (``git worktree add .bench_pre <commit>``) and the
benchmark interleaves subprocess runs of both trees A/B/A/B in the same
session, recording the median ratio::

    git worktree add .bench_pre <pre-refactor-commit>
    PYTHONPATH=src python benchmarks/bench_instrumentation.py \\
        --compare-src .bench_pre/src
    git worktree remove .bench_pre
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from typing import List, Optional, Tuple

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.experiments.config import RunSettings
from repro.experiments.figures import fig11_selection
from repro.experiments.runner import run_figure

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Default output location: repo root, next to BENCH_parallel.json.
DEFAULT_OUT = os.path.join(_REPO_ROOT, "BENCH_instrumentation.json")

#: The pre-refactor serial wall clock recorded by bench_parallel.py — the
#: full sweep here uses identical settings, so baseline_seconds compares
#: directly against its serial_seconds.
PARALLEL_RECORD = os.path.join(_REPO_ROOT, "BENCH_parallel.json")

FULL_NS = (20, 40, 60, 80, 100)
SMOKE_NS = (15, 20)


def _settings(smoke: bool, instrument: bool) -> RunSettings:
    if smoke:
        return RunSettings(
            min_runs=4, max_runs=6, relative_half_width=0.5,
            seed=20030519, instrument=instrument,
        )
    return RunSettings(
        min_runs=10, max_runs=25, relative_half_width=0.02,
        seed=20030519, instrument=instrument,
    )


def _time_sweep(smoke: bool, instrument: bool) -> float:
    ns = SMOKE_NS if smoke else FULL_NS
    figure = fig11_selection(ns=ns)
    start = time.perf_counter()
    run_figure(figure, _settings(smoke, instrument))
    return time.perf_counter() - start


#: Child process body for the A/B comparison: both trees run the exact
#: same uninstrumented sweep in a fresh interpreter and print the wall
#: clock of the sweep alone (imports excluded).
_CHILD_SNIPPET = """\
import sys, time
sys.path.insert(0, {src!r})
from repro.experiments.config import RunSettings
from repro.experiments.figures import fig11_selection
from repro.experiments.runner import run_figure
settings = RunSettings(
    min_runs={min_runs}, max_runs={max_runs},
    relative_half_width={rhw}, seed=20030519,
)
figure = fig11_selection(ns={ns!r})
start = time.perf_counter()
run_figure(figure, settings)
print(time.perf_counter() - start)
"""


def _run_child(src: str, smoke: bool, ns: Tuple[int, ...]) -> float:
    if smoke:
        min_runs, max_runs, rhw = 4, 6, 0.5
    else:
        min_runs, max_runs, rhw = 10, 25, 0.02
    snippet = _CHILD_SNIPPET.format(
        src=os.path.abspath(src), min_runs=min_runs, max_runs=max_runs,
        rhw=rhw, ns=tuple(ns),
    )
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        check=True, capture_output=True, text=True,
    )
    return float(result.stdout.strip().splitlines()[-1])


def compare_against(pre_src: str, smoke: bool, repeats: int) -> dict:
    """Interleaved same-session A/B: ``pre_src`` tree vs. this tree."""
    ns = SMOKE_NS if smoke else FULL_NS
    current_src = os.path.join(_REPO_ROOT, "src")
    pre: List[float] = []
    post: List[float] = []
    for _ in range(repeats):
        pre.append(_run_child(pre_src, smoke, ns))
        post.append(_run_child(current_src, smoke, ns))
    pre_median = statistics.median(pre)
    post_median = statistics.median(post)
    return {
        "compare_src": pre_src,
        "pre_refactor_seconds": round(pre_median, 3),
        "post_refactor_seconds": round(post_median, 3),
        "vs_pre_refactor_ratio": (
            round(post_median / pre_median, 4) if pre_median else None
        ),
        "vs_pre_refactor_basis": "same_session_interleaved_ab",
    }


def run_comparison(smoke: bool, repeats: int) -> dict:
    """Time the Fig. 11 sweep with instrumentation off and on."""
    ns = SMOKE_NS if smoke else FULL_NS
    # Interleave the legs: shared machines drift by 10%+ over minutes,
    # and an off/off/off-then-on/on/on order folds that drift straight
    # into the ratio.
    baseline: List[float] = []
    instrumented: List[float] = []
    for _ in range(repeats):
        baseline.append(_time_sweep(smoke, instrument=False))
        instrumented.append(_time_sweep(smoke, instrument=True))
    base = statistics.median(baseline)
    inst = statistics.median(instrumented)
    record = {
        "benchmark": "bench_instrumentation",
        "figure": "fig11",
        "mode": "smoke" if smoke else "full",
        "ns": list(ns),
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "baseline_seconds": round(base, 3),
        "instrumented_seconds": round(inst, 3),
        "overhead_ratio": round(inst / base, 4) if base else None,
    }
    if not smoke and os.path.exists(PARALLEL_RECORD):
        # The full sweep uses bench_parallel's serial settings verbatim,
        # so its recorded serial_seconds is a same-settings reference —
        # but one from an earlier session, where machine drift dominates.
        # ``--compare-src`` overrides this with the authoritative
        # same-session A/B number.
        with open(PARALLEL_RECORD, encoding="utf-8") as handle:
            prior = json.load(handle)
        if prior.get("mode") == "full":
            reference = prior.get("serial_seconds")
            record["pre_refactor_serial_seconds"] = reference
            if reference:
                record["vs_pre_refactor_ratio"] = round(base / reference, 4)
                record["vs_pre_refactor_basis"] = "cross_session_record"
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Instrumentation on/off overhead benchmark."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sweep for CI; pair with --gate for a pass/fail exit",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timed repetitions per leg (median is recorded)",
    )
    parser.add_argument(
        "--gate", type=float, default=None,
        help="fail when instrumented/baseline exceeds this ratio",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="where to write the JSON record "
        "(default: BENCH_instrumentation.json)",
    )
    parser.add_argument(
        "--compare-src", default=None,
        help="src/ directory of a pre-refactor checkout; interleaves "
        "subprocess runs of both trees for a same-session refactor-cost "
        "ratio",
    )
    args = parser.parse_args(argv)

    record = run_comparison(args.smoke, max(1, args.repeats))
    if args.compare_src:
        record.update(
            compare_against(args.compare_src, args.smoke, max(1, args.repeats))
        )
    if args.gate is not None:
        record["gate_ratio"] = args.gate
        record["gate_passed"] = record["overhead_ratio"] <= args.gate
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if args.gate is not None and not record["gate_passed"]:
        print(
            f"FAIL: instrumentation overhead ratio "
            f"{record['overhead_ratio']} exceeds gate {args.gate}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
