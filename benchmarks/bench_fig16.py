"""Figure 16: first-receipt-with-backoff — SBA vs Generic.

Expected shape (paper Section 7.2): Generic significantly outperforms
SBA, because SBA demands direct neighbor coverage by visited nodes while
the coverage condition also accepts indirect coverage through
higher-priority intermediates.
"""

from conftest import run_figure_bench, series_total

from repro.experiments.figures import fig16_backoff


def test_fig16_backoff(benchmark):
    tables = run_figure_bench(benchmark, fig16_backoff, "fig16")
    for table in tables:
        sba = series_total(table, "SBA")
        generic = series_total(table, "Generic")
        # A significant, not marginal, win.
        assert generic <= sba * 0.9, table.title
