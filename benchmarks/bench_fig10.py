"""Figure 10: timing options — Static vs FR vs FRB vs FRBD.

Expected shape (paper Section 7.1): the dynamic algorithms beat the
static one, and the backoff variants beat plain first-receipt; FRBD is
at worst on par with FRB.
"""

from conftest import run_figure_bench, series_total

from repro.experiments.figures import fig10_timing


def test_fig10_timing(benchmark):
    tables = run_figure_bench(benchmark, fig10_timing, "fig10")
    for table in tables:
        static = series_total(table, "Static")
        fr = series_total(table, "FR")
        frb = series_total(table, "FRB")
        frbd = series_total(table, "FRBD")
        # Dynamic beats static.
        assert fr <= static * 1.02, table.title
        # Backoff beats plain first-receipt.
        assert frb <= fr * 1.02, table.title
        assert frbd <= fr * 1.05, table.title
