"""Figure 13: priority functions — ID vs Degree vs NCR.

Expected shape (paper Section 7.1): NCR <= Degree <= ID in sparse
networks, with Degree close to NCR; in dense networks all three stay
close.
"""

from conftest import run_figure_bench, series_total

from repro.experiments.figures import fig13_priority


def test_fig13_priority(benchmark):
    tables = run_figure_bench(benchmark, fig13_priority, "fig13")
    sparse, dense = tables

    # Sparse: Degree and NCR clearly beat ID.
    assert series_total(sparse, "Degree") <= series_total(sparse, "ID")
    assert series_total(sparse, "NCR") <= series_total(sparse, "ID")
    # ... and Degree is very close to NCR.
    assert series_total(sparse, "Degree") <= series_total(sparse, "NCR") * 1.10

    # Dense: the importance of a good indicator shrinks — the three
    # metrics land within 15% of each other (paper: "stay very close").
    values = [
        series_total(dense, label) for label in ("ID", "Degree", "NCR")
    ]
    assert max(values) <= min(values) * 1.15
    # ... and the ordering NCR <= ID still holds on aggregate.
    assert series_total(dense, "NCR") <= series_total(dense, "ID") * 1.02
