"""Ablation benchmarks for the framework's design choices.

Three ablations the paper discusses but does not plot:

* **Piggyback depth h** — Section 7.2 observes that carrying the second
  last visited node (h = 2) barely improves on h = 1; we sweep h = 0, 1,
  2, 4 for the first-receipt generic protocol.
* **Backoff window** — the FRB advantage comes from overhearing same-wave
  forwarders; shrinking the window below the MAC delay must erase it.
* **Strong vs generic condition** — the O(D^2) strong condition trades a
  slightly larger forward set for a cheaper check (Section 6); we measure
  both sides of that trade.
"""

import random
import statistics

from conftest import write_result

from repro.algorithms.base import Timing
from repro.algorithms.generic import GenericSelfPruning
from repro.core.priority import IdPriority
from repro.graph.generators import random_connected_network
from repro.sim.engine import BroadcastSession, SimulationEnvironment

TRIALS = 20
N = 60
DEGREE = 6.0


def _mean_forward(protocol_factory, seed: int = 17) -> float:
    rng = random.Random(seed)
    counts = []
    for trial in range(TRIALS):
        net = random_connected_network(N, DEGREE, rng)
        env = SimulationEnvironment(net.topology, IdPriority())
        protocol = protocol_factory()
        protocol.prepare(env)
        source = rng.choice(net.topology.nodes())
        outcome = BroadcastSession(
            env, protocol, source, rng=random.Random(trial)
        ).run()
        assert outcome.delivered == set(net.topology.nodes())
        counts.append(outcome.forward_count)
    return statistics.mean(counts)


def test_ablation_piggyback_depth(benchmark):
    def sweep():
        return {
            h: _mean_forward(
                lambda h=h: GenericSelfPruning(
                    Timing.FIRST_RECEIPT, hops=2, piggyback_h=h
                )
            )
            for h in (0, 1, 2, 4)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["piggyback depth h -> mean forward nodes (FR, n=60, d=6)"]
    lines += [f"  h={h}: {value:.2f}" for h, value in results.items()]
    write_result("ablation_piggyback", "\n".join(lines))
    # Snooping alone (h=0) already works; h=1 helps; beyond that the
    # returns are marginal (within 5% of h=1), matching Section 7.2.
    assert results[1] <= results[0] * 1.02
    assert abs(results[2] - results[1]) <= results[1] * 0.05
    assert abs(results[4] - results[1]) <= results[1] * 0.05


def test_ablation_backoff_window(benchmark):
    def sweep():
        return {
            window: _mean_forward(
                lambda w=window: GenericSelfPruning(
                    Timing.FIRST_RECEIPT_BACKOFF,
                    hops=2,
                    backoff_window=w,
                )
            )
            for window in (0.1, 1.0, 4.0, 10.0, 30.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["backoff window -> mean forward nodes (FRB, n=60, d=6)"]
    lines += [f"  w={w:g}: {value:.2f}" for w, value in results.items()]
    write_result("ablation_backoff", "\n".join(lines))
    # A window below the unit MAC delay cannot overhear same-wave
    # forwarders: it behaves like FR.  Windows well above the delay prune
    # strictly more.
    assert results[10.0] <= results[0.1] * 0.98
    # Diminishing returns: 30 is no big win over 10.
    assert results[30.0] <= results[10.0] * 1.05


def test_ablation_strong_condition(benchmark):
    def sweep():
        generic = _mean_forward(
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
        )
        strong = _mean_forward(
            lambda: GenericSelfPruning(
                Timing.FIRST_RECEIPT, hops=2, strong=True
            )
        )
        return {"generic": generic, "strong": strong}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "ablation_strong",
        "condition -> mean forward nodes (FR, n=60, d=6)\n"
        f"  generic: {results['generic']:.2f}\n"
        f"  strong : {results['strong']:.2f}",
    )
    # Strong is a sufficient condition for generic: it prunes no more.
    assert results["generic"] <= results["strong"] * 1.02
    # ... but stays within a modest factor (the paper's justification for
    # using it in Rule-k / LENWB).
    assert results["strong"] <= results["generic"] * 1.35
