"""Broadcast service benchmark: stream throughput plus the byte-identity
gate between the service path and the legacy single-broadcast engine.

Run directly for the full record (written to ``BENCH_traffic.json`` at
the repo root so the perf trajectory is tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_traffic.py
    PYTHONPATH=src python benchmarks/bench_traffic.py --smoke
    PYTHONPATH=src python benchmarks/bench_traffic.py --out my.json

Two legs:

* **identity** — on every configured coverage backend (sets and bitset;
  numpy joins when installed), a one-message
  :class:`~repro.sim.traffic.SingleShot` service run must reproduce the
  legacy :class:`~repro.sim.engine.BroadcastSession` byte for byte:
  forward/delivered sets, receipt counts, designations, completion
  time, byte counts, and the typed event stream.  Any mismatch fails
  the benchmark and is localised with a ``first_divergence`` JSON path.
* **throughput** — the service drives Poisson streams over a large
  deployment (1000 nodes in full mode) at a ladder of offered loads and
  records simulated messages per wall-clock second per point.

``--smoke`` shrinks both legs to seconds for the CI gate.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.algorithms.base import Timing
from repro.algorithms.dominant_pruning import DominantPruning
from repro.algorithms.flooding import Flooding
from repro.algorithms.generic import GenericSelfPruning
from repro.graph.generators import random_connected_network
from repro.sim.engine import BroadcastSession, SimulationEnvironment
from repro.sim.events import events_to_jsonl
from repro.sim.service import ServiceEngine
from repro.sim.traffic import PoissonTraffic, SingleShot

#: Default output location: repo root, next to EXPERIMENTS.md.
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_traffic.json",
)

#: Coverage backends the identity gate always covers; numpy is appended
#: at runtime when importable (it is an optional dependency).
BASE_BACKENDS = ("sets", "bitset")

IDENTITY_PROTOCOLS = (
    ("flooding", Flooding),
    ("FR", lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)),
    ("DP", DominantPruning),
)

FULL_RATES = (0.5, 2.0, 8.0)
SMOKE_RATES = (0.5, 2.0, 8.0)

SEED = 20030519


def first_divergence(legacy, service, path="$"):
    """The JSON path of the first byte difference, or ``None`` if equal."""
    if type(legacy) is not type(service):
        return (
            f"{path}: type {type(legacy).__name__} != "
            f"{type(service).__name__}"
        )
    if isinstance(legacy, dict):
        for key in sorted(set(legacy) | set(service)):
            if key not in legacy:
                return f"{path}.{key}: only in service payload"
            if key not in service:
                return f"{path}.{key}: only in legacy payload"
            found = first_divergence(legacy[key], service[key], f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(legacy, list):
        if len(legacy) != len(service):
            return f"{path}: length {len(legacy)} != {len(service)}"
        for index, (left, right) in enumerate(zip(legacy, service)):
            found = first_divergence(left, right, f"{path}[{index}]")
            if found is not None:
                return found
        return None
    if legacy != service:
        return f"{path}: legacy={legacy!r} service={service!r}"
    return None


def _backends() -> List[str]:
    backends = list(BASE_BACKENDS)
    try:
        import numpy  # noqa: F401
    except ImportError:
        pass
    else:
        backends.append("numpy")
    return backends


def _outcome_payload(outcome) -> Dict:
    """A broadcast outcome as plain JSON-able data, events included."""
    return {
        "forward_nodes": sorted(outcome.forward_nodes),
        "delivered": sorted(outcome.delivered),
        "transmissions": outcome.transmissions,
        "completion_time": outcome.completion_time,
        "bytes_transmitted": outcome.bytes_transmitted,
        "receipt_counts": {
            str(node): count
            for node, count in sorted(outcome.receipt_counts.items())
        },
        "designations": {
            str(node): sorted(designated)
            for node, designated in sorted(outcome.designations.items())
        },
        "events": events_to_jsonl(outcome.events).splitlines(),
    }


def check_identity(n: int, degree: float, seeds: int) -> Dict:
    """Legacy vs service single-message runs, per backend and protocol.

    Independent deployments per run (a shared graph would leak
    query-cache warmth); identical protocol, source, and decision-RNG
    seeds, so any divergence is the engines', not the inputs'.
    """
    checks = 0
    divergence = None
    ambient = os.environ.get("REPRO_COVERAGE_BACKEND")
    for backend in _backends():
        os.environ["REPRO_COVERAGE_BACKEND"] = backend
        for label, factory in IDENTITY_PROTOCOLS:
            for seed in range(seeds):
                payloads = []
                for _run in range(2):
                    net = random_connected_network(
                        n, degree, random.Random(SEED + seed)
                    )
                    graph = net.topology
                    env = SimulationEnvironment(graph)
                    protocol = factory()
                    protocol.prepare(env)
                    source = random.Random(seed).choice(graph.nodes())
                    rng = random.Random(SEED ^ seed)
                    if _run == 0:
                        outcome = BroadcastSession(
                            env, protocol, source, rng=rng,
                            collect_trace=True,
                            _deprecation_warning=False,
                        ).run()
                    else:
                        outcome = ServiceEngine(
                            env, protocol, SingleShot(source), rng=rng,
                            collect_trace=True,
                        ).run().single_outcome()
                    payloads.append(_outcome_payload(outcome))
                checks += 1
                found = first_divergence(payloads[0], payloads[1])
                if found is not None and divergence is None:
                    divergence = (
                        f"backend={backend} protocol={label} seed={seed} "
                        f"{found}"
                    )
    # Restore the ambient backend (CI matrixes it for the throughput leg).
    if ambient is None:
        os.environ.pop("REPRO_COVERAGE_BACKEND", None)
    else:
        os.environ["REPRO_COVERAGE_BACKEND"] = ambient
    return {
        "backends": _backends(),
        "protocols": [label for label, _ in IDENTITY_PROTOCOLS],
        "seeds_per_combination": seeds,
        "checks": checks,
        "divergence": divergence,
        "byte_identical": divergence is None,
    }


def measure_throughput(n: int, degree: float, count: int, rates) -> Dict:
    """Service messages per wall-clock second at each offered load."""
    graph = random_connected_network(n, degree, random.Random(SEED)).topology
    points = []
    for rate in rates:
        env = SimulationEnvironment(graph.copy())
        protocol = GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
        protocol.prepare(env)
        traffic = PoissonTraffic(
            rate=rate, count=count, seed=SEED, size_units=4
        )
        engine = ServiceEngine(
            env, protocol, traffic, rng=random.Random(SEED ^ int(rate * 1000))
        )
        start = time.perf_counter()
        outcome = engine.run()
        seconds = time.perf_counter() - start
        points.append(
            {
                "offered_rate": rate,
                "messages": len(outcome.messages),
                "delivered_messages": outcome.delivered_count,
                "goodput": round(outcome.goodput(), 6),
                "queue_depth_max": outcome.queue_depth_max,
                "messages_dropped": outcome.messages_dropped,
                "forward_set_reuses": outcome.forward_set_reuses,
                "wall_seconds": round(seconds, 4),
                "messages_per_second": (
                    round(len(outcome.messages) / seconds, 2)
                    if seconds
                    else None
                ),
            }
        )
    return {"n": n, "degree": degree, "count": count, "points": points}


def run_benchmark(smoke: bool) -> Dict:
    if smoke:
        identity = check_identity(n=40, degree=6.0, seeds=4)
        throughput = measure_throughput(
            n=60, degree=6.0, count=10, rates=SMOKE_RATES
        )
    else:
        identity = check_identity(n=200, degree=6.0, seeds=6)
        throughput = measure_throughput(
            n=1000, degree=6.0, count=30, rates=FULL_RATES
        )
    return {
        "benchmark": "bench_traffic",
        "mode": "smoke" if smoke else "full",
        "identity": identity,
        "throughput": throughput,
        "byte_identical": identity["byte_identical"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Broadcast service throughput + legacy byte-identity gate."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny fixtures; non-zero exit if the service diverges "
        "from the legacy engine",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="where to write the JSON record (default: BENCH_traffic.json)",
    )
    args = parser.parse_args(argv)

    record = run_benchmark(args.smoke)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if not record["byte_identical"]:
        print(
            "FAIL: byte-identity gate — the one-message service path "
            "diverges from the legacy engine.  First divergence:\n"
            f"  {record['identity']['divergence']}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_first_divergence_localises_the_mismatch():
    """The gate's failure message names the first divergent JSON path."""
    legacy = {"events": ["a", "b"], "forward_nodes": [1, 2]}
    service = {"events": ["a", "c"], "forward_nodes": [1, 2]}
    assert first_divergence(legacy, legacy) is None
    detail = first_divergence(legacy, service)
    assert detail == "$.events[1]: legacy='b' service='c'"
    assert "length" in first_divergence([1], [1, 2])
    assert "only in legacy" in first_divergence({"a": 1}, {})


def test_service_matches_legacy(benchmark):
    """pytest-benchmark entry: the smoke comparison must stay identical."""
    record = benchmark.pedantic(
        lambda: run_benchmark(smoke=True), rounds=1, iterations=1
    )
    assert record["byte_identical"], record["identity"]["divergence"]
    assert len(record["throughput"]["points"]) >= 3
    assert all(
        point["messages_per_second"] > 0
        for point in record["throughput"]["points"]
    )


if __name__ == "__main__":
    sys.exit(main())
