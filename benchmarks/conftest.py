"""Shared benchmark configuration.

Each ``bench_figXX`` module regenerates one paper figure: it runs the
figure's sweep under pytest-benchmark (one round — the sweep itself is
already an aggregate over many sampled networks) and writes the resulting
paper-style tables to ``benchmarks/results/<figure>.txt`` so the rows can
be inspected after the run and compared against EXPERIMENTS.md.

The sweeps use the paper's node counts thinned to {20, 40, 60, 80, 100}
and a bounded repetition rule (min 10 / max 25 samples per point instead
of CI-until-±1%) so the whole benchmark suite finishes in minutes.  The
CLI (``python -m repro.experiments <fig>``) runs the unbounded
paper-precision version.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import RunSettings

#: Thinned sweep used by every figure benchmark.
BENCH_NS = (20, 40, 60, 80, 100)

#: Bounded repetition settings for benchmark runs.
BENCH_SETTINGS = RunSettings(
    min_runs=10,
    max_runs=25,
    relative_half_width=0.02,
    seed=20030519,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> None:
    """Persist a figure's regenerated rows under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def bench_settings() -> RunSettings:
    return BENCH_SETTINGS


def run_figure_bench(benchmark, builder, name: str):
    """Run one figure sweep under the benchmark and persist its tables.

    Returns the list of :class:`~repro.metrics.results.ResultTable`, one
    per panel, for shape assertions in the calling benchmark module.
    """
    from repro.experiments.runner import run_figure
    from repro.metrics.results import format_table

    figure = builder(ns=BENCH_NS)
    tables = benchmark.pedantic(
        lambda: run_figure(figure, BENCH_SETTINGS), rounds=1, iterations=1
    )
    text = "\n\n".join(format_table(table) for table in tables)
    write_result(name, text)
    return tables


def series_total(table, label: str) -> float:
    """Sum of a series' means across the sweep (aggregate comparison)."""
    return sum(table.get_series(label).means())
