"""Latency ablation: the cost of backoff delays.

Section 4.1: the backoff "is done at the cost of prolonging the
completion time of the broadcast process", which is why the paper
recommends FR for "highly delay-sensitive applications" and FRBD
otherwise.  This benchmark measures the end-to-end completion times the
figures never show, alongside the forward counts they do.
"""

import random
import statistics

from conftest import write_result

from repro.algorithms.base import Timing
from repro.algorithms.generic import GenericSelfPruning, GenericStatic
from repro.core.priority import IdPriority
from repro.graph.generators import random_connected_network
from repro.sim.engine import BroadcastSession, SimulationEnvironment

TRIALS = 20
N = 60


def _measure(protocol_factory):
    rng = random.Random(77)
    latencies, forwards = [], []
    for trial in range(TRIALS):
        net = random_connected_network(N, 6.0, rng)
        env = SimulationEnvironment(net.topology, IdPriority())
        protocol = protocol_factory()
        protocol.prepare(env)
        outcome = BroadcastSession(
            env, protocol, rng.choice(net.topology.nodes()),
            rng=random.Random(trial),
        ).run()
        assert outcome.delivered == set(net.topology.nodes())
        latencies.append(outcome.completion_time)
        forwards.append(outcome.forward_count)
    return statistics.mean(latencies), statistics.mean(forwards)


def test_backoff_prolongs_completion(benchmark):
    def sweep():
        return {
            "Static": _measure(lambda: GenericStatic(hops=2)),
            "FR": _measure(
                lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
            ),
            "FRB": _measure(
                lambda: GenericSelfPruning(
                    Timing.FIRST_RECEIPT_BACKOFF, hops=2
                )
            ),
            "FRBD": _measure(
                lambda: GenericSelfPruning(
                    Timing.FIRST_RECEIPT_BACKOFF_DEGREE, hops=2
                )
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"completion time vs forward count (n={N}, d=6)"]
    lines += [
        f"  {name:7s}: latency {latency:6.2f}, forwards {fwd:5.2f}"
        for name, (latency, fwd) in results.items()
    ]
    write_result("latency", "\n".join(lines))

    # No extra end-to-end delay for static and FR (paper Section 4.1) —
    # both complete in O(eccentricity) MAC delays.
    assert results["FR"][0] <= results["Static"][0] * 1.3
    # Backoff timings pay real latency ...
    assert results["FRB"][0] > results["FR"][0] * 1.5
    assert results["FRBD"][0] > results["FR"][0]
    # ... to buy smaller forward sets.
    assert results["FRB"][1] <= results["FR"][1]
