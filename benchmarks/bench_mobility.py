"""Mobility ablation: stale versus conservative forward sets, plus the
incremental-delta A/B that gates the topology-delta engine.

The paper: "the effect of moderate mobility can be balanced by a slight
increase in the broadcast redundancy."  We quantify both sides: nodes
move between the decision snapshot and the broadcast; the *stale* exact
forward set loses coverage with speed, while the *conservative* set
(union-neighbors / intersection-links, ``repro.core.conservative``)
holds delivery near 100% at the cost of a larger forward set.

Run directly for the delta-engine A/B (written to
``BENCH_mobility_delta.json`` at the repo root so the perf trajectory is
tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_mobility.py
    PYTHONPATH=src python benchmarks/bench_mobility.py --smoke

The A/B times :func:`repro.experiments.runner.run_mobility_sweep` with
``incremental=True`` (one mutable :class:`Topology` mutated through
``apply_delta``, dirty-scoped re-decisions) against ``incremental=False``
(full rebuild + full re-decide per step) on a 100-node random-waypoint
fixture, under **both** coverage backends, and exits non-zero if any
step's forward set or flip counts diverge — the equivalence gate the CI
smoke job runs.  The full mode additionally gates on a >= 3x per-step
speedup.
"""

import argparse
import json
import os
import random
import statistics
import sys
import time
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from bench_parallel import first_divergence
from conftest import write_result

from repro.algorithms.precomputed import PrecomputedForwardSet
from repro.core.conservative import conservative_forward_set
from repro.core.coverage import coverage_condition
from repro.core.priority import DegreePriority, IdPriority
from repro.core.views import local_view
from repro.experiments.runner import run_mobility_sweep
from repro.graph.geometry import Area, random_points
from repro.graph.mobility import RandomWaypointModel
from repro.graph.unit_disk import range_for_average_degree
from repro.sim.engine import BroadcastSession, SimulationEnvironment

SCHEME = IdPriority()
TRIALS = 15
N = 30


def _exact_forward_set(graph):
    return {
        v
        for v in graph.nodes()
        if not coverage_condition(local_view(graph, v, 2, SCHEME), v)
    }


def _trial(seed: int, speed: float):
    rng = random.Random(seed)
    for _attempt in range(200):
        positions = random_points(N, Area(), rng)
        model = RandomWaypointModel(
            positions, radius=35.0, rng=rng,
            min_speed=max(0.01, speed / 2), max_speed=max(0.02, speed),
        )
        decision = model.snapshot().topology
        model.advance(2.0)
        broadcast_time = model.snapshot().topology
        if decision.is_connected() and broadcast_time.is_connected():
            break
    else:  # pragma: no cover - connectivity at this density is easy
        raise RuntimeError("no connected snapshot pair")

    results = {}
    for name, forward in (
        ("stale", _exact_forward_set(decision)),
        ("conservative", conservative_forward_set(
            decision, broadcast_time, SCHEME, k=2
        )),
    ):
        env = SimulationEnvironment(broadcast_time, SCHEME)
        source = min(forward) if forward else 0
        outcome = BroadcastSession(
            env,
            PrecomputedForwardSet(forward, name=name),
            source,
            rng=random.Random(seed),
        ).run()
        results[name] = (
            len(outcome.delivered) / N,
            len(forward),
        )
    return results


def test_conservative_views_absorb_mobility(benchmark):
    def sweep():
        table = {}
        for speed in (0.0, 2.0, 5.0):
            stale_delivery, stale_size = [], []
            cons_delivery, cons_size = [], []
            for trial in range(TRIALS):
                results = _trial(1000 * trial + int(speed * 10), speed)
                stale_delivery.append(results["stale"][0])
                stale_size.append(results["stale"][1])
                cons_delivery.append(results["conservative"][0])
                cons_size.append(results["conservative"][1])
            table[speed] = (
                statistics.mean(stale_delivery),
                statistics.mean(stale_size),
                statistics.mean(cons_delivery),
                statistics.mean(cons_size),
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "mobility: stale vs conservative forward sets (n=30, 2s gap)",
        f"  {'speed':>6s} {'stale del.':>11s} {'stale fwd':>10s} "
        f"{'cons del.':>10s} {'cons fwd':>9s}",
    ]
    for speed, (sd, ss, cd, cs) in table.items():
        lines.append(
            f"  {speed:6.1f} {sd:11.1%} {ss:10.1f} {cd:10.1%} {cs:9.1f}"
        )
    write_result("mobility", "\n".join(lines))

    # Zero speed: both are exact and fully deliver.
    assert table[0.0][0] > 0.999
    assert table[0.0][2] > 0.999
    # Under motion, the conservative set delivers at least as well ...
    assert table[5.0][2] >= table[5.0][0]
    # ... at the cost of some extra redundancy (the paper's trade).
    assert table[5.0][3] >= table[5.0][1]
    # And the conservative set keeps delivery high under fast motion.
    assert table[5.0][2] > 0.97


# ----------------------------------------------------------------------
# Incremental delta engine A/B (BENCH_mobility_delta.json)
# ----------------------------------------------------------------------

#: Default output location: repo root, next to EXPERIMENTS.md.
DELTA_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_mobility_delta.json",
)

DELTA_N = 100
DELTA_DEGREE = 6.0
DELTA_SEED = 11
FULL_STEPS = 40
SMOKE_STEPS = 8
BACKENDS = ("bitset", "sets")


def _delta_fixture() -> RandomWaypointModel:
    """The 100-node mobility fixture both sweep legs replay.

    Slow walkers (0.02..0.05 distance units per time unit in a 100x100
    area, radius calibrated for average degree ~6) so most steps flip a
    handful of links at most — the moderate-mobility regime the
    incremental engine is for.  Both legs construct this identically and
    only :meth:`advance` draws from the RNG, so their mobility traces
    are byte-identical.
    """
    rng = random.Random(DELTA_SEED)
    positions = random_points(DELTA_N, Area(), rng)
    radius, _ = range_for_average_degree(positions, DELTA_DEGREE)
    return RandomWaypointModel(
        positions, radius=radius, rng=rng,
        min_speed=0.02, max_speed=0.05,
    )


def _sweep_payload(steps) -> list:
    return [
        {
            "step": entry.step,
            "forward": list(entry.forward),
            "added": entry.added_edges,
            "removed": entry.removed_edges,
        }
        for entry in steps
    ]


def run_delta_ab(smoke: bool, jobs: int = 4) -> dict:
    """Time incremental vs rebuild sweeps under both coverage backends.

    The equivalence gate compares the full per-step payload (forward
    sets and flip counts) with :func:`bench_parallel.first_divergence`,
    so a failure names the exact step and field that diverged.  A third
    leg replays the same fixture through the sharded driver
    (``shards=(2, 2)``) on a real fork pool — ``identity_jobs`` is at
    least 2 even on a single-core box, matching ``bench_parallel``'s
    convention — and holds it to the same gate.  Timing claims clamp to
    the core count (``jobs_effective``); identity claims do not.
    """
    steps = SMOKE_STEPS if smoke else FULL_STEPS
    dt = 1.0
    cores = os.cpu_count() or 1
    jobs_effective = max(1, min(jobs, cores))
    identity_jobs = max(2, jobs_effective)
    backends = {}
    divergence = None
    for backend in BACKENDS:
        saved = os.environ.get("REPRO_COVERAGE_BACKEND")
        os.environ["REPRO_COVERAGE_BACKEND"] = backend
        try:
            start = time.perf_counter()
            incremental = run_mobility_sweep(
                _delta_fixture(), steps, dt, scheme=DegreePriority(), k=2
            )
            incremental_seconds = time.perf_counter() - start
            start = time.perf_counter()
            rebuild = run_mobility_sweep(
                _delta_fixture(), steps, dt, scheme=DegreePriority(), k=2,
                incremental=False,
            )
            rebuild_seconds = time.perf_counter() - start
            start = time.perf_counter()
            sharded = run_mobility_sweep(
                _delta_fixture(), steps, dt, scheme=DegreePriority(), k=2,
                shards=(2, 2), jobs=identity_jobs,
            )
            sharded_seconds = time.perf_counter() - start
        finally:
            if saved is None:
                del os.environ["REPRO_COVERAGE_BACKEND"]
            else:
                os.environ["REPRO_COVERAGE_BACKEND"] = saved
        found = first_divergence(
            _sweep_payload(rebuild), _sweep_payload(incremental)
        )
        if found is None:
            found = first_divergence(
                _sweep_payload(rebuild), _sweep_payload(sharded)
            )
            if found is not None:
                found = f"(sharded leg) {found}"
        if found is not None and divergence is None:
            divergence = f"[{backend}] {found}"
        backends[backend] = {
            "incremental_seconds": round(incremental_seconds, 3),
            "rebuild_seconds": round(rebuild_seconds, 3),
            "sharded_seconds": round(sharded_seconds, 3),
            "incremental_per_step_ms": round(
                1000 * incremental_seconds / steps, 3
            ),
            "rebuild_per_step_ms": round(1000 * rebuild_seconds / steps, 3),
            "speedup": round(rebuild_seconds / incremental_seconds, 3)
            if incremental_seconds else None,
            "redecided_total": sum(s.redecided for s in incremental),
            "redecided_rebuild": sum(s.redecided for s in rebuild),
            "flip_steps": sum(
                1 for s in incremental if s.added_edges or s.removed_edges
            ),
        }
    speedups = [
        entry["speedup"] for entry in backends.values()
        if entry["speedup"] is not None
    ]
    return {
        "benchmark": "bench_mobility_delta",
        "mode": "smoke" if smoke else "full",
        "n": DELTA_N,
        "degree": DELTA_DEGREE,
        "steps": steps,
        "dt": dt,
        "scheme": "degree",
        "k": 2,
        "cpu_count": cores,
        "jobs_requested": jobs,
        "jobs_effective": jobs_effective,
        "identity_jobs": identity_jobs,
        "backends": backends,
        "min_speedup": round(min(speedups), 3) if speedups else None,
        "divergence": divergence,
        "equivalent": divergence is None,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Incremental-delta vs full-rebuild mobility sweep."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short trace; non-zero exit only on an equivalence failure",
    )
    parser.add_argument(
        "--out", default=DELTA_OUT,
        help="where to write the JSON record "
        "(default: BENCH_mobility_delta.json)",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="workers for the sharded identity leg; timing clamps to "
        "the core count, identity runs on >= 2 real fork workers "
        "regardless (default 4)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"argument --jobs: must be >= 1, got {args.jobs}")

    record = run_delta_ab(args.smoke, jobs=args.jobs)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if not record["equivalent"]:
        print(
            "FAIL: equivalence gate — the incremental sweep diverges "
            "from the full-rebuild oracle; first divergence "
            "(serial=rebuild, parallel=incremental):\n"
            f"  {record['divergence']}",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and (record["min_speedup"] or 0) < 3:
        print(
            "FAIL: speedup gate — the incremental path must be >= 3x "
            f"faster per step; measured min {record['min_speedup']}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_delta_engine_matches_rebuild(benchmark):
    """pytest-benchmark entry: the smoke A/B must stay equivalent."""
    record = benchmark.pedantic(
        lambda: run_delta_ab(smoke=True), rounds=1, iterations=1
    )
    assert record["equivalent"], record["divergence"]
    assert set(record["backends"]) == set(BACKENDS)
    for entry in record["backends"].values():
        # Quiet steps must not re-decide all n nodes every step.
        assert entry["redecided_total"] < entry["redecided_rebuild"]


if __name__ == "__main__":
    sys.exit(main())
