"""Mobility ablation: stale versus conservative forward sets.

The paper: "the effect of moderate mobility can be balanced by a slight
increase in the broadcast redundancy."  We quantify both sides: nodes
move between the decision snapshot and the broadcast; the *stale* exact
forward set loses coverage with speed, while the *conservative* set
(union-neighbors / intersection-links, ``repro.core.conservative``)
holds delivery near 100% at the cost of a larger forward set.
"""

import random
import statistics

from conftest import write_result

from repro.algorithms.precomputed import PrecomputedForwardSet
from repro.core.conservative import conservative_forward_set
from repro.core.coverage import coverage_condition
from repro.core.priority import IdPriority
from repro.core.views import local_view
from repro.graph.geometry import Area, random_points
from repro.graph.mobility import RandomWaypointModel
from repro.sim.engine import BroadcastSession, SimulationEnvironment

SCHEME = IdPriority()
TRIALS = 15
N = 30


def _exact_forward_set(graph):
    return {
        v
        for v in graph.nodes()
        if not coverage_condition(local_view(graph, v, 2, SCHEME), v)
    }


def _trial(seed: int, speed: float):
    rng = random.Random(seed)
    for _attempt in range(200):
        positions = random_points(N, Area(), rng)
        model = RandomWaypointModel(
            positions, radius=35.0, rng=rng,
            min_speed=max(0.01, speed / 2), max_speed=max(0.02, speed),
        )
        decision = model.snapshot().topology
        model.advance(2.0)
        broadcast_time = model.snapshot().topology
        if decision.is_connected() and broadcast_time.is_connected():
            break
    else:  # pragma: no cover - connectivity at this density is easy
        raise RuntimeError("no connected snapshot pair")

    results = {}
    for name, forward in (
        ("stale", _exact_forward_set(decision)),
        ("conservative", conservative_forward_set(
            decision, broadcast_time, SCHEME, k=2
        )),
    ):
        env = SimulationEnvironment(broadcast_time, SCHEME)
        source = min(forward) if forward else 0
        outcome = BroadcastSession(
            env,
            PrecomputedForwardSet(forward, name=name),
            source,
            rng=random.Random(seed),
        ).run()
        results[name] = (
            len(outcome.delivered) / N,
            len(forward),
        )
    return results


def test_conservative_views_absorb_mobility(benchmark):
    def sweep():
        table = {}
        for speed in (0.0, 2.0, 5.0):
            stale_delivery, stale_size = [], []
            cons_delivery, cons_size = [], []
            for trial in range(TRIALS):
                results = _trial(1000 * trial + int(speed * 10), speed)
                stale_delivery.append(results["stale"][0])
                stale_size.append(results["stale"][1])
                cons_delivery.append(results["conservative"][0])
                cons_size.append(results["conservative"][1])
            table[speed] = (
                statistics.mean(stale_delivery),
                statistics.mean(stale_size),
                statistics.mean(cons_delivery),
                statistics.mean(cons_size),
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "mobility: stale vs conservative forward sets (n=30, 2s gap)",
        f"  {'speed':>6s} {'stale del.':>11s} {'stale fwd':>10s} "
        f"{'cons del.':>10s} {'cons fwd':>9s}",
    ]
    for speed, (sd, ss, cd, cs) in table.items():
        lines.append(
            f"  {speed:6.1f} {sd:11.1%} {ss:10.1f} {cd:10.1%} {cs:9.1f}"
        )
    write_result("mobility", "\n".join(lines))

    # Zero speed: both are exact and fully deliver.
    assert table[0.0][0] > 0.999
    assert table[0.0][2] > 0.999
    # Under motion, the conservative set delivers at least as well ...
    assert table[5.0][2] >= table[5.0][0]
    # ... at the cost of some extra redundancy (the paper's trade).
    assert table[5.0][3] >= table[5.0][1]
    # And the conservative set keeps delivery high under fast motion.
    assert table[5.0][2] > 0.97
