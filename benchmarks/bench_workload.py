"""Workload benchmarks: aggregate cost and fairness over broadcast streams.

Quantifies the static-versus-dynamic trade the paper describes in
Section 2 — a stable backbone versus a per-broadcast forward set — at
the level of a whole stream of broadcasts, and the fairness effect of
rotating priorities (Span's energy motivation).
"""

import random

from conftest import write_result

from repro.algorithms.base import Timing
from repro.algorithms.generic import GenericSelfPruning, GenericStatic
from repro.core.priority import RandomEpochPriority
from repro.experiments.workload import BroadcastWorkload
from repro.graph.generators import random_connected_network

BROADCASTS = 30
N = 40


def _network():
    return random_connected_network(N, 6.0, random.Random(1234))


def test_stream_cost_static_vs_dynamic(benchmark):
    net = _network()

    def run():
        static = BroadcastWorkload(
            net.topology, lambda: GenericStatic(hops=2)
        ).run(BROADCASTS, rng=random.Random(1))
        dynamic = BroadcastWorkload(
            net.topology,
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2),
        ).run(BROADCASTS, rng=random.Random(1))
        return static, dynamic

    static, dynamic = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "workload_cost",
        f"{BROADCASTS} broadcasts, n={N}, d=6\n"
        f"  static : {static.total_transmissions} transmissions, "
        f"fairness {static.fairness():.3f}, "
        f"mean latency {static.mean_latency():.2f}\n"
        f"  dynamic: {dynamic.total_transmissions} transmissions, "
        f"fairness {dynamic.fairness():.3f}, "
        f"mean latency {dynamic.mean_latency():.2f}",
    )
    # Dynamic saves transmissions over the stream.
    assert dynamic.total_transmissions <= static.total_transmissions


def test_priority_rotation_fairness(benchmark):
    net = _network()
    factory = lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)

    def run():
        fixed = BroadcastWorkload(net.topology, factory).run(
            BROADCASTS, rng=random.Random(2)
        )
        rotating = BroadcastWorkload(net.topology, factory).run(
            BROADCASTS,
            rng=random.Random(2),
            scheme_factory=lambda epoch: RandomEpochPriority(seed=epoch),
        )
        return fixed, rotating

    fixed, rotating = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "workload_fairness",
        f"{BROADCASTS} broadcasts, n={N}, d=6 (generic FR)\n"
        f"  fixed id priority : fairness {fixed.fairness():.3f}, "
        f"max load {fixed.max_load()}\n"
        f"  rotating priority : fairness {rotating.fairness():.3f}, "
        f"max load {rotating.max_load()}",
    )
    assert rotating.fairness() > fixed.fairness()
    # Rotation costs little: total transmissions within 15%.
    assert rotating.total_transmissions <= fixed.total_transmissions * 1.15
