"""Parallel harness benchmark: serial vs. parallel wall-clock on a
Fig. 11-sized sweep, plus the byte-identity check that guards the
determinism contract.

Run directly for the full record (written to ``BENCH_parallel.json`` at
the repo root so the perf trajectory is tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py --jobs 8 --out my.json

``--smoke`` shrinks the sweep to seconds and exits non-zero if the
parallel tables diverge from serial in any byte — the CI regression
gate.  The module also exposes a pytest-benchmark entry so the figure
benchmark suite picks the comparison up.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.experiments.config import RunSettings
from repro.experiments.export import tables_to_json
from repro.experiments.figures import fig11_selection
from repro.experiments.runner import run_figure

#: Default output location: repo root, next to EXPERIMENTS.md.
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_parallel.json",
)

FULL_NS = (20, 40, 60, 80, 100)
SMOKE_NS = (15, 20)


def first_divergence(serial, parallel, path="$"):
    """The JSON path of the first byte difference, or ``None`` if equal.

    Walks the two ``tables_to_json`` payloads in lockstep so a gate
    failure names the exact panel/series/point that diverged instead of
    only reporting that *something* did.
    """
    if type(serial) is not type(parallel):
        return (
            f"{path}: type {type(serial).__name__} != "
            f"{type(parallel).__name__}"
        )
    if isinstance(serial, dict):
        for key in sorted(set(serial) | set(parallel)):
            if key not in serial:
                return f"{path}.{key}: only in parallel payload"
            if key not in parallel:
                return f"{path}.{key}: only in serial payload"
            found = first_divergence(serial[key], parallel[key], f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(serial, list):
        if len(serial) != len(parallel):
            return f"{path}: length {len(serial)} != {len(parallel)}"
        for index, (left, right) in enumerate(zip(serial, parallel)):
            found = first_divergence(left, right, f"{path}[{index}]")
            if found is not None:
                return found
        return None
    if serial != parallel:
        return f"{path}: serial={serial!r} parallel={parallel!r}"
    return None


def _settings(jobs: int, smoke: bool) -> RunSettings:
    if smoke:
        return RunSettings(
            min_runs=4, max_runs=6, relative_half_width=0.5,
            seed=20030519, jobs=jobs,
        )
    return RunSettings(
        min_runs=10, max_runs=25, relative_half_width=0.02,
        seed=20030519, jobs=jobs,
    )


def run_comparison(jobs: int, smoke: bool) -> dict:
    """Time the same Fig. 11 sweep serially and at ``jobs`` workers.

    ``jobs`` is the *requested* worker count; it is clamped to the
    machine's core count before timing (oversubscription only measures
    scheduler noise).  The byte-identity check always runs against a
    real pool of at least two workers — it guards determinism, not
    speed, so it must not silently degrade to a serial run on small
    machines, and its verdict is independent of any speedup figure.
    """
    ns = SMOKE_NS if smoke else FULL_NS
    figure = fig11_selection(ns=ns)
    point_count = sum(len(panel.series) * len(panel.ns) for panel in figure.panels)
    cores = os.cpu_count() or 1
    jobs_effective = max(1, min(jobs, cores))
    identity_jobs = max(2, jobs_effective)

    start = time.perf_counter()
    serial_tables = run_figure(figure, _settings(1, smoke))
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel_tables = run_figure(figure, _settings(jobs_effective, smoke))
    parallel_seconds = time.perf_counter() - start

    if identity_jobs == jobs_effective:
        identity_tables = parallel_tables
    else:
        identity_tables = run_figure(figure, _settings(identity_jobs, smoke))

    serial_payload = tables_to_json(serial_tables)
    identity_payload = tables_to_json(identity_tables)
    divergence = first_divergence(serial_payload, identity_payload)
    speedup = None
    if jobs_effective >= 2 and parallel_seconds:
        speedup = round(serial_seconds / parallel_seconds, 3)
    return {
        "divergence": divergence,
        "benchmark": "bench_parallel",
        "figure": "fig11",
        "mode": "smoke" if smoke else "full",
        "point_count": point_count,
        "jobs_requested": jobs,
        "jobs_effective": jobs_effective,
        "identity_jobs": identity_jobs,
        "cpu_count": cores,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "speedup": speedup,
        "byte_identical": divergence is None,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serial vs parallel figure sweep benchmark."
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker count for the parallel leg "
        "(0 = all cores; clamped to the machine's core count)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sweep; non-zero exit if parallel diverges from serial",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="where to write the JSON record (default: BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs or (os.cpu_count() or 1)

    record = run_comparison(jobs, args.smoke)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if not record["byte_identical"]:
        print(
            "FAIL: byte-identity gate — the parallel sweep "
            f"(jobs={record['identity_jobs']}) diverges from the serial "
            "run.  The determinism contract (byte-identical tables at "
            "any --jobs N) is broken; first divergence:\n"
            f"  {record['divergence']}",
            file=sys.stderr,
        )
        return 1
    return 0


def test_first_divergence_localises_the_mismatch():
    """The gate's failure message names the first divergent JSON path."""
    serial = {"tables": [{"series": [{"points": [1.0, 2.0]}]}]}
    parallel = {"tables": [{"series": [{"points": [1.0, 2.5]}]}]}
    assert first_divergence(serial, serial) is None
    detail = first_divergence(serial, parallel)
    assert detail == (
        "$.tables[0].series[0].points[1]: serial=2.0 parallel=2.5"
    )
    assert "length" in first_divergence([1], [1, 2])
    assert "only in serial" in first_divergence({"a": 1}, {})


def test_parallel_matches_serial(benchmark, tmp_path):
    """pytest-benchmark entry: the smoke comparison must stay identical."""
    record = benchmark.pedantic(
        lambda: run_comparison(jobs=2, smoke=True), rounds=1, iterations=1
    )
    assert record["byte_identical"], record["divergence"]
    assert record["divergence"] is None
    assert record["point_count"] == 2 * 4 * len(SMOKE_NS)
    assert record["jobs_effective"] <= (os.cpu_count() or 1)
    assert record["identity_jobs"] >= 2


if __name__ == "__main__":
    sys.exit(main())
