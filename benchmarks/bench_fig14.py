"""Figure 14: static algorithms — MPR, Span, Rule-k, Generic.

Expected shape (paper Section 7.2): worst to best is MPR, Span, Rule-k,
Generic; Span trails Rule-k because of its bounded replacement paths,
and Generic edges out Rule-k by using the unrestricted coverage
condition.
"""

from conftest import run_figure_bench, series_total

from repro.experiments.figures import fig14_static


def test_fig14_static(benchmark):
    tables = run_figure_bench(benchmark, fig14_static, "fig14")
    for table in tables:
        mpr = series_total(table, "MPR")
        span = series_total(table, "Span")
        rule_k = series_total(table, "Rule k")
        generic = series_total(table, "Generic")
        # Generic is the best of the self-pruning trio.
        assert generic <= rule_k * 1.02, table.title
        assert rule_k <= span * 1.03, table.title
        # MPR never beats the generic framework.
        assert generic <= mpr * 1.02, table.title
