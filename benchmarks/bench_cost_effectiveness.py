"""Cost-effectiveness: hello overhead versus forward savings.

Section 7's verdicts — "algorithms based on 4-, 5-hop, or global
information are not cost-effective", "NCR in general has the worst
cost-effectiveness" — under the explicit message-count model of
``repro.experiments.overhead``: richer configurations must amortise
their extra hello rounds through saved forwards, and the benchmark
reports the broadcast rate where each upgrade breaks even.
"""

from conftest import write_result

from repro.experiments.overhead import crossover_broadcasts, measure_overhead

CONFIGS = [
    (2, "id"),
    (3, "id"),
    (5, "id"),
    (2, "degree"),
    (2, "ncr"),
    (3, "ncr"),
]


def test_cost_effectiveness(benchmark):
    def sweep():
        return {
            (hops, scheme): measure_overhead(hops, scheme, trials=12)
            for hops, scheme in CONFIGS
        }

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    base = points[(2, "id")]
    lines = [
        "configuration -> hello rounds, mean forwards, crossover vs 2-hop/id",
        f"  baseline (2, id): {base.hello_rounds} rounds, "
        f"{base.mean_forwards:.2f} forwards",
    ]
    crossovers = {}
    for key, point in points.items():
        if key == (2, "id"):
            continue
        rate = crossover_broadcasts(base, point)
        crossovers[key] = rate
        rate_text = "never" if rate is None else f"{rate:.0f} bcasts/period"
        lines.append(
            f"  {key}: {point.hello_rounds} rounds, "
            f"{point.mean_forwards:.2f} forwards, breaks even at {rate_text}"
        )
    write_result("cost_effectiveness", "\n".join(lines))

    # Every upgrade prunes at least roughly as well as the baseline.
    for point in points.values():
        assert point.mean_forwards <= base.mean_forwards * 1.05
    # The paper's verdicts: deep views and NCR need implausibly many
    # broadcasts per hello period to pay off (or never do), while the
    # cheap 3-hop upgrade breaks even soonest among the richer options.
    rate_3id = crossovers[(3, "id")]
    for key in [(5, "id"), (3, "ncr")]:
        rate = crossovers[key]
        assert rate is None or rate >= rate_3id * 0.9, (key, rate)
