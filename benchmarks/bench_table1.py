"""Table 1: classification of existing distributed broadcast algorithms."""

from conftest import write_result

from repro.experiments.report import format_table1


def test_table1(benchmark):
    text = benchmark(format_table1)
    write_result("table1", text)
    assert "static" in text
    assert "mpr" in text
    assert "sba" in text
