"""Figure 12: space — 2/3/4/5-hop versus global views.

Expected shape (paper Section 7.1): performance improves with the view
radius but with quickly diminishing returns — 2- and 3-hop information
come close to global information.
"""

from conftest import run_figure_bench, series_total

from repro.experiments.figures import fig12_space


def test_fig12_space(benchmark):
    tables = run_figure_bench(benchmark, fig12_space, "fig12")
    for table in tables:
        two = series_total(table, "2-hop")
        three = series_total(table, "3-hop")
        world = series_total(table, "global")
        # Monotone improvement with radius (small sampling slack).
        assert three <= two * 1.03, table.title
        assert world <= two * 1.03, table.title
        # Diminishing returns: 3-hop lands within 15% of global.
        assert three <= world * 1.15, table.title
