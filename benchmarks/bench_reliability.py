"""Reliability ablation: redundancy versus collisions versus jitter.

The paper's evaluation assumes a collision-free MAC and argues (citing
the authors' follow-up measurements) that "packet collision can be
relieved with a small forwarding jitter delay".  This benchmark checks
that claim inside our collision MAC: with zero jitter a dense flood
collapses; a modest jitter restores deliverability; and a pruned forward
set causes far fewer collisions than flooding in the first place.
"""

import random
import statistics

from conftest import write_result

from repro.algorithms.base import Timing
from repro.algorithms.flooding import Flooding
from repro.algorithms.generic import GenericSelfPruning
from repro.core.priority import IdPriority
from repro.graph.generators import random_connected_network
from repro.sim.engine import BroadcastSession, SimulationEnvironment
from repro.sim.mac import CollisionMac

TRIALS = 15
N = 40
DEGREE = 10.0


def _delivery(protocol_factory, jitter: float) -> tuple:
    rng = random.Random(29)
    ratios, collisions = [], []
    for trial in range(TRIALS):
        net = random_connected_network(N, DEGREE, rng)
        env = SimulationEnvironment(net.topology, IdPriority())
        protocol = protocol_factory()
        protocol.prepare(env)
        mac = CollisionMac(delay=1.0, jitter=jitter, window=0.25)
        outcome = BroadcastSession(
            env, protocol, 0, rng=random.Random(trial), mac=mac
        ).run()
        ratios.append(len(outcome.delivered) / N)
        collisions.append(mac.collisions)
    return statistics.mean(ratios), statistics.mean(collisions)


def test_jitter_restores_flooding_delivery(benchmark):
    def sweep():
        return {
            jitter: _delivery(Flooding, jitter)
            for jitter in (0.0, 1.0, 4.0, 8.0)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["flooding under a collision MAC (n=40, d=10)"]
    lines += [
        f"  jitter={j:g}: delivery {d:.1%}, {c:.1f} collisions"
        for j, (d, c) in results.items()
    ]
    write_result("reliability_jitter", "\n".join(lines))
    no_jitter = results[0.0][0]
    with_jitter = results[8.0][0]
    assert no_jitter < 0.9  # the storm actually bites
    assert with_jitter > 0.95  # and jitter relieves it
    assert with_jitter > no_jitter


def test_pruning_reduces_collisions(benchmark):
    def compare():
        flood = _delivery(Flooding, jitter=1.0)
        pruned = _delivery(
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2),
            jitter=1.0,
        )
        return {"flooding": flood, "generic-fr": pruned}

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    write_result(
        "reliability_pruning",
        "collision MAC, jitter=1 (n=40, d=10)\n"
        + "\n".join(
            f"  {name}: delivery {d:.1%}, {c:.1f} collisions"
            for name, (d, c) in results.items()
        ),
    )
    # Pruning cuts the number of transmissions, hence collisions.
    assert results["generic-fr"][1] < results["flooding"][1]
