"""Sharded mobility engine: steps/sec scaling and the identity gate.

Replays one 10k-node random-waypoint trace (recorded once as a
:class:`~repro.graph.fliptrace.FlipTrace`, so every leg sees exactly the
same flip stream) through the serial incremental sweep and through the
partial-replica sharded driver at every (shard grid, worker count)
cell, and writes ``BENCH_sharded_mobility.json`` at the repo root so
the perf trajectory is tracked across PRs::

    PYTHONPATH=src python benchmarks/bench_sharded_mobility.py
    PYTHONPATH=src python benchmarks/bench_sharded_mobility.py --smoke

Gates:

* **identity** (always): every sharded run's per-step payload (forward
  sets and flip counts) must match the serial incremental sweep
  byte-for-byte; a failure names the exact divergent step and field via
  :func:`bench_parallel.first_divergence`.  The timed runs use
  ``clamp=True`` (a clamped cell degrades to the in-process
  short-circuit instead of paying pipe overhead for fake parallelism,
  reported as ``clamped: true``), so a dedicated ``identity_runs``
  block replays every grid through a real >= 2-worker fork pool with
  ``clamp=False`` — the fork protocol is genuinely exercised even on a
  1-core box.
* **partial-replica bound** (full mode): ``replica_nodes_max`` — the
  high-water node count of any single shard replica, captured per run
  from :class:`~repro.instrument.InstrumentationCounters` — must stay
  strictly below ``n`` on every multi-shard run.  Hitting ``n`` means
  a shard's universe silently grew to the whole deployment and the
  O(core + halo) memory bound was bypassed; that is a hard failure,
  not a skip.  (The smoke fixture is too small for the bound to bind:
  a few cells of halo cover its whole box.)
* **scaling** (full mode, only when the box has >= 4 cores): the best
  4-worker sharded steps/sec must be >= 2.5x the 1-worker sharded
  steps/sec.  On smaller boxes the gate is recorded as skipped with
  the reason.  ``--no-scaling-gate`` records the measurement without
  failing the exit code (for CI runners with unknown core counts).
"""

import argparse
import json
import os
import random
import sys
import time
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from bench_parallel import first_divergence

from repro.core.priority import DegreePriority
from repro.experiments.runner import run_trace_sweep
from repro.experiments.sharded import run_sharded_trace
from repro.graph.fliptrace import record_flip_trace
from repro.graph.geometry import Area, random_points
from repro.graph.mobility import RandomWaypointModel
from repro.graph.unit_disk import range_for_average_degree
from repro.instrument import collecting

#: Default output location: repo root, next to BENCH_mobility_delta.json.
OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sharded_mobility.json",
)

SEED = 19
DEGREE = 6.0
FULL_N = 10_000
FULL_STEPS = 10
SMOKE_N = 400
SMOKE_STEPS = 5
GRIDS = ((2, 2), (4, 2))
WORKERS = (1, 2, 4)
K = 2


def _record_trace(n: int, steps: int):
    """Record the shared flip stream once from a seeded waypoint model.

    Slow walkers (0.0005..0.0015 distance units per time unit for the
    10k fixture's short radius) keep per-step flip counts moderate —
    the dirty-region regime the sharded engine targets — while the
    10k-node scale makes the per-step re-decide work big enough to
    amortise a fork pool.
    """
    rng = random.Random(SEED)
    positions = random_points(n, Area(), rng)
    radius, _ = range_for_average_degree(positions, DEGREE)
    model = RandomWaypointModel(
        positions, radius=radius, rng=rng,
        min_speed=0.0005, max_speed=0.0015,
    )
    return record_flip_trace(model, steps, 1.0)


def _payload(steps) -> list:
    return [
        {
            "step": entry.step,
            "forward": list(entry.forward),
            "added": entry.added_edges,
            "removed": entry.removed_edges,
        }
        for entry in steps
    ]


def run_scaling(smoke: bool) -> dict:
    """Time every (grid, workers) cell against the serial sweep."""
    n = SMOKE_N if smoke else FULL_N
    steps = SMOKE_STEPS if smoke else FULL_STEPS
    cores = os.cpu_count() or 1
    scheme = DegreePriority()
    trace = _record_trace(n, steps)
    flips = sum(entry.flip_count for entry in trace.steps)

    start = time.perf_counter()
    serial = run_trace_sweep(trace, scheme=scheme, k=K)
    serial_seconds = time.perf_counter() - start
    oracle = _payload(serial)

    runs = []
    divergence = None
    replica_bound_violations = []
    baseline = {}  # grid key -> 1-worker steps/sec
    for grid in GRIDS:
        shard_count = grid[0] * grid[1]
        for workers in WORKERS:
            effective = min(workers, shard_count, cores)
            clamped = effective < workers
            start = time.perf_counter()
            with collecting() as counters:
                sharded = run_sharded_trace(
                    trace, scheme=scheme, k=K, shards=grid, jobs=workers
                )
            seconds = time.perf_counter() - start
            found = first_divergence(oracle, _payload(sharded))
            key = f"{grid[0]}x{grid[1]}"
            steps_per_sec = steps / seconds if seconds else None
            if workers == 1 and steps_per_sec:
                baseline[key] = steps_per_sec
            # A clamped cell measures the short-circuit, not the pool:
            # no speedup claim, the clamped flag explains the row.
            speedup = None
            if not clamped and steps_per_sec and baseline.get(key):
                speedup = round(steps_per_sec / baseline[key], 3)
            if found is not None and divergence is None:
                divergence = f"[shards={key} workers={workers}] {found}"
            replica_peak = counters.replica_nodes_max
            if not smoke and shard_count > 1 and replica_peak >= n:
                replica_bound_violations.append(
                    f"shards={key} workers={workers}: "
                    f"replica_nodes_max={replica_peak} == n={n}"
                )
            runs.append({
                "shards": key,
                "workers": workers,
                "workers_effective": effective,
                "clamped": clamped,
                "seconds": round(seconds, 3),
                "steps_per_sec": round(steps_per_sec, 3)
                if steps_per_sec else None,
                "speedup": speedup,
                # Per-worker peak memory proxy: the largest partial
                # replica any shard held, as nodes and as a fraction
                # of the deployment.
                "replica_nodes_max": replica_peak,
                "replica_fraction": round(replica_peak / n, 3) if n else None,
                "shard_flips_applied": counters.shard_flips_applied,
                "shard_rehomes": counters.shard_rehomes,
                "handoff_redecides": sum(
                    s.handoff_redecides for s in sharded
                ),
                "boundary_flips": sum(s.boundary_flips for s in sharded),
                "first_divergence": found,
            })

    # Real fork pools regardless of core count: the wire protocol
    # (flip routing, local-id stale shipping, re-home delivery) must be
    # exercised through actual pipes, not just the inline short-circuit
    # a 1-core box clamps to.
    identity_runs = []
    for grid in GRIDS:
        with collecting() as counters:
            sharded = run_sharded_trace(
                trace, scheme=scheme, k=K, shards=grid, jobs=2, clamp=False
            )
        found = first_divergence(oracle, _payload(sharded))
        key = f"{grid[0]}x{grid[1]}"
        if found is not None and divergence is None:
            divergence = f"[identity shards={key} workers=2 fork] {found}"
        replica_peak = counters.replica_nodes_max
        if not smoke and grid[0] * grid[1] > 1 and replica_peak >= n:
            replica_bound_violations.append(
                f"identity shards={key} workers=2: "
                f"replica_nodes_max={replica_peak} == n={n}"
            )
        identity_runs.append({
            "shards": key,
            "workers": 2,
            "pool": "fork",
            "replica_nodes_max": replica_peak,
            "replica_fraction": round(replica_peak / n, 3) if n else None,
            "shard_rehomes": counters.shard_rehomes,
            "first_divergence": found,
        })

    if cores >= 4:
        best_4w = max(
            (r["steps_per_sec"] or 0) for r in runs if r["workers"] == 4
        )
        best_1w = max(
            (r["steps_per_sec"] or 0) for r in runs if r["workers"] == 1
        )
        scaling = {
            "required": 2.5,
            "measured": round(best_4w / best_1w, 3) if best_1w else None,
            "passed": bool(best_1w) and best_4w / best_1w >= 2.5,
            "skipped": None,
        }
    else:
        scaling = {
            "required": 2.5,
            "measured": None,
            "passed": None,
            "skipped": f"needs >= 4 cores to measure, box has {cores}",
        }

    return {
        "benchmark": "bench_sharded_mobility",
        "mode": "smoke" if smoke else "full",
        "n": n,
        "degree": DEGREE,
        "steps": steps,
        "total_flips": flips,
        "scheme": "degree",
        "k": K,
        "cpu_count": cores,
        "serial_seconds": round(serial_seconds, 3),
        "serial_steps_per_sec": round(steps / serial_seconds, 3)
        if serial_seconds else None,
        "runs": runs,
        "identity_runs": identity_runs,
        "scaling_gate": scaling,
        "replica_bound_violations": replica_bound_violations,
        "first_divergence": divergence,
        "byte_identical": divergence is None,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded vs serial incremental mobility sweep scaling."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced fixture; non-zero exit only on an identity failure",
    )
    parser.add_argument(
        "--no-scaling-gate", action="store_true",
        help="record the scaling measurement without failing the exit "
        "code (identity and replica-bound gates still fail hard)",
    )
    parser.add_argument(
        "--out", default=OUT,
        help="where to write the JSON record "
        "(default: BENCH_sharded_mobility.json)",
    )
    args = parser.parse_args(argv)

    record = run_scaling(args.smoke)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if not record["byte_identical"]:
        print(
            "FAIL: identity gate — a sharded run diverges from the "
            "serial incremental sweep; first divergence "
            "(serial=serial, parallel=sharded):\n"
            f"  {record['first_divergence']}",
            file=sys.stderr,
        )
        return 1
    if record["replica_bound_violations"]:
        print(
            "FAIL: partial-replica bound — a multi-shard run held a "
            "full-size replica (the O(core + halo) bound was "
            "bypassed):\n  "
            + "\n  ".join(record["replica_bound_violations"]),
            file=sys.stderr,
        )
        return 1
    gate = record["scaling_gate"]
    if (
        not args.smoke
        and not args.no_scaling_gate
        and gate["skipped"] is None
        and not gate["passed"]
    ):
        print(
            "FAIL: scaling gate — 4-worker sharded steps/sec must be "
            f">= {gate['required']}x the 1-worker path; measured "
            f"{gate['measured']}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_sharded_engine_identity_gate(benchmark):
    """pytest-benchmark entry: the smoke run must stay byte-identical."""
    record = benchmark.pedantic(
        lambda: run_scaling(smoke=True), rounds=1, iterations=1
    )
    assert record["byte_identical"], record["first_divergence"]
    assert record["total_flips"] > 0, "fixture flipped no links; vacuous"
    # Every (grid, workers) cell ran and reported against the oracle.
    assert len(record["runs"]) == len(GRIDS) * len(WORKERS)
    # Real >= 2-worker fork pools ran per grid even on a 1-core box.
    assert len(record["identity_runs"]) == len(GRIDS)
    assert all(r["workers"] >= 2 for r in record["identity_runs"])
    assert all(
        r["replica_nodes_max"] > 0 for r in record["identity_runs"]
    )


if __name__ == "__main__":
    sys.exit(main())
