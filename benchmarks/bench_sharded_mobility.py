"""Sharded mobility engine: steps/sec scaling and the identity gate.

Replays one 10k-node random-waypoint trace (recorded once as a
:class:`~repro.graph.fliptrace.FlipTrace`, so every leg sees exactly the
same flip stream) through the serial incremental sweep and through the
sharded driver at every (shard grid, worker count) cell, and writes
``BENCH_sharded_mobility.json`` at the repo root so the perf trajectory
is tracked across PRs::

    PYTHONPATH=src python benchmarks/bench_sharded_mobility.py
    PYTHONPATH=src python benchmarks/bench_sharded_mobility.py --smoke

Two gates:

* **identity** (always): every sharded run's per-step payload (forward
  sets and flip counts) must match the serial incremental sweep
  byte-for-byte; a failure names the exact divergent step and field via
  :func:`bench_parallel.first_divergence`.  Worker counts are **not**
  clamped to the core count here — fork pools are real processes even
  oversubscribed, so the contract is genuinely exercised at every
  measured worker count.
* **scaling** (full mode, only when the box has >= 4 cores): the best
  4-worker sharded steps/sec must be >= 2.5x the 1-worker sharded
  steps/sec.  On smaller boxes the gate is recorded as skipped with the
  reason, and ``speedup`` is ``null`` for any run whose worker count
  exceeds the core count (the ``bench_parallel`` convention).
"""

import argparse
import json
import os
import random
import sys
import time
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from bench_parallel import first_divergence

from repro.core.priority import DegreePriority
from repro.experiments.runner import run_trace_sweep
from repro.experiments.sharded import run_sharded_trace
from repro.graph.fliptrace import record_flip_trace
from repro.graph.geometry import Area, random_points
from repro.graph.mobility import RandomWaypointModel
from repro.graph.unit_disk import range_for_average_degree

#: Default output location: repo root, next to BENCH_mobility_delta.json.
OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sharded_mobility.json",
)

SEED = 19
DEGREE = 6.0
FULL_N = 10_000
FULL_STEPS = 10
SMOKE_N = 400
SMOKE_STEPS = 5
GRIDS = ((2, 2), (4, 2))
WORKERS = (1, 2, 4)
K = 2


def _record_trace(n: int, steps: int):
    """Record the shared flip stream once from a seeded waypoint model.

    Slow walkers (0.0005..0.0015 distance units per time unit for the
    10k fixture's short radius) keep per-step flip counts moderate —
    the dirty-region regime the sharded engine targets — while the
    10k-node scale makes the per-step re-decide work big enough to
    amortise a fork pool.
    """
    rng = random.Random(SEED)
    positions = random_points(n, Area(), rng)
    radius, _ = range_for_average_degree(positions, DEGREE)
    model = RandomWaypointModel(
        positions, radius=radius, rng=rng,
        min_speed=0.0005, max_speed=0.0015,
    )
    return record_flip_trace(model, steps, 1.0)


def _payload(steps) -> list:
    return [
        {
            "step": entry.step,
            "forward": list(entry.forward),
            "added": entry.added_edges,
            "removed": entry.removed_edges,
        }
        for entry in steps
    ]


def run_scaling(smoke: bool) -> dict:
    """Time every (grid, workers) cell against the serial sweep."""
    n = SMOKE_N if smoke else FULL_N
    steps = SMOKE_STEPS if smoke else FULL_STEPS
    cores = os.cpu_count() or 1
    scheme = DegreePriority()
    trace = _record_trace(n, steps)
    flips = sum(entry.flip_count for entry in trace.steps)

    start = time.perf_counter()
    serial = run_trace_sweep(trace, scheme=scheme, k=K)
    serial_seconds = time.perf_counter() - start
    oracle = _payload(serial)

    runs = []
    divergence = None
    baseline = {}  # grid key -> 1-worker steps/sec
    for grid in GRIDS:
        for workers in WORKERS:
            start = time.perf_counter()
            sharded = run_sharded_trace(
                trace, scheme=scheme, k=K, shards=grid, jobs=workers
            )
            seconds = time.perf_counter() - start
            found = first_divergence(oracle, _payload(sharded))
            key = f"{grid[0]}x{grid[1]}"
            steps_per_sec = steps / seconds if seconds else None
            if workers == 1 and steps_per_sec:
                baseline[key] = steps_per_sec
            speedup = None
            if workers <= cores and steps_per_sec and baseline.get(key):
                speedup = round(steps_per_sec / baseline[key], 3)
            if found is not None and divergence is None:
                divergence = f"[shards={key} workers={workers}] {found}"
            runs.append({
                "shards": key,
                "workers": workers,
                "workers_effective": min(workers, cores),
                "seconds": round(seconds, 3),
                "steps_per_sec": round(steps_per_sec, 3)
                if steps_per_sec else None,
                "speedup": speedup,
                "handoff_redecides": sum(
                    s.handoff_redecides for s in sharded
                ),
                "boundary_flips": sum(s.boundary_flips for s in sharded),
                "first_divergence": found,
            })

    if cores >= 4:
        best_4w = max(
            (r["steps_per_sec"] or 0) for r in runs if r["workers"] == 4
        )
        best_1w = max(
            (r["steps_per_sec"] or 0) for r in runs if r["workers"] == 1
        )
        scaling = {
            "required": 2.5,
            "measured": round(best_4w / best_1w, 3) if best_1w else None,
            "passed": bool(best_1w) and best_4w / best_1w >= 2.5,
            "skipped": None,
        }
    else:
        scaling = {
            "required": 2.5,
            "measured": None,
            "passed": None,
            "skipped": f"needs >= 4 cores to measure, box has {cores}",
        }

    return {
        "benchmark": "bench_sharded_mobility",
        "mode": "smoke" if smoke else "full",
        "n": n,
        "degree": DEGREE,
        "steps": steps,
        "total_flips": flips,
        "scheme": "degree",
        "k": K,
        "cpu_count": cores,
        "serial_seconds": round(serial_seconds, 3),
        "serial_steps_per_sec": round(steps / serial_seconds, 3)
        if serial_seconds else None,
        "runs": runs,
        "scaling_gate": scaling,
        "first_divergence": divergence,
        "byte_identical": divergence is None,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded vs serial incremental mobility sweep scaling."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced fixture; non-zero exit only on an identity failure",
    )
    parser.add_argument(
        "--out", default=OUT,
        help="where to write the JSON record "
        "(default: BENCH_sharded_mobility.json)",
    )
    args = parser.parse_args(argv)

    record = run_scaling(args.smoke)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if not record["byte_identical"]:
        print(
            "FAIL: identity gate — a sharded run diverges from the "
            "serial incremental sweep; first divergence "
            "(serial=serial, parallel=sharded):\n"
            f"  {record['first_divergence']}",
            file=sys.stderr,
        )
        return 1
    gate = record["scaling_gate"]
    if not args.smoke and gate["skipped"] is None and not gate["passed"]:
        print(
            "FAIL: scaling gate — 4-worker sharded steps/sec must be "
            f">= {gate['required']}x the 1-worker path; measured "
            f"{gate['measured']}x",
            file=sys.stderr,
        )
        return 1
    return 0


def test_sharded_engine_identity_gate(benchmark):
    """pytest-benchmark entry: the smoke run must stay byte-identical."""
    record = benchmark.pedantic(
        lambda: run_scaling(smoke=True), rounds=1, iterations=1
    )
    assert record["byte_identical"], record["first_divergence"]
    assert record["total_flips"] > 0, "fixture flipped no links; vacuous"
    # Every (grid, workers) cell ran and reported against the oracle.
    assert len(record["runs"]) == len(GRIDS) * len(WORKERS)
    assert any(r["workers"] >= 2 for r in record["runs"])


if __name__ == "__main__":
    sys.exit(main())
