"""Figure 15: first-receipt algorithms — DP, PDP, LENWB, Generic.

Expected shape (paper Section 7.2): worst to best is DP, PDP, LENWB,
Generic; the neighbor-designating pair trails the self-pruning pair by a
clear margin, and LENWB approximates Generic closely.
"""

from conftest import run_figure_bench, series_total

from repro.experiments.figures import fig15_first_receipt


def test_fig15_first_receipt(benchmark):
    tables = run_figure_bench(benchmark, fig15_first_receipt, "fig15")
    for table in tables:
        dp = series_total(table, "DP")
        pdp = series_total(table, "PDP")
        lenwb = series_total(table, "LENWB")
        generic = series_total(table, "Generic")
        # PDP refines DP.
        assert pdp <= dp * 1.02, table.title
        # Self-pruning beats neighbor-designating.
        assert lenwb <= pdp * 1.03, table.title
        assert generic <= dp, table.title
        # LENWB is a good approximation of Generic (within 12%).
        assert generic <= lenwb * 1.02, table.title
        assert lenwb <= generic * 1.12, table.title
