"""Scale benchmark: the spatial-hash builder and the numpy word table.

Measures the two kernels that broke the 100-node ceiling, on random-grid
deployments (``random_grid_network``, occupancy 0.7, radius 1.5) at
n ≈ 1k / 10k / 100k:

* **construction** — unit-disk graph build throughput (nodes/sec) through
  the cell grid at every size, against the pairwise reference where the
  O(n²) scan is still feasible (1k).  At 100k the pairwise scan would
  visit ~5e9 candidate pairs; the record marks it infeasible instead of
  timing it.
* **calibration** — ``range_for_link_count`` at nd/2 links through the
  grid's doubling search at 1k and 10k (10k is where the old
  sort-all-pairs calibration allocated ~50M distances), with a radius
  byte-identity gate against the pairwise reference at 1k.
* **full broadcast** — ``GenericStatic`` (global view) prepare + run
  under the bitset and numpy coverage backends at 1k, with the sets
  reference included in the identity gate; numpy alone is also timed at
  10k to record forward-set throughput at scale.

Byte-identity gates use :func:`bench_parallel.first_divergence` so a
failure names the first diverging edge / node instead of only reporting
that *something* diverged.

Run directly for the full record (written to ``BENCH_scale.json`` at the
repo root so the perf trajectory is tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_scale.py
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke

``--smoke`` (the CI ``scale-kernel`` job) runs only the 1k fixture: the
construction identity gate, the three-backend forward-set identity gate,
and the "numpy does not lose to bitset" floor.  Full mode additionally
requires the 100k grid build to complete and numpy to beat bitset
outright.  Exits non-zero when any gate fails.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from bench_parallel import first_divergence

from repro.algorithms.generic import GenericStatic
from repro.core.priority import IdPriority
from repro.graph.generators import random_grid_network
from repro.graph.geometry import grid_points
from repro.graph.unit_disk import (
    build_unit_disk_graph,
    range_for_link_count,
)
from repro.sim.engine import BroadcastSession, SimulationEnvironment

#: Default output location: repo root, next to the other BENCH records.
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_scale.json",
)

#: Random-grid fixtures (occupancy 0.7 of a side x side lattice): the side
#: lengths put the expected node count at ~1k / ~10k / ~100k.
FIXTURES = {
    "1k": {"side": 38, "occupancy": 0.7, "seed": 11},
    "10k": {"side": 120, "occupancy": 0.7, "seed": 12},
    "100k": {"side": 378, "occupancy": 0.7, "seed": 13},
}
RADIUS = 1.5
#: Pairwise construction is only timed where the O(n²) scan stays cheap.
PAIRWISE_FEASIBLE = {"1k"}
#: Grid calibration sizes (10k is where sort-all-pairs used to blow up).
CALIBRATION_SIZES = ("1k", "10k")
#: Broadcast A/B size, and the numpy-only scale point.
BROADCAST_AB_SIZE = "1k"
BROADCAST_NUMPY_SIZE = "10k"


def _positions(name: str) -> Dict[int, object]:
    spec = FIXTURES[name]
    rng = random.Random(spec["seed"])
    lattice = grid_points(spec["side"], spec["side"])
    positions = {}
    node = 0
    for point in lattice.values():
        if rng.random() < spec["occupancy"]:
            positions[node] = point
            node += 1
    return positions


def _timed(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall-clock and the (stable) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _edge_payload(network) -> List[List[int]]:
    return [list(edge) for edge in sorted(network.topology.edges())]


def _broadcast(graph, backend: str) -> Tuple[float, dict]:
    """GenericStatic global-view prepare + one session under ``backend``."""
    os.environ["REPRO_COVERAGE_BACKEND"] = backend
    env = SimulationEnvironment(graph, IdPriority())
    protocol = GenericStatic(hops=None)
    start = time.perf_counter()
    protocol.prepare(env)
    outcome = BroadcastSession(env, protocol, 0, rng=random.Random(1)).run()
    elapsed = time.perf_counter() - start
    payload = {
        "forward_set": sorted(protocol.forward_set),
        "transmissions": outcome.transmissions,
    }
    return elapsed, payload


def _section_construction(record: dict, sizes: List[str], repeats: int) -> None:
    section: dict = {}
    for name in sizes:
        positions = _positions(name)
        n = len(positions)
        grid_seconds, network = _timed(
            lambda: build_unit_disk_graph(positions, RADIUS, method="grid"),
            repeats,
        )
        entry = {
            "nodes": n,
            "links": network.link_count,
            "grid_seconds": round(grid_seconds, 4),
            "grid_nodes_per_second": round(n / grid_seconds) if grid_seconds else None,
        }
        if name in PAIRWISE_FEASIBLE:
            pairwise_seconds, reference = _timed(
                lambda: build_unit_disk_graph(
                    positions, RADIUS, method="pairwise"
                ),
                repeats,
            )
            entry["pairwise_seconds"] = round(pairwise_seconds, 4)
            entry["speedup"] = (
                round(pairwise_seconds / grid_seconds, 2)
                if grid_seconds
                else None
            )
            entry["first_divergence"] = first_divergence(
                _edge_payload(reference), _edge_payload(network)
            )
        else:
            entry["pairwise_seconds"] = None
            entry["pairwise_infeasible_pair_count"] = n * (n - 1) // 2
        section[name] = entry
    record["construction"] = section


def _section_calibration(record: dict, sizes: List[str], repeats: int) -> None:
    section: dict = {}
    for name in sizes:
        positions = _positions(name)
        n = len(positions)
        links = n * 6 // 2  # the paper's nd/2 recipe at d = 6
        grid_seconds, grid_radius = _timed(
            lambda: range_for_link_count(positions, links, method="grid"),
            repeats,
        )
        entry = {
            "nodes": n,
            "links_requested": links,
            "grid_seconds": round(grid_seconds, 4),
            "radius": grid_radius,
        }
        if name in PAIRWISE_FEASIBLE:
            pairwise_seconds, pairwise_radius = _timed(
                lambda: range_for_link_count(
                    positions, links, method="pairwise"
                ),
                repeats,
            )
            entry["pairwise_seconds"] = round(pairwise_seconds, 4)
            entry["radius_identical"] = grid_radius == pairwise_radius
        section[name] = entry
    record["calibration"] = section


def _section_broadcast(
    record: dict, smoke: bool, repeats: int
) -> Optional[str]:
    """Time bitset vs numpy; gate forward-set identity across all three.

    Returns the first divergence path (or ``None`` when identical).
    """
    graph = random_grid_network(
        FIXTURES[BROADCAST_AB_SIZE]["side"],
        FIXTURES[BROADCAST_AB_SIZE]["occupancy"],
        random.Random(FIXTURES[BROADCAST_AB_SIZE]["seed"]),
        RADIUS,
    ).topology
    times: Dict[str, float] = {}
    payloads: Dict[str, dict] = {}
    for backend in ("bitset", "numpy"):
        best = float("inf")
        for _ in range(repeats):
            elapsed, payloads[backend] = _broadcast(graph, backend)
            best = min(best, elapsed)
        times[backend] = best
    # The sets reference joins the identity gate once (it is the slow arm).
    _elapsed, payloads["sets"] = _broadcast(graph, "sets")
    os.environ.pop("REPRO_COVERAGE_BACKEND", None)
    divergence = first_divergence(
        payloads["sets"], payloads["bitset"]
    ) or first_divergence(payloads["bitset"], payloads["numpy"])
    section = {
        "fixture": BROADCAST_AB_SIZE,
        "nodes": graph.node_count(),
        "bitset_seconds": round(times["bitset"], 4),
        "numpy_seconds": round(times["numpy"], 4),
        "speedup": (
            round(times["bitset"] / times["numpy"], 2)
            if times["numpy"]
            else None
        ),
        "forward_set_size": len(payloads["numpy"]["forward_set"]),
        "first_divergence": divergence,
    }
    if not smoke:
        large = random_grid_network(
            FIXTURES[BROADCAST_NUMPY_SIZE]["side"],
            FIXTURES[BROADCAST_NUMPY_SIZE]["occupancy"],
            random.Random(FIXTURES[BROADCAST_NUMPY_SIZE]["seed"]),
            RADIUS,
        ).topology
        elapsed, payload = _broadcast(large, "numpy")
        os.environ.pop("REPRO_COVERAGE_BACKEND", None)
        section["numpy_at_scale"] = {
            "fixture": BROADCAST_NUMPY_SIZE,
            "nodes": large.node_count(),
            "numpy_seconds": round(elapsed, 4),
            "nodes_per_second": round(large.node_count() / elapsed)
            if elapsed
            else None,
            "forward_set_size": len(payload["forward_set"]),
        }
    record["full_broadcast"] = section
    return divergence


def run_benchmark(repeats: int, smoke: bool) -> dict:
    sizes = ["1k"] if smoke else list(FIXTURES)
    record: dict = {
        "benchmark": "bench_scale",
        "mode": "smoke" if smoke else "full",
        "fixtures": {
            name: dict(FIXTURES[name], radius=RADIUS) for name in sizes
        },
        "repeats": repeats,
    }
    _section_construction(record, sizes, repeats)
    _section_calibration(
        record, [s for s in CALIBRATION_SIZES if s in sizes], repeats
    )
    divergence = _section_broadcast(record, smoke, repeats)

    broadcast = record["full_broadcast"]
    construction_1k = record["construction"]["1k"]
    gates = {
        "construction_identity_1k": {
            "first_divergence": construction_1k["first_divergence"],
            "passed": construction_1k["first_divergence"] is None,
        },
        "calibration_identity_1k": {
            "passed": record["calibration"]["1k"]["radius_identical"],
        },
        "forward_sets_identical": {
            "backends": ["sets", "bitset", "numpy"],
            "first_divergence": divergence,
            "passed": divergence is None,
        },
        "numpy_vs_bitset_broadcast": {
            "required_speedup": 1.0,
            "observed": broadcast["speedup"],
            "passed": broadcast["speedup"] is not None
            and broadcast["speedup"] >= 1.0,
        },
    }
    if not smoke:
        built_100k = record["construction"]["100k"]
        gates["grid_completes_100k"] = {
            "nodes": built_100k["nodes"],
            "grid_nodes_per_second": built_100k["grid_nodes_per_second"],
            "passed": built_100k["links"] > 0
            and built_100k["grid_seconds"] > 0,
        }
    record["gates"] = gates
    record["passed"] = all(gate["passed"] for gate in gates.values())
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Cell-grid builder and numpy backend scale benchmark."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="1k fixture only: identity gates plus numpy-not-losing floor",
    )
    parser.add_argument(
        "--repeats", type=int, default=0,
        help="repetitions per timing (0 = 1 in smoke mode, 3 in full)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="where to write the JSON record (default: BENCH_scale.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.smoke else 3)

    record = run_benchmark(repeats, args.smoke)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if not record["passed"]:
        print("FAIL: a scale gate failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
