"""Bitset coverage kernel A/B benchmark: masks vs the sets reference.

Times every kernel the bitset layer accelerates — coverage condition,
strong coverage, span condition, k-hop view extraction (against an
in-bench brute-force Definition 2 reference), and one full broadcast —
under ``REPRO_COVERAGE_BACKEND=bitset`` and ``=sets`` on the dense
100-node / average-degree-18 fixture shared with ``bench_micro``.

Run directly for the full record (written to ``BENCH_coverage_kernel.json``
at the repo root so the perf trajectory is tracked across PRs)::

    PYTHONPATH=src python benchmarks/bench_coverage_kernel.py
    PYTHONPATH=src python benchmarks/bench_coverage_kernel.py --smoke
    PYTHONPATH=src python benchmarks/bench_coverage_kernel.py --repeats 20

Every kernel asserts that both backends produce identical results before
any timing is trusted.  Full mode gates the acceptance thresholds
(coverage >= 3x, full broadcast >= 1.5x); ``--smoke`` shrinks repetition
counts for CI and only requires the bitset backend not to lose (>= 1.0x),
exiting non-zero on a regression either way.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.core.coverage import (
    coverage_condition,
    span_condition,
    strong_coverage_condition,
)
from repro.core.priority import IdPriority
from repro.core.views import global_view
from repro.graph.generators import random_connected_network
from repro.graph.topology import Topology
from repro.sim.engine import BroadcastSession, SimulationEnvironment
from repro.algorithms.generic import GenericSelfPruning

#: Default output location: repo root, next to the other BENCH records.
DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_coverage_kernel.json",
)

#: The dense fixture shared with bench_micro: 100 nodes, average degree 18.
FIXTURE = {"nodes": 100, "avg_degree": 18.0, "seed": 4242}

#: Full-mode acceptance gates (speedup of bitset over the reference).
GATES_FULL = {"coverage_condition": 3.0, "full_broadcast": 1.5}
#: Smoke mode only requires the bitset backend not to lose.
GATE_SMOKE = 1.0


def _fixture_graph() -> Topology:
    net = random_connected_network(
        FIXTURE["nodes"], FIXTURE["avg_degree"], random.Random(FIXTURE["seed"])
    )
    return net.topology


def _timed(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall-clock and the (stable) result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _ab(
    kernel: Callable[[], object], repeats: int
) -> Tuple[float, float]:
    """Time ``kernel`` under each backend; assert identical results."""
    times: Dict[str, float] = {}
    results: Dict[str, object] = {}
    for backend in ("sets", "bitset"):
        os.environ["REPRO_COVERAGE_BACKEND"] = backend
        times[backend], results[backend] = _timed(kernel, repeats)
    assert results["sets"] == results["bitset"], (
        "backends disagree — bitset kernel broken"
    )
    return times["sets"], times["bitset"]


# ----------------------------------------------------------------------
# Kernels.  Fresh views/graphs per call so per-view memoisation measures
# the kernel, not the cache.
# ----------------------------------------------------------------------


def _kernel_coverage(graph: Topology) -> Callable[[], object]:
    def run():
        view = global_view(graph, IdPriority())
        return [coverage_condition(view, v) for v in graph.nodes()]

    return run


def _kernel_strong(graph: Topology) -> Callable[[], object]:
    def run():
        view = global_view(graph, IdPriority())
        return [strong_coverage_condition(view, v) for v in graph.nodes()]

    return run


def _kernel_span(graph: Topology) -> Callable[[], object]:
    def run():
        view = global_view(graph, IdPriority())
        return [span_condition(view, v) for v in graph.nodes()]

    return run


def _kernel_broadcast(graph: Topology) -> Callable[[], object]:
    def run():
        env = SimulationEnvironment(graph, IdPriority())
        protocol = GenericSelfPruning()
        protocol.prepare(env)
        outcome = BroadcastSession(
            env, protocol, 0, rng=random.Random(1)
        ).run()
        return (frozenset(outcome.forward_nodes), outcome.transmissions)

    return run


def _brute_force_view_graph(graph: Topology, center: int, k: int) -> Topology:
    """Definition 2 by direct transcription (the in-bench reference).

    Produces the same artifact as ``Topology.k_hop_view_graph`` — a
    ``Topology`` — so both arms pay the same construction cost.
    """
    hops = {center: 0}
    frontier = [center]
    for hop in range(1, k + 1):
        nxt = []
        for node in frontier:
            for neighbor in sorted(graph.neighbors(node)):
                if neighbor not in hops:
                    hops[neighbor] = hop
                    nxt.append(neighbor)
        frontier = nxt
    view = Topology(nodes=hops)
    for u in hops:
        for w in graph.neighbors(u):
            if u < w and w in hops and (hops[u] < k or hops[w] < k):
                view.add_edge(u, w)
    return view


def _time_extraction(graph: Topology, repeats: int) -> Tuple[float, float]:
    """Mask-based k-hop view extraction vs the brute-force reference.

    Each rep rebuilds the topology so the epoch cache cannot serve the
    answer; both arms pay the same construction cost outside the timer.
    """
    edges = graph.edges()
    nodes = graph.nodes()[:20]

    def _shapes(views):
        return [
            (frozenset(g.nodes()),
             frozenset(tuple(sorted(e)) for e in g.edges()))
            for g in views
        ]

    def mask_arm():
        fresh = Topology(edges=edges)
        start = time.perf_counter()
        views = [fresh.k_hop_view_graph(v, 2) for v in nodes]
        elapsed = time.perf_counter() - start
        return elapsed, _shapes(views)

    def brute_arm():
        fresh = Topology(edges=edges)
        start = time.perf_counter()
        views = [_brute_force_view_graph(fresh, v, 2) for v in nodes]
        elapsed = time.perf_counter() - start
        return elapsed, _shapes(views)

    best_mask = best_brute = float("inf")
    mask_shapes = brute_shapes = None
    for _ in range(repeats):
        elapsed, brute_shapes = brute_arm()
        best_brute = min(best_brute, elapsed)
        elapsed, mask_shapes = mask_arm()
        best_mask = min(best_mask, elapsed)
    assert mask_shapes == brute_shapes, (
        "mask extraction diverges from Definition 2"
    )
    return best_brute, best_mask


def run_benchmark(repeats: int, smoke: bool) -> dict:
    graph = _fixture_graph()
    kernels = {
        "coverage_condition": _kernel_coverage(graph),
        "strong_coverage_condition": _kernel_strong(graph),
        "span_condition": _kernel_span(graph),
        "full_broadcast": _kernel_broadcast(graph),
    }
    record: dict = {
        "benchmark": "bench_coverage_kernel",
        "mode": "smoke" if smoke else "full",
        "fixture": dict(FIXTURE),
        "repeats": repeats,
        "kernels": {},
        "gates": {},
    }
    for name, kernel in kernels.items():
        reference, bitset = _ab(kernel, repeats)
        record["kernels"][name] = {
            "reference": "sets",
            "reference_seconds": round(reference, 4),
            "bitset_seconds": round(bitset, 4),
            "speedup": round(reference / bitset, 2) if bitset else None,
        }
    reference, bitset = _time_extraction(graph, repeats)
    record["kernels"]["k_hop_view_extraction"] = {
        "reference": "brute-force-definition-2",
        "reference_seconds": round(reference, 4),
        "bitset_seconds": round(bitset, 4),
        "speedup": round(reference / bitset, 2) if bitset else None,
    }

    gates = (
        {name: GATE_SMOKE for name in GATES_FULL} if smoke else GATES_FULL
    )
    passed = True
    for name, floor in gates.items():
        speedup = record["kernels"][name]["speedup"]
        ok = speedup is not None and speedup >= floor
        record["gates"][name] = {
            "required_speedup": floor, "observed": speedup, "passed": ok,
        }
        passed = passed and ok
    record["passed"] = passed
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Bitset coverage kernel vs sets reference benchmark."
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer repeats; gate only on the bitset backend not losing",
    )
    parser.add_argument(
        "--repeats", type=int, default=0,
        help="repetitions per kernel (0 = 3 in smoke mode, 10 in full)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="where to write the JSON record "
        "(default: BENCH_coverage_kernel.json)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (3 if args.smoke else 10)

    record = run_benchmark(repeats, args.smoke)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if not record["passed"]:
        print("FAIL: bitset kernel below required speedup", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
