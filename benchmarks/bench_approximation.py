"""CDS approximation quality against exact minima.

The paper's introduction concedes that the coverage condition "does not
guarantee a constant approximation ratio in the worst case" but argues —
citing Guha & Khuller — that greedy/local schemes beat constant-ratio
constructions on random networks in practice.  This benchmark measures
the actual ratios on small random deployments where the minimum CDS is
computable by exhaustive search.
"""

import random
import statistics

from conftest import write_result

from repro.algorithms.base import Timing
from repro.algorithms.generic import GenericSelfPruning, GenericStatic
from repro.core.priority import IdPriority
from repro.graph.cds import greedy_cds, minimum_cds_bruteforce
from repro.graph.generators import random_connected_network
from repro.sim.engine import BroadcastSession, SimulationEnvironment

TRIALS = 12
N = 10
DEGREE = 4.0


def test_approximation_ratios(benchmark):
    def sweep():
        rng = random.Random(47)
        ratios = {"generic-static": [], "generic-fr": [], "greedy-cds": []}
        for trial in range(TRIALS):
            net = random_connected_network(N, DEGREE, rng)
            optimal = minimum_cds_bruteforce(net.topology)
            assert optimal is not None
            best = max(1, len(optimal))

            env = SimulationEnvironment(net.topology, IdPriority())
            static = GenericStatic(hops=2)
            static.prepare(env)
            ratios["generic-static"].append(
                max(1, len(static.forward_set)) / best
            )

            dynamic = GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
            dynamic.prepare(env)
            outcome = BroadcastSession(
                env, dynamic, rng.choice(net.topology.nodes()),
                rng=random.Random(trial),
            ).run()
            ratios["generic-fr"].append(outcome.forward_count / best)

            ratios["greedy-cds"].append(
                max(1, len(greedy_cds(net.topology))) / best
            )
        return {
            name: statistics.mean(values) for name, values in ratios.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_result(
        "approximation",
        f"mean ratio to the optimal CDS (n={N}, d={DEGREE:g})\n"
        + "\n".join(
            f"  {name}: {ratio:.2f}x" for name, ratio in results.items()
        ),
    )
    # Local pruning stays within a small constant of optimal on random
    # deployments, as the paper argues (no worst-case guarantee implied).
    for name, ratio in results.items():
        assert 1.0 <= ratio <= 3.0, (name, ratio)
