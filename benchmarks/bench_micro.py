"""Micro-benchmarks for the core primitives.

These track the hot paths behind every experiment: coverage-condition
checks (the O(D^3) generic and O(D^2) strong variants — the complexity
gap the paper discusses in Section 6), k-hop view extraction, unit-disk
construction, and one full broadcast.
"""

import random

import pytest

from repro.algorithms.generic import GenericSelfPruning
from repro.core.coverage import coverage_condition, strong_coverage_condition
from repro.core.priority import IdPriority
from repro.core.views import global_view
from repro.graph.generators import random_connected_network
from repro.sim.engine import BroadcastSession, SimulationEnvironment


@pytest.fixture(scope="module")
def dense_network():
    return random_connected_network(100, 18.0, random.Random(micro_seed()))


def micro_seed() -> int:
    return 4242


def test_unit_disk_construction(benchmark):
    rng = random.Random(micro_seed())
    benchmark(lambda: random_connected_network(100, 6.0, rng))


def test_k_hop_view_extraction(benchmark, dense_network):
    graph = dense_network.topology
    nodes = graph.nodes()
    benchmark(lambda: [graph.k_hop_view_graph(v, 2) for v in nodes[:10]])


def test_generic_coverage_condition(benchmark, dense_network):
    graph = dense_network.topology
    view = global_view(graph, IdPriority())
    nodes = graph.nodes()[:20]
    benchmark(lambda: [coverage_condition(view, v) for v in nodes])


def test_strong_coverage_condition(benchmark, dense_network):
    graph = dense_network.topology
    view = global_view(graph, IdPriority())
    nodes = graph.nodes()[:20]
    benchmark(lambda: [strong_coverage_condition(view, v) for v in nodes])


def test_full_broadcast_generic_fr(benchmark, dense_network):
    env = SimulationEnvironment(dense_network.topology, IdPriority())
    protocol = GenericSelfPruning()
    protocol.prepare(env)

    def run():
        return BroadcastSession(
            env, protocol, 0, rng=random.Random(1)
        ).run()

    outcome = benchmark(run)
    assert outcome.delivered == set(dense_network.topology.nodes())
