"""Network-lifetime ablation: Span's energy thesis, quantified.

Span rotates coordinator duty by residual energy to postpone the first
node death.  We measure lifetime (broadcasts until first death) under
four regimes: flooding, pruning with fixed id priorities, pruning with
random rotation, and pruning with energy-aware priorities.
"""

import random

from conftest import write_result

from repro.algorithms.base import Timing
from repro.algorithms.flooding import Flooding
from repro.algorithms.generic import GenericSelfPruning
from repro.core.priority import RandomEpochPriority
from repro.graph.generators import random_connected_network
from repro.sim.energy import EnergyAwarePriority, EnergyTracker, network_lifetime

N = 40
DEGREE = 14.0  # dense enough that few nodes are structurally forced
INITIAL = 40.0


def _lifetime(graph, protocol_factory, scheme_factory=None, seed=5) -> int:
    tracker = EnergyTracker(
        graph.nodes(), initial=INITIAL, transmit_cost=1.0, receive_cost=0.05
    )
    return network_lifetime(
        graph,
        protocol_factory,
        tracker,
        scheme_factory=scheme_factory,
        rng=random.Random(seed),
    ).broadcasts


def test_lifetime_regimes(benchmark):
    graph = random_connected_network(N, DEGREE, random.Random(99)).topology
    pruning = lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
    epoch = {"count": 0}

    def rotating_scheme(tracker):
        epoch["count"] += 1
        return RandomEpochPriority(seed=epoch["count"])

    def sweep():
        return {
            "flooding": _lifetime(graph, Flooding),
            "pruning-fixed": _lifetime(graph, pruning),
            "pruning-rotating": _lifetime(
                graph, pruning, scheme_factory=rotating_scheme
            ),
            "pruning-energy-aware": _lifetime(
                graph,
                pruning,
                scheme_factory=lambda t: EnergyAwarePriority(t.snapshot()),
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"broadcasts until first node death "
        f"(n={N}, d={DEGREE:g}, E0={INITIAL:g})"
    ]
    lines += [f"  {name:22s}: {count}" for name, count in results.items()]
    write_result("lifetime", "\n".join(lines))

    # Pruning outlives flooding; energy-aware rotation outlives a fixed
    # priority order (Span's thesis).
    assert results["pruning-fixed"] > results["flooding"]
    assert results["pruning-energy-aware"] > results["pruning-fixed"]
    # Blind rotation helps too, but energy feedback is at least as good.
    assert results["pruning-energy-aware"] >= results["pruning-rotating"] * 0.9
