"""Figure 9: forward node sets on one sample 100-node network.

The paper reports 49/45/41 forward nodes (static/FR/FRB) at 2-hop and
46/42/36 at 3-hop on its sample network; the regenerated counts should
show the same orderings: FRB <= FR <= static and 3-hop <= 2-hop.
"""

from conftest import write_result

from repro.experiments.report import format_fig9, run_fig9_sample


def test_fig9_sample_network(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig9_sample(n=100, degree=6.0, seed=9),
        rounds=1,
        iterations=1,
    )
    counts = result.counts()
    text = format_fig9(result)
    write_result("fig09", text)

    for hops in (2, 3):
        static = counts[(hops, "static")]
        fr = counts[(hops, "FR")]
        frb = counts[(hops, "FRB")]
        assert frb <= fr <= static, (hops, static, fr, frb)
    # More information never hurts the static forward set.
    assert counts[(3, "static")] <= counts[(2, "static")]
