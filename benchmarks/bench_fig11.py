"""Figure 11: selection options — SP vs ND vs MaxDeg vs MinPri.

Expected shape (paper Section 7.1): MinPri is the worst selection rule;
SP, ND and MaxDeg stay close in sparse networks; in dense networks at
n = 100, ND falls behind everything else because un-coordinated
designations of common 2-hop neighbors pile up redundancy.
"""

from conftest import run_figure_bench, series_total

from repro.experiments.figures import fig11_selection


def test_fig11_selection(benchmark):
    tables = run_figure_bench(benchmark, fig11_selection, "fig11")
    sparse, dense = tables

    # MinPri designates redundantly: never better than MaxDeg.
    for table in tables:
        assert series_total(table, "MaxDeg") <= (
            series_total(table, "MinPri") * 1.02
        ), table.title

    # Sparse: SP, ND and MaxDeg stay close; MinPri is the worst.
    close = [series_total(sparse, l) for l in ("SP", "ND", "MaxDeg")]
    assert max(close) <= min(close) * 1.18
    assert series_total(sparse, "MinPri") >= max(close) * 0.98

    # Dense, n = 100: ND is the worst of the four.
    nd_at_100 = dense.get_series("ND").value_at(100)
    for label in ("SP", "MaxDeg", "MinPri"):
        assert dense.get_series(label).value_at(100) <= nd_at_100 * 1.02, label
