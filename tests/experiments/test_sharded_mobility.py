"""Property tests for the sharded incremental mobility engine.

The determinism contract under test: merged sharded forward sets are
byte-identical to the serial incremental path (and to the full-rebuild
oracle) at **any** shard grid and worker count, on every coverage
backend.  Each seed rotates through one (backend, grid, jobs) cell so 50
seeds cover all 27 combinations several times over without a 1350-case
matrix.
"""

import random

import pytest

from repro.core.priority import (
    DegreePriority,
    NcrPriority,
    RandomEpochPriority,
)
from repro.experiments import (
    run_mobility_sweep,
    run_sharded_mobility_sweep,
    run_sharded_trace,
    run_trace_sweep,
)
from repro.experiments.sharded import _route_flips
from repro.graph import (
    Area,
    FlipStep,
    FlipTrace,
    ShardGrid,
    random_points,
    range_for_average_degree,
    record_flip_trace,
)
from repro.graph.geometry import Point
from repro.graph.mobility import RandomWaypointModel
from repro.instrument import collecting

SEEDS = range(50)
BACKENDS = ("sets", "bitset", "numpy")
GRIDS = ((1, 1), (2, 2), (4, 2))
JOBS = (1, 2, 4)


def _model(seed: int, n: int = 24) -> RandomWaypointModel:
    rng = random.Random(seed)
    positions = random_points(n, Area(), rng)
    radius, _links = range_for_average_degree(positions, 5.0)
    return RandomWaypointModel(
        positions, radius=radius, rng=rng, min_speed=1.0, max_speed=3.0
    )


def _cell(seed: int):
    """This seed's (backend, grid, jobs) cell of the rotation."""
    return (
        BACKENDS[seed % 3],
        GRIDS[(seed // 3) % 3],
        JOBS[(seed // 9) % 3],
    )


def _payload(steps):
    return [
        (s.step, s.forward, s.added_edges, s.removed_edges) for s in steps
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_matches_serial_and_rebuild(seed, monkeypatch):
    backend, grid, jobs = _cell(seed)
    if backend == "numpy":
        pytest.importorskip("numpy")
    monkeypatch.setenv("REPRO_COVERAGE_BACKEND", backend)
    scheme_factory = NcrPriority if seed % 5 == 0 else DegreePriority
    serial = run_mobility_sweep(
        _model(seed), 5, 1.0, scheme=scheme_factory(), k=2
    )
    rebuilt = run_mobility_sweep(
        _model(seed), 5, 1.0, scheme=scheme_factory(), k=2, incremental=False
    )
    sharded = run_sharded_mobility_sweep(
        _model(seed), 5, 1.0,
        scheme=scheme_factory(), k=2, shards=grid, jobs=jobs,
        clamp=False,  # exercise real fork pools even on a 1-core box
    )
    assert _payload(serial) == _payload(rebuilt)
    assert _payload(serial) == _payload(sharded)
    # The sharded router re-decides exactly the serial dirty set (the
    # handoff copies are extra work, never extra coverage).
    assert [s.redecided for s in sharded] == [s.redecided for s in serial]
    assert [s.time for s in sharded] == [s.time for s in serial]


def test_run_mobility_sweep_shards_kwarg_delegates():
    serial = run_mobility_sweep(_model(7), 4, 1.0, scheme=DegreePriority())
    sharded = run_mobility_sweep(
        _model(7), 4, 1.0, scheme=DegreePriority(), shards=(2, 2), jobs=2
    )
    assert _payload(serial) == _payload(sharded)


def test_shards_with_rebuild_oracle_rejected():
    with pytest.raises(ValueError):
        run_mobility_sweep(
            _model(7), 2, 1.0, shards=(2, 2), incremental=False
        )


def test_bad_jobs_rejected():
    with pytest.raises(ValueError):
        run_sharded_mobility_sweep(_model(7), 2, 1.0, jobs=0)
    with pytest.raises(ValueError):
        run_sharded_mobility_sweep(_model(7), -1, 1.0)


# ----------------------------------------------------------------------
# Crafted handoff fixture: one flip's dirty ball spans three shards
# ----------------------------------------------------------------------


def _chain_trace() -> FlipTrace:
    """A 13-node chain along x, one cell per node, radius 1.

    Step 0 carries no flips (the first step decides every node); step 1
    removes the middle link (6, 7); step 2 restores it.
    """
    positions = {i: Point(0.5 + i, 0.5) for i in range(13)}
    steps = (
        FlipStep(step=0, time=1.0, added=(), removed=()),
        FlipStep(step=1, time=2.0, added=(), removed=((6, 7),)),
        FlipStep(step=2, time=3.0, added=((6, 7),), removed=()),
    )
    return FlipTrace(positions=positions, radius=1.0, steps=steps)


def test_chain_fixture_geometry():
    trace = _chain_trace()
    grid = ShardGrid(trace.positions, trace.radius, shape=(3, 1), halo_cells=2)
    assert grid._x_starts == [0, 5, 9, 13]
    routed = grid.assign(trace.positions).routed
    # Dirty ball of the (6, 7) flip at radius 2: nodes 4..9.
    assert routed[4] == (0, 1)
    assert routed[5] == (0, 1)
    assert routed[6] == (0, 1)
    assert routed[7] == (1, 2)
    assert routed[8] == (1, 2)
    assert routed[9] == (1, 2)


@pytest.mark.parametrize("jobs", JOBS)
def test_three_shard_handoff(jobs):
    trace = _chain_trace()
    scheme = DegreePriority()
    serial = run_trace_sweep(trace, scheme=scheme, k=2)
    sharded = run_sharded_trace(
        trace, scheme=scheme, k=2, shards=(3, 1), jobs=jobs, clamp=False
    )
    assert _payload(serial) == _payload(sharded)
    middle = sharded[1]
    assert middle.removed_edges == 1
    # Nodes 4..9 turn dirty; 4..6 route to shards {0, 1}, 7..9 to
    # {1, 2} — six re-decisions, six handoff copies, and the flip's
    # routed sets span all three shards.
    assert middle.redecided == 6
    assert middle.shard_redecides == 12
    assert middle.handoff_redecides == 6
    assert middle.boundary_flips == 1
    restored = sharded[2]
    assert restored.added_edges == 1
    assert restored.boundary_flips == 1
    assert sharded[0].redecided == 13  # first step decides everyone


# ----------------------------------------------------------------------
# FlipTrace record → replay round-trips
# ----------------------------------------------------------------------


def test_fliptrace_jsonl_round_trip_is_byte_identical():
    trace = record_flip_trace(_model(11), 6, 1.0)
    lines = trace.to_jsonl_lines()
    rebuilt = FlipTrace.from_jsonl_lines(lines)
    assert rebuilt.to_jsonl_lines() == lines
    assert rebuilt.radius == trace.radius
    assert rebuilt.positions == trace.positions
    assert rebuilt.steps == trace.steps


def test_fliptrace_jsonl_file_round_trip(tmp_path):
    trace = record_flip_trace(_model(12), 4, 1.0)
    path = tmp_path / "trace.jsonl"
    trace.to_jsonl(path)
    rebuilt = FlipTrace.from_jsonl(path)
    assert rebuilt.to_jsonl_lines() == trace.to_jsonl_lines()


def test_trace_replay_matches_live_sweep():
    scheme = DegreePriority()
    trace = record_flip_trace(_model(13), 5, 1.0)
    live = run_mobility_sweep(_model(13), 5, 1.0, scheme=scheme, k=2)
    replayed = run_trace_sweep(trace, scheme=scheme, k=2)
    assert _payload(live) == _payload(replayed)
    sharded = run_sharded_trace(
        trace, scheme=scheme, k=2, shards=(2, 2), jobs=2, clamp=False
    )
    assert _payload(live) == _payload(sharded)


def test_fliptrace_flip_counts_round_trip():
    trace = record_flip_trace(_model(14), 5, 1.0)
    for entry, snap in zip(trace.steps, trace.replay()):
        assert entry.flip_count == len(entry.added) + len(entry.removed)
        assert snap.flip_count == entry.flip_count


def test_fliptrace_rejects_bad_header():
    with pytest.raises(ValueError):
        FlipTrace.from_jsonl_lines([])
    with pytest.raises(ValueError):
        FlipTrace.from_jsonl_lines(['{"format": "other", "version": 1}'])


# ----------------------------------------------------------------------
# Partial replicas: flip routing, locality rejection, counters
# ----------------------------------------------------------------------


def test_flip_outside_universe_is_never_shipped():
    universes = {0: {0, 1, 2, 3}, 1: {3, 4, 5, 6}}
    routed = _route_flips(universes, ((4, 5),), ((0, 1),))
    # Each flip reaches exactly the shards holding BOTH endpoints.
    assert routed == {0: ((), ((0, 1),)), 1: (((4, 5),), ())}
    # An edge spanning two universes without a common holder ships
    # nowhere: it exists in neither induced subgraph.
    assert _route_flips(universes, ((2, 4),), ()) == {}
    assert _route_flips(universes, (), ()) == {}


def test_random_epoch_scheme_rejected_on_partial_replicas():
    # The rank-ordered per-epoch draw reads the whole node set, so its
    # values cannot be reproduced on a partial replica.
    assert RandomEpochPriority.metric_value_radius is None
    with pytest.raises(ValueError, match="metric_value_radius"):
        run_sharded_mobility_sweep(
            _model(7), 2, 1.0, scheme=RandomEpochPriority()
        )


def test_bad_rehome_factor_rejected():
    with pytest.raises(ValueError, match="rehome_factor"):
        run_sharded_mobility_sweep(_model(7), 2, 1.0, rehome_factor=0.5)


@pytest.mark.parametrize("jobs", (1, 2))
def test_counters_jobs_invariant_and_serial_equal(jobs):
    trace = record_flip_trace(_model(21), 6, 1.0)
    scheme = DegreePriority()
    with collecting() as serial_counters:
        serial = run_trace_sweep(trace, scheme=scheme, k=2)
    with collecting() as base_counters:
        base = run_sharded_trace(
            trace, scheme=scheme, k=2, shards=(2, 2), jobs=1, clamp=False
        )
    with collecting() as counters:
        sharded = run_sharded_trace(
            trace, scheme=scheme, k=2, shards=(2, 2), jobs=jobs,
            clamp=False,
        )
    assert _payload(serial) == _payload(base) == _payload(sharded)
    # The per-shard partial replicas are jobs-invariant, so the merged
    # counters must equal the jobs=1 totals field for field.
    invariant = (
        "shard_flips_applied",
        "replica_nodes_max",
        "shard_rehomes",
        "shard_redecides",
        "shard_handoff_redecides",
        "shard_boundary_flips",
        "coverage_evaluations",
    )
    for field in invariant:
        assert getattr(counters, field) == getattr(base_counters, field), field
    # Owner-only shipping evaluates each stale node exactly once, so
    # coverage work equals the serial sweep's.
    assert counters.coverage_evaluations == (
        serial_counters.coverage_evaluations
    )
    assert 0 < counters.replica_nodes_max <= 24


# ----------------------------------------------------------------------
# Dynamic re-homing: a skewed trace forces a mid-run re-partition
# ----------------------------------------------------------------------


def _skewed_trace(toggles: int = 4) -> FlipTrace:
    """A 13-node chain whose flips all hit the left end.

    Every flip toggles the (0, 1) link, so the whole dirty load lands
    in the left shard of a (2, 1) grid — the max/mean skew a re-home
    exists to fix.
    """
    positions = {i: Point(0.5 + i, 0.5) for i in range(13)}
    steps = [FlipStep(step=0, time=1.0, added=(), removed=())]
    for index in range(toggles):
        removing = index % 2 == 0
        steps.append(
            FlipStep(
                step=index + 1,
                time=float(index + 2),
                added=() if removing else ((0, 1),),
                removed=((0, 1),) if removing else (),
            )
        )
    return FlipTrace(positions=positions, radius=1.0, steps=tuple(steps))


@pytest.mark.parametrize("jobs", (1, 2))
def test_rehome_fires_and_preserves_identity(jobs):
    trace = _skewed_trace()
    scheme = DegreePriority()
    serial = run_trace_sweep(trace, scheme=scheme, k=2)
    with collecting() as counters:
        sharded = run_sharded_trace(
            trace, scheme=scheme, k=2, shards=(2, 1), jobs=jobs,
            clamp=False, rehome_factor=1.5,
        )
    assert _payload(serial) == _payload(sharded)
    rehomed_steps = [s.step for s in sharded if s.rehomed]
    # The first loaded window (step 1: dirty nodes 0..3, all owned by
    # the left shard) trips the 1.5x skew gate and moves the split;
    # the identical skew afterwards reproduces the same weighted split,
    # so the re-home fires exactly once.
    assert rehomed_steps == [1]
    assert counters.shard_rehomes == 1


def test_rehome_schedule_is_jobs_invariant():
    trace = _skewed_trace()
    scheme = DegreePriority()
    flags = []
    for jobs in (1, 2, 4):
        sharded = run_sharded_trace(
            trace, scheme=scheme, k=2, shards=(2, 1), jobs=jobs,
            clamp=False, rehome_factor=1.5,
        )
        flags.append(tuple(s.rehomed for s in sharded))
    assert flags[0] == flags[1] == flags[2]


def test_rehome_disabled_with_none():
    trace = _skewed_trace()
    sharded = run_sharded_trace(
        trace, scheme=DegreePriority(), k=2, shards=(2, 1),
        rehome_factor=None,
    )
    assert not any(s.rehomed for s in sharded)
