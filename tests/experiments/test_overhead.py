"""Tests for the control-overhead cost model."""

import pytest

from repro.experiments.overhead import (
    OverheadPoint,
    crossover_broadcasts,
    measure_overhead,
    total_cost,
)


def _point(hops, scheme, rounds, forwards, n=60):
    return OverheadPoint(
        hops=hops, scheme_name=scheme, hello_rounds=rounds,
        mean_forwards=forwards, n=n,
    )


class TestTotalCost:
    def test_hello_plus_broadcast_terms(self):
        point = _point(2, "id", 2, 25.0)
        assert point.total_cost(0) == 120  # 60 nodes x 2 rounds
        assert point.total_cost(10) == 120 + 250
        assert total_cost(point, 10) == point.total_cost(10)


class TestCrossover:
    def test_richer_view_pays_off_eventually(self):
        cheap = _point(2, "id", 2, 26.0)
        rich = _point(3, "ncr", 5, 24.0)
        rate = crossover_broadcasts(cheap, rich)
        # 60 * 3 extra hello messages amortised by 2 saved forwards.
        assert rate == pytest.approx(90.0)
        assert cheap.total_cost(rate) == pytest.approx(rich.total_cost(rate))
        assert cheap.total_cost(rate * 2) > rich.total_cost(rate * 2)

    def test_no_crossover_without_savings(self):
        cheap = _point(2, "id", 2, 24.0)
        rich = _point(5, "ncr", 7, 24.5)
        assert crossover_broadcasts(cheap, rich) is None

    def test_free_upgrade(self):
        cheap = _point(2, "id", 2, 26.0)
        rich = _point(2, "id", 2, 24.0)
        assert crossover_broadcasts(cheap, rich) == 0.0


class TestMeasurement:
    def test_measured_points_are_consistent(self):
        cheap = measure_overhead(2, "id", trials=6)
        rich = measure_overhead(3, "ncr", trials=6)
        assert cheap.hello_rounds == 2
        assert rich.hello_rounds == 5  # 3 topology + 2 for NCR
        # Richer information prunes at least as well on aggregate.
        assert rich.mean_forwards <= cheap.mean_forwards * 1.05
        # At zero broadcasts the cheap configuration wins outright.
        assert cheap.total_cost(0) < rich.total_cost(0)
