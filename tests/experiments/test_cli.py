"""Tests for the experiments CLI."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_fig9_with_svg(self, capsys, tmp_path, monkeypatch):
        assert main(["fig9", "--svg-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        svgs = list(tmp_path.glob("*.svg"))
        assert len(svgs) == 6

    def test_quick_figure_run(self, capsys):
        code = main(
            [
                "fig16",
                "--quick",
                "--ns", "15",
                "--min-runs", "3",
                "--max-runs", "4",
                "--no-charts",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SBA" in out and "Generic" in out
        assert "15" in out

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_jobs_flag_matches_serial_output(self, capsys):
        argv = [
            "fig16", "--quick", "--ns", "15",
            "--min-runs", "3", "--max-runs", "4",
            "--no-charts", "--format", "json",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main([*argv, "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestCliChartDir:
    def test_chart_svgs_written(self, capsys, tmp_path):
        code = main(
            [
                "fig16", "--quick", "--ns", "15",
                "--min-runs", "3", "--max-runs", "4",
                "--no-charts", "--chart-dir", str(tmp_path),
            ]
        )
        assert code == 0
        charts = list(tmp_path.glob("fig16_*.svg"))
        assert len(charts) == 4  # 2 degrees x 2 radii
        assert charts[0].read_text().startswith("<svg")
