"""Tests for multi-broadcast workloads and the fairness metric."""

import random

import pytest

from repro.algorithms.base import Timing
from repro.algorithms.flooding import Flooding
from repro.algorithms.generic import GenericSelfPruning, GenericStatic
from repro.experiments.workload import BroadcastWorkload
from repro.graph.generators import random_connected_network
from repro.graph.topology import Topology
from repro.metrics.stats import jain_fairness_index


class TestJainIndex:
    def test_uniform_is_one(self):
        assert jain_fairness_index([3, 3, 3, 3]) == pytest.approx(1.0)

    def test_single_loaded_node(self):
        assert jain_fairness_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_all_zero_is_fair(self):
        assert jain_fairness_index([0, 0, 0]) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_fairness_index([])
        with pytest.raises(ValueError):
            jain_fairness_index([1, -1])


class TestWorkload:
    def _network(self, seed=15):
        return random_connected_network(30, 6.0, random.Random(seed))

    def test_flooding_workload_is_perfectly_fair(self):
        net = self._network()
        workload = BroadcastWorkload(net.topology, Flooding)
        result = workload.run(10, rng=random.Random(1))
        assert result.fairness() == pytest.approx(1.0)
        assert result.total_transmissions == 10 * 30
        assert result.max_load() == 10

    def test_workload_validates_inputs(self):
        net = self._network()
        workload = BroadcastWorkload(net.topology, Flooding)
        with pytest.raises(ValueError):
            workload.run(0)

    def test_every_broadcast_covers(self):
        net = self._network(seed=16)
        workload = BroadcastWorkload(
            net.topology,
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2),
        )
        result = workload.run(15, rng=random.Random(2))
        assert result.broadcasts == 15
        assert len(result.latencies) == 15

    def test_fixed_priorities_concentrate_duty(self):
        """With a fixed priority order, dynamic timing alone does not
        rotate duty — the same high-priority nodes forward every time.
        """
        net = self._network(seed=17)
        static = BroadcastWorkload(
            net.topology, lambda: GenericStatic(hops=2)
        ).run(25, rng=random.Random(3))
        dynamic = BroadcastWorkload(
            net.topology,
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT_BACKOFF, hops=2),
        ).run(25, rng=random.Random(3))
        assert static.max_load() == 25
        assert dynamic.max_load() == 25
        assert abs(dynamic.fairness() - static.fairness()) < 0.1

    def test_rotating_priorities_restore_fairness(self):
        """Span's motivation: rotating priorities spread forward duty."""
        from repro.core.priority import RandomEpochPriority

        net = self._network(seed=17)
        factory = lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2)
        fixed = BroadcastWorkload(net.topology, factory).run(
            25, rng=random.Random(3)
        )
        rotating = BroadcastWorkload(net.topology, factory).run(
            25,
            rng=random.Random(3),
            scheme_factory=lambda epoch: RandomEpochPriority(seed=epoch),
        )
        assert rotating.fairness() > fixed.fairness()
        # Note: max load can stay pinned at the broadcast count — cut
        # vertices must forward under every priority order — so fairness,
        # not max load, is the right rotation metric.

    def test_dynamic_costs_fewer_transmissions(self):
        net = self._network(seed=18)
        static = BroadcastWorkload(
            net.topology, lambda: GenericStatic(hops=2)
        ).run(15, rng=random.Random(4))
        dynamic = BroadcastWorkload(
            net.topology,
            lambda: GenericSelfPruning(Timing.FIRST_RECEIPT, hops=2),
        ).run(15, rng=random.Random(4))
        assert dynamic.total_transmissions <= static.total_transmissions

    def test_static_load_concentrates_on_backbone(self):
        net = self._network(seed=19)
        result = BroadcastWorkload(
            net.topology, lambda: GenericStatic(hops=2)
        ).run(20, rng=random.Random(5))
        # Static backbone nodes forward on (almost) every broadcast,
        # non-backbone nodes never (except as sources).
        loads = sorted(result.load.values())
        assert loads[0] <= 3  # quiet nodes exist
        assert loads[-1] >= 17  # backbone nodes carry nearly every packet
