"""The runner's coverage check: broken protocols must be caught loudly."""

import pytest

from repro.experiments.config import RunSettings, SeriesSpec
from repro.experiments.runner import CoverageViolation, measure_point
from repro.algorithms.gossip import Gossip


class TestCoverageViolationDetection:
    def test_gossip_trips_the_coverage_check(self):
        """A protocol without a coverage guarantee fails fast and loudly."""
        spec = SeriesSpec("unreliable", lambda: Gossip(p=0.2))
        settings = RunSettings(min_runs=5, max_runs=8, seed=3)
        with pytest.raises(CoverageViolation):
            measure_point(spec, 40, 6.0, settings)

    def test_check_can_be_disabled_for_reliability_studies(self):
        spec = SeriesSpec("unreliable", lambda: Gossip(p=0.2))
        settings = RunSettings(
            min_runs=5, max_runs=8, seed=3, check_coverage=False
        )
        point = measure_point(spec, 40, 6.0, settings)
        assert point.samples >= 5
