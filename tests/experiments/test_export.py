"""Tests for CSV/JSON result export and the CLI format flag."""

import csv
import io
import json

import pytest

from repro.experiments.__main__ import main
from repro.experiments.export import table_to_csv, table_to_json, tables_to_json
from repro.metrics.results import DataPoint, ResultTable, Series


def _table() -> ResultTable:
    table = ResultTable(title="panel", x_label="n", y_label="forward nodes")
    a = Series(label="A")
    a.add(DataPoint(x=20, mean=10.5, half_width=0.5, samples=25))
    a.add(DataPoint(x=40, mean=19.25, half_width=0.75, samples=25))
    b = Series(label="B")
    b.add(DataPoint(x=20, mean=9.0))
    table.add_series(a)
    table.add_series(b)
    return table


class TestCsv:
    def test_round_trips_through_csv_reader(self):
        rows = list(csv.reader(io.StringIO(table_to_csv(_table()))))
        assert rows[0] == ["n", "A", "B"]
        assert rows[1] == ["20", "10.5000", "9.0000"]
        assert rows[2] == ["40", "19.2500", ""]

    def test_empty_cells_for_missing_points(self):
        text = table_to_csv(_table())
        assert text.strip().endswith(",")


class TestJson:
    def test_single_table(self):
        payload = json.loads(table_to_json(_table()))
        assert payload["title"] == "panel"
        assert payload["series"][0]["label"] == "A"
        point = payload["series"][0]["points"][0]
        assert point == {
            "x": 20, "mean": 10.5, "half_width": 0.5, "samples": 25
        }

    def test_multiple_tables(self):
        payload = json.loads(tables_to_json([_table(), _table()]))
        assert len(payload) == 2


class TestCliFormats:
    def test_csv_output(self, capsys):
        code = main(
            [
                "fig16", "--quick", "--ns", "15",
                "--min-runs", "3", "--max-runs", "4", "--format", "csv",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n,SBA,Generic" in out

    def test_json_output(self, capsys):
        code = main(
            [
                "fig16", "--quick", "--ns", "15",
                "--min-runs", "3", "--max-runs", "4", "--format", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["series"][0]["label"] == "SBA"
