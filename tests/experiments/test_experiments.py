"""Tests for the experiment specs, runner, and reports."""

import pytest

from repro.experiments.config import PAPER_NS, RunSettings
from repro.experiments.figures import FIGURE_BUILDERS
from repro.experiments.report import (
    format_fig9,
    format_table1,
    run_fig9_sample,
)
from repro.experiments.runner import measure_point, run_panel
from repro.metrics.results import format_table

FAST = RunSettings(min_runs=4, max_runs=6, relative_half_width=0.5, seed=1)


class TestSpecs:
    def test_paper_ns(self):
        assert PAPER_NS == (20, 30, 40, 50, 60, 70, 80, 90, 100)

    def test_every_figure_builds(self):
        for name, builder in FIGURE_BUILDERS.items():
            figure = builder()
            assert figure.figure_id == name
            assert figure.panels
            for panel in figure.panels:
                assert panel.series
                assert panel.ns == PAPER_NS

    def test_reduced_sweep(self):
        figure = FIGURE_BUILDERS["fig10"](ns=[20, 40])
        for panel in figure.panels:
            assert panel.ns == (20, 40)

    def test_fig10_has_four_timings(self):
        figure = FIGURE_BUILDERS["fig10"]()
        labels = [s.label for s in figure.panels[0].series]
        assert labels == ["Static", "FR", "FRB", "FRBD"]

    def test_fig12_series_radii(self):
        figure = FIGURE_BUILDERS["fig12"]()
        labels = [s.label for s in figure.panels[0].series]
        assert labels == ["2-hop", "3-hop", "4-hop", "5-hop", "global"]

    def test_fig14_panels_cover_hops_and_degrees(self):
        figure = FIGURE_BUILDERS["fig14"]()
        titles = [p.title for p in figure.panels]
        assert len(titles) == 4
        assert any("2-hop" in t and "d=6" in t for t in titles)
        assert any("3-hop" in t and "d=18" in t for t in titles)


class TestRunner:
    def test_measure_point_returns_statistics(self):
        figure = FIGURE_BUILDERS["fig10"](ns=[20])
        spec = figure.panels[0].series[1]  # FR
        point = measure_point(spec, 20, 6.0, FAST)
        assert point.x == 20
        assert 1 <= point.mean <= 20
        assert point.samples >= FAST.min_runs

    def test_run_panel_produces_full_table(self):
        figure = FIGURE_BUILDERS["fig16"](ns=[15, 20], degrees=[6.0])
        panel = figure.panels[0]
        table = run_panel(panel, FAST)
        assert [s.label for s in table.series] == ["SBA", "Generic"]
        assert table.xs() == [15, 20]

    def test_progress_callback_invoked(self):
        figure = FIGURE_BUILDERS["fig16"](ns=[15], degrees=[6.0])
        messages = []
        run_panel(figure.panels[0], FAST, progress=messages.append)
        assert len(messages) == 2  # two series x one n

    def test_seed_reproducibility(self):
        figure = FIGURE_BUILDERS["fig16"](ns=[15], degrees=[6.0])
        a = run_panel(figure.panels[0], FAST)
        b = run_panel(figure.panels[0], FAST)
        assert a.get_series("SBA").means() == b.get_series("SBA").means()

    def test_default_rng_is_per_point_not_per_seed(self):
        """Two points measured without an explicit RNG must not replay the
        same sample stream (the old fallback reused ``Random(seed)``)."""
        figure = FIGURE_BUILDERS["fig16"](ns=[15], degrees=[6.0])
        sba, generic = figure.panels[0].series
        # Same protocol family, same n and d, different labels: under the
        # old fallback both would sample identical deployments.
        from repro.experiments.config import SeriesSpec

        first = SeriesSpec("alpha", generic.protocol_factory)
        second = SeriesSpec("beta", generic.protocol_factory)
        a = measure_point(first, 20, 6.0, FAST)
        b = measure_point(second, 20, 6.0, FAST)
        assert (a.mean, a.half_width) != (b.mean, b.half_width)
        # ... while the same point stays deterministic.
        again = measure_point(first, 20, 6.0, FAST)
        assert (a.mean, a.half_width) == (again.mean, again.half_width)


class TestReports:
    def test_table1_text(self):
        text = format_table1()
        assert "Table 1" in text
        assert "static" in text
        assert "mpr" in text

    def test_fig9_sample(self):
        result = run_fig9_sample(n=40, degree=6.0, seed=2)
        counts = result.counts()
        assert len(counts) == 6  # {2,3}-hop x {static, FR, FRB}
        for (hops, label), count in counts.items():
            assert 1 <= count <= 40
        # More information should not hurt: 3-hop <= 2-hop per timing is
        # the expected trend; assert it for the static series where the
        # comparison is deterministic.
        assert counts[(3, "static")] <= counts[(2, "static")]
        text = format_fig9(result)
        assert "2-hop information" in text
        assert "3-hop information" in text

    def test_fig9_svg_render(self):
        result = run_fig9_sample(n=30, degree=6.0, seed=3)
        svg = result.svg(2, "FR")
        assert svg.startswith("<svg")
        assert "circle" in svg
